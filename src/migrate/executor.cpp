#include "migrate/executor.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/json_writer.h"
#include "fault/degraded_network.h"
#include "obs/collector.h"
#include "recover/wal.h"
#include "sim/netsim.h"

namespace geomap::migrate {

void MigrationOptions::validate() const {
  GEOMAP_CHECK_ARG(bytes_per_process >= 0,
                   "bytes_per_process must be non-negative, got "
                       << bytes_per_process);
  GEOMAP_CHECK_ARG(chunk_bytes > 0,
                   "chunk_bytes must be positive, got " << chunk_bytes);
  GEOMAP_CHECK_ARG(link_concurrency >= 1,
                   "link_concurrency must be >= 1, got " << link_concurrency);
  GEOMAP_CHECK_ARG(max_copy_attempts >= 1,
                   "max_copy_attempts must be >= 1, got " << max_copy_attempts);
  GEOMAP_CHECK_ARG(max_replans >= 0,
                   "max_replans must be non-negative, got " << max_replans);
  GEOMAP_CHECK_ARG(max_emergency_attempts >= 1,
                   "max_emergency_attempts must be >= 1, got "
                       << max_emergency_attempts);
  GEOMAP_CHECK_ARG(prepare_timeout > 0,
                   "prepare_timeout must be positive, got " << prepare_timeout);
}

const char* to_string(ProcessOutcome outcome) {
  switch (outcome) {
    case ProcessOutcome::kStayed:
      return "stayed";
    case ProcessOutcome::kCommitted:
      return "committed";
    case ProcessOutcome::kRolledBack:
      return "rolled-back";
    case ProcessOutcome::kAbandoned:
      return "abandoned";
  }
  return "?";
}

namespace {

/// The executor's discrete-event engine. Single-threaded; all state is
/// plain members and every scheduling decision is a pure function of the
/// inputs, so runs are deterministic bit-for-bit.
class Engine {
 public:
  Engine(const mapping::MappingProblem& problem, const Mapping& current,
         const Mapping& target, const fault::FaultPlan& plan,
         Seconds start_time, const MigrationOptions& options)
      : problem_(problem),
        plan_(plan),
        degraded_(problem.network, plan),
        options_(options),
        start_(start_time),
        n_(problem.num_processes()),
        m_(problem.num_sites()) {
    options_.validate();
    mapping::validate_mapping(problem_, current);
    GEOMAP_CHECK_ARG(target.size() == current.size(),
                     "target mapping size " << target.size()
                                            << " != current size "
                                            << current.size());
    for (SiteId s : target)
      GEOMAP_CHECK_ARG(s >= 0 && s < m_, "target maps to invalid site " << s);

    if (options_.collector != nullptr) {
      obs::Collector& c = *options_.collector;
      exec_span_ = c.tracer().span("migrate/execute", "migrate");
      exec_phase_ = c.profile().phase("migrate:execute");
      obs_chunks_ = &c.metrics().counter("migration.chunks");
      obs_chunk_retries_ = &c.metrics().counter("migration.chunk_retries");
      obs_chunk_timeouts_ = &c.metrics().counter("migration.chunk_timeouts");
      obs_rollbacks_ = &c.metrics().counter("migration.rollbacks");
      obs_replans_ = &c.metrics().counter("migration.replans");
      obs_commits_ = &c.metrics().counter("migration.commits");
      obs_bytes_ = &c.metrics().counter("migration.bytes_sent");
      obs_chunk_seconds_ = &c.metrics().histogram("migration.chunk_seconds");
      obs_downtime_ = &c.metrics().histogram("migration.downtime_seconds");
      obs_prepare_wait_ =
          &c.metrics().histogram("migration.prepare_wait_seconds");
      elog_ = &c.events();
      timeline_ = &c.timeline();
      tl_migration_.assign(static_cast<std::size_t>(m_) * m_, nullptr);
      tl_latency_.assign(static_cast<std::size_t>(m_) * m_, nullptr);
    }

    home_ = current;
    resident_.assign(static_cast<std::size_t>(m_), 0);
    reserved_.assign(static_cast<std::size_t>(m_), 0);
    for (SiteId s : home_) resident_[static_cast<std::size_t>(s)] += 1;
    link_free_.assign(static_cast<std::size_t>(m_) * m_, start_);
    link_inflight_.assign(static_cast<std::size_t>(m_) * m_, 0);
    link_waiting_.resize(static_cast<std::size_t>(m_) * m_);
    prepare_waiting_.resize(static_cast<std::size_t>(m_));

    procs_.resize(static_cast<std::size_t>(n_));
    chunks_total_ = options_.bytes_per_process > 0
                        ? static_cast<int>(std::ceil(options_.bytes_per_process /
                                                     options_.chunk_bytes))
                        : 0;
    report_.start_time = start_;
    report_.processes.resize(static_cast<std::size_t>(n_));
    for (ProcessId p = 0; p < n_; ++p) {
      Proc& ps = proc(p);
      ps.dest = target[static_cast<std::size_t>(p)];
      ProcessMigrationRecord& rec = record(p);
      rec.process = p;
      rec.source = home(p);
      if (ps.dest != home(p)) {
        rec.planned_dest = ps.dest;
        report_.processes_planned += 1;
        report_.bytes_planned += options_.bytes_per_process;
        ps.phase = Phase::kWaitPrepare;
        ps.prepare_requested = start_;
        push(start_, Event::kPrepare, p, ps.epoch);
      }
    }

    // Application replay tokens (one per process with traffic).
    for (ProcessId p = 0; p < n_; ++p) {
      if (problem_.comm.row(p).size() > 0) push(start_, Event::kAppEdge, p, 0);
    }

    // Watch every permanent outage that starts inside the run: a site
    // whose only occupants are *committed* (not mid-copy) would otherwise
    // die unnoticed — no chunk traffic touches it.
    for (const fault::FaultEvent& e : plan_.events()) {
      if (e.kind != fault::FaultKind::kSiteOutage) continue;
      if (e.end != fault::kNoEnd) continue;
      push(std::max(start_, e.start), Event::kOutageWatch, /*proc=*/-1, 0,
           e.site);
    }
  }

  MigrationReport run() {
    while (!queue_.empty()) {
      const Event e = queue_.top();
      queue_.pop();
      now_ = std::max(now_, e.t);
      switch (e.kind) {
        case Event::kAppEdge:
          handle_app_edge(e.proc, e.t);
          break;
        case Event::kPrepare:
          handle_prepare(e.proc, e.t, e.epoch);
          break;
        case Event::kPrepareDeadline:
          handle_prepare_deadline(e.proc, e.t, e.epoch);
          break;
        case Event::kChunk:
          handle_chunk(e.proc, e.t, e.epoch);
          break;
        case Event::kSlotFree:
          handle_slot_free(e.site, e.t);
          break;
        case Event::kCommitApply:
          handle_commit_apply(e.proc, e.t, e.epoch);
          break;
        case Event::kOutageWatch:
          handle_watch(e.site, e.t);
          break;
      }
    }
    finalize();
    if (options_.collector != nullptr) {
      options_.collector->mem().note(
          "migration.journal",
          report_.events.size() * sizeof(fault::MigrationEvent));
      exec_phase_.count("journal_events", report_.events.size());
      exec_phase_.end();
    }
    return std::move(report_);
  }

 private:
  enum class Phase {
    kIdle,
    kWaitPrepare,
    kCopying,
    kCommitPending,
    kCommitted,
    kRolledBack,
    kAbandoned,
  };

  struct Proc {
    Phase phase = Phase::kIdle;
    SiteId dest = -1;     // current migration destination
    SiteId serving = -1;  // site serving state while copying
    int epoch = 0;        // bumps on rollback/redirect; stales old events
    int chunks_done = 0;
    int emergency_attempts = 0;
    bool deadline_armed = false;
    Seconds prepare_requested = -1;
    Seconds last_chunk_start = 0;
    // Application replay cursor.
    std::size_t app_edge = 0;
    Seconds parked_at = -1;  // >= 0 while the next app edge is parked
  };

  struct Event {
    Seconds t = 0;
    std::uint64_t seq = 0;
    enum Kind {
      kAppEdge,
      kPrepare,
      kPrepareDeadline,
      kChunk,
      kSlotFree,
      kCommitApply,
      kOutageWatch,
    } kind = kAppEdge;
    ProcessId proc = -1;
    int epoch = 0;
    SiteId site = -1;  // kSlotFree: link index; kOutageWatch: site

    bool operator>(const Event& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  Proc& proc(ProcessId p) { return procs_[static_cast<std::size_t>(p)]; }
  ProcessMigrationRecord& record(ProcessId p) {
    return report_.processes[static_cast<std::size_t>(p)];
  }
  SiteId home(ProcessId p) const {
    return home_[static_cast<std::size_t>(p)];
  }
  std::size_t link_index(SiteId src, SiteId dst) const {
    return static_cast<std::size_t>(src) * m_ + static_cast<std::size_t>(dst);
  }

  void push(Seconds t, Event::Kind kind, ProcessId p, int epoch,
            SiteId site = -1) {
    queue_.push(Event{t, seq_++, kind, p, epoch, site});
  }

  bool permanently_down(SiteId site, Seconds t) const {
    return plan_.site_down(site, t) &&
           plan_.next_site_up(site, t) == fault::kNoEnd;
  }

  void journal(fault::MigrationEventKind kind, Seconds t, ProcessId p,
               SiteId from, SiteId to, Bytes bytes = 0) {
    // Protocol transitions also stream to the event log (independent of
    // record_events — the journal is the certification input, the event
    // log the live feed). Chunk landings are dense wire traffic and stay
    // out; the timeline series already carry them.
    if (elog_ != nullptr && kind != fault::MigrationEventKind::kChunk) {
      const bool trouble = kind == fault::MigrationEventKind::kRollback ||
                           kind == fault::MigrationEventKind::kReplan;
      std::vector<obs::EventField> fields;
      fields.reserve(4);
      fields.push_back(obs::field("process", p));
      fields.push_back(obs::field("from", from));
      fields.push_back(obs::field("to", to));
      if (kind == fault::MigrationEventKind::kCommit && p >= 0)
        fields.push_back(obs::field("downtime", record(p).downtime));
      elog_->emit(t,
                  trouble ? obs::EventSeverity::kWarn : obs::EventSeverity::kInfo,
                  "migrate", fault::to_string(kind), std::move(fields));
    }
    if (options_.wal != nullptr) {
      // Payload must stay byte-identical to recover::encode_mig (the
      // round-trip test pins them); non-chunk transitions sync so the
      // record is durable before the engine acts on it. Chunk records
      // ride along with the next sync — losing an unsynced chunk tail
      // only under-counts copy progress, which redo re-sends anyway.
      recover::WalRecordType wtype = recover::WalRecordType::kMigChunk;
      switch (kind) {
        case fault::MigrationEventKind::kReserve:
          wtype = recover::WalRecordType::kMigReserve;
          break;
        case fault::MigrationEventKind::kRelease:
          wtype = recover::WalRecordType::kMigRelease;
          break;
        case fault::MigrationEventKind::kChunk:
          wtype = recover::WalRecordType::kMigChunk;
          break;
        case fault::MigrationEventKind::kCommit:
          wtype = recover::WalRecordType::kMigCommit;
          break;
        case fault::MigrationEventKind::kRollback:
          wtype = recover::WalRecordType::kMigRollback;
          break;
        case fault::MigrationEventKind::kReplan:
          wtype = recover::WalRecordType::kMigReplan;
          break;
      }
      std::ostringstream os;
      JsonWriter w(os, /*pretty=*/false);
      w.begin_object();
      w.field("tenant", options_.wal_tenant);
      w.field("process", static_cast<std::int64_t>(p));
      w.field("from", from);
      w.field("to", to);
      w.field("bytes", bytes);
      if (kind == fault::MigrationEventKind::kCommit) {
        w.field("downtime", p >= 0 ? record(p).downtime : 0.0);
      }
      w.end_object();
      options_.wal->append(wtype, t, os.str());
      if (kind != fault::MigrationEventKind::kChunk) options_.wal->sync();
    }
    if (!options_.record_events) return;
    report_.events.push_back({kind, t, p, from, to, bytes});
  }

  void note_activity(Seconds t) { migration_finish_ = std::max(migration_finish_, t); }

  /// Placement legality for replan/emergency targets: pins to
  /// permanently dead sites are released (their residency can no longer
  /// be honoured), everything else follows the problem's constraints.
  bool placement_allowed(ProcessId p, SiteId s, Seconds t) const {
    if (!problem_.constraints.empty()) {
      const SiteId pin = problem_.constraints[static_cast<std::size_t>(p)];
      if (pin != kUnconstrained && !permanently_down(pin, t)) return pin == s;
    }
    return mapping::site_allowed(problem_.allowed_sites, p, s);
  }

  /// Cheapest live source for shipping state into `dst` at time t
  /// (replica fetch — the dead source cannot serve); -1 when every other
  /// site is permanently down.
  SiteId cheapest_source(SiteId dst, Seconds t) const {
    SiteId best = -1;
    Seconds best_time = std::numeric_limits<double>::infinity();
    for (SiteId s = 0; s < m_; ++s) {
      if (s == dst || permanently_down(s, t)) continue;
      const Seconds w = degraded_.transfer_time(s, dst, options_.chunk_bytes, t);
      if (w < best_time) {
        best_time = w;
        best = s;
      }
    }
    return best;
  }

  // -- Application replay ---------------------------------------------------

  void handle_app_edge(ProcessId p, Seconds t) {
    Proc& ps = proc(p);
    const trace::CommMatrix::Row row = problem_.comm.row(p);
    if (ps.app_edge >= row.size()) return;
    const SiteId src = home(p);
    const SiteId dst = home(row.dst[ps.app_edge]);

    const Seconds up = sim::outage_clear_time(plan_, src, dst, t);
    if (up == fault::kNoEnd) {
      // An endpoint's committed home is permanently dead: the flow can
      // only resume once a commit moves that endpoint. Park it; every
      // commit unparks all parked flows.
      ps.parked_at = t;
      parked_.push_back(p);
      return;
    }
    Seconds start = t < up ? up : t;
    if (src != dst) {
      const std::size_t link = link_index(src, dst);
      start = std::max(start, link_free_[link]);
    }
    const double count = row.count[ps.app_edge];
    const Bytes volume = row.volume[ps.app_edge];
    const Seconds wire = degraded_.message_cost(src, dst, count, volume, start);
    const Seconds end = start + wire;
    if (src != dst) {
      link_free_[link_index(src, dst)] = end;
      if (timeline_ != nullptr) {
        obs::TimeSeries*& series = tl_latency_[link_index(src, dst)];
        if (series == nullptr) {
          series = &timeline_->series(
              "link.latency_ratio",
              options_.timeline_label_prefix + obs::link_label(src, dst));
        }
        const Seconds healthy = count * degraded_.base().latency(src, dst) +
                                volume / degraded_.base().bandwidth(src, dst);
        if (healthy > 0) series->record(start, wire / healthy);
      }
    }
    report_.app_makespan = std::max(report_.app_makespan, end - start_);
    ps.app_edge += 1;
    if (ps.app_edge < row.size()) push(end, Event::kAppEdge, p, 0);
  }

  void unpark_all(Seconds t) {
    if (parked_.empty()) return;
    for (ProcessId p : parked_) {
      Proc& ps = proc(p);
      if (ps.parked_at >= 0) {
        report_.app_blocked_seconds += t - ps.parked_at;
        ps.parked_at = -1;
      }
      push(t, Event::kAppEdge, p, 0);
    }
    parked_.clear();
  }

  // -- Prepare --------------------------------------------------------------

  void handle_prepare(ProcessId p, Seconds t, int epoch) {
    Proc& ps = proc(p);
    if (ps.epoch != epoch || ps.phase != Phase::kWaitPrepare) return;
    const SiteId d = ps.dest;
    if (permanently_down(d, t)) {
      trigger_replan(t);
      return;
    }
    if (plan_.site_down(d, t)) {
      push(plan_.next_site_up(d, t), Event::kPrepare, p, ps.epoch);
      return;
    }
    const std::size_t di = static_cast<std::size_t>(d);
    if (resident_[di] + reserved_[di] < problem_.capacities[di]) {
      reserved_[di] += 1;
      journal(fault::MigrationEventKind::kReserve, t, p, home(p), d);
      note_activity(t);
      ProcessMigrationRecord& rec = record(p);
      rec.copy_attempts += 1;
      if (rec.prepare_time < 0) rec.prepare_time = t;
      if (obs_prepare_wait_ != nullptr && ps.prepare_requested >= 0)
        obs_prepare_wait_->record(t - ps.prepare_requested);
      ps.phase = Phase::kCopying;
      ps.deadline_armed = false;
      ps.serving = permanently_down(home(p), t) ? cheapest_source(d, t)
                                                : home(p);
      if (ps.serving < 0) {
        abandon(p, t);
        return;
      }
      if (chunks_total_ == 0) {
        // Stateless process: straight to cutover.
        ps.last_chunk_start = t;
        begin_commit(p, t);
        return;
      }
      // Prepare handshake: one control RTT before the first chunk.
      push(t + degraded_.latency(ps.serving, d, t), Event::kChunk, p, ps.epoch);
    } else {
      prepare_waiting_[di].push_back({p, ps.epoch});
      if (!ps.deadline_armed) {
        ps.deadline_armed = true;
        push(t + options_.prepare_timeout, Event::kPrepareDeadline, p,
             ps.epoch);
      }
    }
  }

  void handle_prepare_deadline(ProcessId p, Seconds t, int epoch) {
    Proc& ps = proc(p);
    if (ps.epoch != epoch || ps.phase != Phase::kWaitPrepare) return;
    // Capacity never freed up: break the (possibly cyclic) wait by
    // rolling this migration back.
    record(p).rollbacks += 1;
    report_.rollbacks += 1;
    if (obs_rollbacks_ != nullptr) obs_rollbacks_->add();
    journal(fault::MigrationEventKind::kRollback, t, p, home(p), ps.dest);
    note_activity(t);
    ps.epoch += 1;
    settle_rolled_back(p, t);
  }

  /// Capacity freed on `site`: wake the next prepare waiter, if any.
  void capacity_freed(SiteId site, Seconds t) {
    auto& waiting = prepare_waiting_[static_cast<std::size_t>(site)];
    while (!waiting.empty()) {
      const auto [p, epoch] = waiting.front();
      waiting.pop_front();
      if (proc(p).epoch == epoch && proc(p).phase == Phase::kWaitPrepare) {
        push(t, Event::kPrepare, p, epoch);
        return;
      }
    }
  }

  // -- Copy -----------------------------------------------------------------

  void handle_chunk(ProcessId p, Seconds t, int epoch) {
    Proc& ps = proc(p);
    if (ps.epoch != epoch || ps.phase != Phase::kCopying) return;
    const SiteId d = ps.dest;
    if (permanently_down(d, t)) {
      trigger_replan(t);
      return;
    }
    if (plan_.site_down(d, t)) {
      // Destination outage mid-copy: partial state is lost with it. Roll
      // back and re-prepare once the outage clears.
      rollback_copy(p, t, /*resume_at=*/plan_.next_site_up(d, t));
      return;
    }
    if (permanently_down(ps.serving, t)) {
      const SiteId replacement = cheapest_source(d, t);
      if (replacement < 0) {
        abandon(p, t);
        return;
      }
      ps.serving = replacement;
      record(p).source_switches += 1;
      report_.source_switches += 1;
    }
    const Seconds up = sim::outage_clear_time(plan_, ps.serving, d, t);
    if (up > t) {
      push(up, Event::kChunk, p, ps.epoch);
      return;
    }

    const SiteId s = ps.serving;
    const Bytes remaining =
        options_.bytes_per_process - ps.chunks_done * options_.chunk_bytes;
    const Bytes bytes = std::min(options_.chunk_bytes, remaining);
    const std::size_t link = link_index(s, d);
    if (s != d && link_inflight_[link] >= options_.link_concurrency) {
      link_waiting_[link].push_back({p, ps.epoch});
      return;
    }
    if (s != d) link_inflight_[link] += 1;

    // Loss detection + backoff per attempt (deterministic: pure hash of
    // plan seed / link / stream / attempt). A lost attempt still put the
    // chunk on the wire — it counts against the byte budget.
    ProcessMigrationRecord& rec = record(p);
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(p) << 32) ^
        (static_cast<std::uint64_t>(rec.copy_attempts) << 20) ^
        static_cast<std::uint64_t>(ps.chunks_done);
    Seconds ta = t;
    bool delivered = false;
    for (int attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
      if (!plan_.message_lost(s, d, ta, stream, static_cast<std::uint64_t>(attempt))) {
        delivered = true;
        break;
      }
      rec.chunk_retries += 1;
      report_.chunk_retries += 1;
      if (obs_chunk_retries_ != nullptr) obs_chunk_retries_->add();
      rec.bytes_sent += bytes;
      report_.bytes_sent += bytes;
      journal(fault::MigrationEventKind::kChunk, ta, p, s, d, bytes);
      ta += options_.retry.detect_timeout + options_.retry.backoff(attempt + 1);
    }
    if (!delivered) {
      rec.chunk_timeouts += 1;
      report_.chunk_timeouts += 1;
      if (obs_chunk_timeouts_ != nullptr) obs_chunk_timeouts_->add();
      if (s != d) {
        link_inflight_[link] -= 1;
        push(ta, Event::kSlotFree, -1, 0, static_cast<SiteId>(link));
      }
      rollback_copy(p, ta, /*resume_at=*/ta);
      return;
    }

    Seconds start = ta;
    if (s != d) start = std::max(start, link_free_[link]);
    const Seconds wire = degraded_.transfer_time(s, d, bytes, start);
    const Seconds end = start + wire;
    if (s != d) link_free_[link] = end;
    rec.bytes_sent += bytes;
    report_.bytes_sent += bytes;
    if (obs_chunks_ != nullptr) obs_chunks_->add();
    if (obs_bytes_ != nullptr) obs_bytes_->add(static_cast<std::uint64_t>(bytes));
    if (obs_chunk_seconds_ != nullptr) obs_chunk_seconds_->record(wire);
    if (timeline_ != nullptr && s != d) {
      obs::TimeSeries*& series = tl_migration_[link];
      if (series == nullptr) {
        series = &timeline_->series(
            "migration.bytes",
            options_.timeline_label_prefix + obs::link_label(s, d));
      }
      series->record(start, bytes);
    }
    journal(fault::MigrationEventKind::kChunk, end, p, s, d, bytes);
    note_activity(end);
    ps.chunks_done += 1;
    if (s != d) {
      link_inflight_[link] -= 1;
      push(end, Event::kSlotFree, -1, 0, static_cast<SiteId>(link));
    }
    if (ps.chunks_done < chunks_total_) {
      push(end, Event::kChunk, p, ps.epoch);
    } else {
      ps.last_chunk_start = start;
      begin_commit(p, end);
    }
  }

  void handle_slot_free(SiteId link, Seconds t) {
    auto& waiting = link_waiting_[static_cast<std::size_t>(link)];
    while (!waiting.empty()) {
      const auto [p, epoch] = waiting.front();
      waiting.pop_front();
      if (proc(p).epoch == epoch && proc(p).phase == Phase::kCopying) {
        push(t, Event::kChunk, p, epoch);
        return;
      }
    }
  }

  // -- Commit ---------------------------------------------------------------

  void begin_commit(ProcessId p, Seconds t) {
    Proc& ps = proc(p);
    ProcessMigrationRecord& rec = record(p);
    ps.phase = Phase::kCommitPending;
    // Commit handshake: a small control message, retried on loss. After
    // the retry budget the cutover is forced through — the destination
    // has the full state, only the acknowledgement is in doubt, and a
    // duplicate commit is idempotent (the kCommitApply event is guarded
    // by epoch and phase, so it applies exactly once).
    const std::uint64_t stream =
        (static_cast<std::uint64_t>(p) << 32) ^ 0xC0117EDULL;
    Seconds tc = t;
    bool acked = false;
    for (int attempt = 0; attempt <= options_.retry.max_retries; ++attempt) {
      if (!plan_.message_lost(ps.serving, ps.dest, tc, stream,
                              static_cast<std::uint64_t>(attempt))) {
        acked = true;
        break;
      }
      rec.commit_retries += 1;
      tc += options_.retry.detect_timeout + options_.retry.backoff(attempt + 1);
    }
    if (!acked) rec.commit_forced = true;
    push(tc + degraded_.latency(ps.serving, ps.dest, tc), Event::kCommitApply,
         p, ps.epoch);
  }

  void handle_commit_apply(ProcessId p, Seconds t, int epoch) {
    Proc& ps = proc(p);
    if (ps.epoch != epoch || ps.phase != Phase::kCommitPending) return;
    if (permanently_down(ps.dest, t)) {
      // The destination died in the commit window — the copied state
      // died with it. Roll back; the re-prepare will discover the dead
      // destination and replan.
      ps.phase = Phase::kCopying;  // rollback_copy expects an active copy
      rollback_copy(p, t, /*resume_at=*/t);
      return;
    }
    if (plan_.site_down(ps.dest, t)) {
      push(plan_.next_site_up(ps.dest, t), Event::kCommitApply, p, ps.epoch);
      return;
    }
    const SiteId old_home = home(p);
    const SiteId d = ps.dest;
    ProcessMigrationRecord& rec = record(p);
    // Downtime is determined at commit; compute it before journaling so
    // the streamed commit event carries it.
    rec.downtime = t - ps.last_chunk_start;
    journal(fault::MigrationEventKind::kCommit, t, p, old_home, d);
    note_activity(t);
    resident_[static_cast<std::size_t>(old_home)] -= 1;
    reserved_[static_cast<std::size_t>(d)] -= 1;
    resident_[static_cast<std::size_t>(d)] += 1;
    home_[static_cast<std::size_t>(p)] = d;
    ps.phase = Phase::kCommitted;
    ps.epoch += 1;
    rec.outcome = ProcessOutcome::kCommitted;
    rec.commit_time = t;
    report_.max_downtime = std::max(report_.max_downtime, rec.downtime);
    report_.total_downtime += rec.downtime;
    if (obs_commits_ != nullptr) obs_commits_->add();
    if (obs_downtime_ != nullptr) obs_downtime_->record(rec.downtime);
    if (options_.collector != nullptr && rec.prepare_time >= 0) {
      options_.collector->tracer().record_virtual(p, "migrate/copy", "migrate",
                                                  rec.prepare_time, t);
      options_.collector->tracer().record_virtual(
          p, "migrate/cutover", "migrate", ps.last_chunk_start, t);
    }
    // The old slot frees a prepare waiter; the new home unparks any
    // application flow that was waiting out a dead endpoint.
    capacity_freed(old_home, t);
    unpark_all(t);
  }

  // -- Rollback / replan ----------------------------------------------------

  /// Abort an in-flight copy at time t: release the reservation, discard
  /// partial state, and either re-prepare at `resume_at` (attempts
  /// remaining) or settle at the source.
  void rollback_copy(ProcessId p, Seconds t, Seconds resume_at) {
    Proc& ps = proc(p);
    ProcessMigrationRecord& rec = record(p);
    journal(fault::MigrationEventKind::kRollback, t, p, home(p), ps.dest);
    journal(fault::MigrationEventKind::kRelease, t, p, home(p), ps.dest);
    note_activity(t);
    reserved_[static_cast<std::size_t>(ps.dest)] -= 1;
    rec.rollbacks += 1;
    report_.rollbacks += 1;
    if (obs_rollbacks_ != nullptr) obs_rollbacks_->add();
    ps.chunks_done = 0;
    ps.epoch += 1;
    capacity_freed(ps.dest, t);
    if (rec.copy_attempts < options_.max_copy_attempts) {
      ps.phase = Phase::kWaitPrepare;
      ps.deadline_armed = false;
      ps.prepare_requested = resume_at;
      push(resume_at, Event::kPrepare, p, ps.epoch);
    } else {
      settle_rolled_back(p, t);
    }
  }

  /// A migration gave up (attempts or prepare deadline exhausted): the
  /// process stays at its source if that source is alive; a dead source
  /// forces emergency placement.
  void settle_rolled_back(ProcessId p, Seconds t) {
    Proc& ps = proc(p);
    if (!permanently_down(home(p), t)) {
      ps.phase = Phase::kRolledBack;
      record(p).outcome = ProcessOutcome::kRolledBack;
      return;
    }
    emergency_place(p, t);
  }

  /// Last-resort direct placement for a process stranded on a dead site:
  /// cheapest live site with free capacity, no mapper involved.
  void emergency_place(ProcessId p, Seconds t) {
    Proc& ps = proc(p);
    if (ps.emergency_attempts >= options_.max_emergency_attempts) {
      abandon(p, t);
      return;
    }
    ps.emergency_attempts += 1;
    SiteId best = -1;
    Seconds best_time = std::numeric_limits<double>::infinity();
    for (SiteId s = 0; s < m_; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      if (permanently_down(s, t) || s == home(p)) continue;
      if (resident_[si] + reserved_[si] >= problem_.capacities[si]) continue;
      if (!placement_allowed(p, s, t)) continue;
      const SiteId src = cheapest_source(s, t);
      if (src < 0) continue;
      const Seconds w = degraded_.transfer_time(src, s, options_.chunk_bytes, t);
      if (w < best_time) {
        best_time = w;
        best = s;
      }
    }
    if (best < 0) {
      abandon(p, t);
      return;
    }
    ps.dest = best;
    ps.phase = Phase::kWaitPrepare;
    ps.epoch += 1;
    ps.deadline_armed = false;
    ps.prepare_requested = t;
    push(t, Event::kPrepare, p, ps.epoch);
  }

  void abandon(ProcessId p, Seconds t) {
    Proc& ps = proc(p);
    ps.phase = Phase::kAbandoned;
    ps.epoch += 1;
    record(p).outcome = ProcessOutcome::kAbandoned;
    report_.complete = false;
    note_activity(t);
  }

  void handle_watch(SiteId site, Seconds t) {
    if (!permanently_down(site, t)) return;
    // Anything committed to (or migrating onto) the dead site needs a
    // new destination; in-flight copies discover it through their own
    // chunk traffic, but settled processes would never notice.
    bool stranded = false;
    for (ProcessId p = 0; p < n_ && !stranded; ++p) {
      const Proc& ps = proc(p);
      const bool active =
          ps.phase == Phase::kWaitPrepare || ps.phase == Phase::kCopying ||
          ps.phase == Phase::kCommitPending;
      if (home(p) == site && !active) stranded = true;
      if (active && ps.dest == site) stranded = true;
    }
    if (stranded) trigger_replan(t);
  }

  void trigger_replan(Seconds t) {
    const std::vector<SiteId> dead = [&] {
      std::vector<SiteId> out;
      for (SiteId s = 0; s < m_; ++s) {
        if (permanently_down(s, t)) out.push_back(s);
      }
      return out;
    }();

    Mapping new_target;
    bool mapped = false;
    if (report_.replans < options_.max_replans) {
      report_.replans += 1;
      if (obs_replans_ != nullptr) obs_replans_->add();
      journal(fault::MigrationEventKind::kReplan, t, -1, -1, -1);
      note_activity(t);
      mapping::MappingProblem rebuilt = problem_;
      rebuilt.network = degraded_.snapshot(t);
      for (SiteId s : dead)
        rebuilt.capacities[static_cast<std::size_t>(s)] = 0;
      if (!rebuilt.constraints.empty()) {
        for (SiteId& pin : rebuilt.constraints) {
          if (pin != kUnconstrained && permanently_down(pin, t))
            pin = kUnconstrained;
        }
      }
      if (!rebuilt.allowed_sites.empty()) {
        for (auto& allowed : rebuilt.allowed_sites) {
          for (SiteId s : dead) {
            allowed.erase(std::remove(allowed.begin(), allowed.end(), s),
                          allowed.end());
          }
        }
      }
      try {
        rebuilt.validate();
        core::GeoDistOptions mapper_options = options_.mapper;
        if (mapper_options.collector == nullptr)
          mapper_options.collector = options_.collector;
        core::GeoDistMapper mapper(mapper_options);
        new_target = mapper.map(rebuilt);
        mapped = true;
      } catch (const Error&) {
        mapped = false;  // infeasible — fall through to emergency placement
      }
    }

    for (ProcessId p = 0; p < n_; ++p) {
      Proc& ps = proc(p);
      const bool active =
          ps.phase == Phase::kWaitPrepare || ps.phase == Phase::kCopying;
      const SiteId desired =
          mapped ? new_target[static_cast<std::size_t>(p)] : SiteId{-1};
      if (active) {
        if (mapped && desired == ps.dest) continue;  // plan unchanged
        if (!mapped && !permanently_down(ps.dest, t)) continue;
        // Redirect: abort the current transfer, then re-prepare toward
        // the new destination (or settle when the mapper now keeps the
        // process at its live home).
        if (ps.phase == Phase::kCopying) {
          journal(fault::MigrationEventKind::kRollback, t, p, home(p), ps.dest);
          journal(fault::MigrationEventKind::kRelease, t, p, home(p), ps.dest);
          reserved_[static_cast<std::size_t>(ps.dest)] -= 1;
          record(p).rollbacks += 1;
          report_.rollbacks += 1;
          if (obs_rollbacks_ != nullptr) obs_rollbacks_->add();
          ps.chunks_done = 0;
          capacity_freed(ps.dest, t);
        }
        ps.epoch += 1;
        if (mapped && desired == home(p) && !permanently_down(home(p), t)) {
          ps.phase = Phase::kRolledBack;
          record(p).outcome = ProcessOutcome::kRolledBack;
          continue;
        }
        if (mapped) {
          ps.dest = desired;
          ps.phase = Phase::kWaitPrepare;
          ps.deadline_armed = false;
          ps.prepare_requested = t;
          push(t, Event::kPrepare, p, ps.epoch);
        } else {
          settle_rolled_back(p, t);
        }
      } else if ((ps.phase == Phase::kIdle || ps.phase == Phase::kCommitted ||
                  ps.phase == Phase::kRolledBack) &&
                 permanently_down(home(p), t)) {
        // Settled on a site that just died: open a fresh migration.
        if (mapped && desired != home(p)) {
          ps.dest = desired;
          ps.phase = Phase::kWaitPrepare;
          ps.epoch += 1;
          ps.deadline_armed = false;
          ps.prepare_requested = t;
          if (record(p).planned_dest < 0) record(p).planned_dest = desired;
          push(t, Event::kPrepare, p, ps.epoch);
        } else {
          emergency_place(p, t);
        }
      }
    }
  }

  // -- Finalization ---------------------------------------------------------

  void finalize() {
    report_.final_mapping = home_;
    report_.finish_time = std::max(now_, start_);
    report_.migration_seconds =
        migration_finish_ > start_ ? migration_finish_ - start_ : 0.0;
    for (ProcessId p = 0; p < n_; ++p) {
      ProcessMigrationRecord& rec = record(p);
      rec.final_home = home(p);
      rec.copy_attempts = std::max(rec.copy_attempts, 0);
      switch (rec.outcome) {
        case ProcessOutcome::kCommitted:
          report_.processes_committed += 1;
          break;
        case ProcessOutcome::kRolledBack:
          report_.processes_rolled_back += 1;
          break;
        case ProcessOutcome::kAbandoned:
          report_.processes_abandoned += 1;
          break;
        case ProcessOutcome::kStayed:
          break;
      }
    }
    // Flows still parked at exit belong to abandoned (never-recovered)
    // endpoints; their block time runs to the end of the journal.
    for (ProcessId p : parked_) {
      Proc& ps = proc(p);
      if (ps.parked_at >= 0) {
        report_.app_blocked_seconds += report_.finish_time - ps.parked_at;
        ps.parked_at = -1;
      }
    }
    if (options_.record_events) {
      std::stable_sort(report_.events.begin(), report_.events.end(),
                       [](const fault::MigrationEvent& a,
                          const fault::MigrationEvent& b) { return a.t < b.t; });
    }
  }

  const mapping::MappingProblem& problem_;
  const fault::FaultPlan& plan_;
  fault::DegradedNetworkModel degraded_;
  MigrationOptions options_;
  const Seconds start_;
  const int n_;
  const int m_;

  Mapping home_;
  std::vector<int> resident_;
  std::vector<int> reserved_;
  std::vector<Seconds> link_free_;
  std::vector<int> link_inflight_;
  std::vector<std::deque<std::pair<ProcessId, int>>> link_waiting_;
  std::vector<std::deque<std::pair<ProcessId, int>>> prepare_waiting_;
  std::vector<Proc> procs_;
  std::vector<ProcessId> parked_;
  int chunks_total_ = 0;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::uint64_t seq_ = 0;
  Seconds now_ = 0;
  Seconds migration_finish_ = 0;
  MigrationReport report_;

  // Observability handles (all null without a collector).
  obs::Span exec_span_;
  obs::Phase exec_phase_;
  obs::Counter* obs_chunks_ = nullptr;
  obs::Counter* obs_chunk_retries_ = nullptr;
  obs::Counter* obs_chunk_timeouts_ = nullptr;
  obs::Counter* obs_rollbacks_ = nullptr;
  obs::Counter* obs_replans_ = nullptr;
  obs::Counter* obs_commits_ = nullptr;
  obs::Counter* obs_bytes_ = nullptr;
  obs::Histogram* obs_chunk_seconds_ = nullptr;
  obs::Histogram* obs_downtime_ = nullptr;
  obs::Histogram* obs_prepare_wait_ = nullptr;
  obs::EventLog* elog_ = nullptr;
  obs::TimeSeriesRegistry* timeline_ = nullptr;
  std::vector<obs::TimeSeries*> tl_migration_;
  std::vector<obs::TimeSeries*> tl_latency_;
};

}  // namespace

MigrationReport execute_migration(const mapping::MappingProblem& problem,
                                  const Mapping& current, const Mapping& target,
                                  const fault::FaultPlan& plan,
                                  Seconds start_time,
                                  const MigrationOptions& options) {
  Engine engine(problem, current, target, plan, start_time, options);
  return engine.run();
}

}  // namespace geomap::migrate
