#include "sim/perf_model.h"

#include "common/error.h"

namespace geomap::sim {

double total_improvement_percent(const PerfBreakdown& baseline,
                                 Seconds optimized_comm) {
  const Seconds base_total = baseline.total();
  GEOMAP_CHECK_MSG(base_total > 0, "baseline total must be positive");
  const Seconds new_total = optimized_comm + baseline.compute + baseline.io;
  return (base_total - new_total) / base_total * 100.0;
}

}  // namespace geomap::sim
