#pragma once
// Total-time performance model for "EC2-like" results at scales where the
// thread-per-rank runtime is impractical: combines a mapping-dependent
// communication estimate with mapping-independent computation and I/O
// components measured (or modeled) per application — the decomposition
// behind the paper's observation that simulation-only improvements exceed
// the EC2 ones because computation and I/O dilute the gain (Section 5.4).

#include <string>

#include "common/types.h"

namespace geomap::sim {

struct PerfBreakdown {
  Seconds comm = 0;
  Seconds compute = 0;
  Seconds io = 0;

  Seconds total() const { return comm + compute + io; }
};

/// Improvement on total time when only the communication part changes.
double total_improvement_percent(const PerfBreakdown& baseline,
                                 Seconds optimized_comm);

}  // namespace geomap::sim
