#include "sim/replay.h"

#include <deque>
#include <map>
#include <vector>

#include "common/error.h"

namespace geomap::sim {

namespace {

using trace::Op;

struct PostedSend {
  std::int64_t send_index;  // sender's posting order
  Bytes bytes;
  Seconds sender_ready;
};

struct RankState {
  std::size_t pc = 0;          // next op
  Seconds now = 0;
  Seconds comm_seconds = 0;
  std::int64_t sends_posted = 0;
  /// Completion time per posted send, filled when the receiver matches;
  /// kUnmatched until then.
  std::vector<Seconds> send_completion;
  bool blocked = false;
};

constexpr Seconds kUnmatched = -1.0;

struct LinkSchedule {
  std::vector<std::pair<Seconds, Seconds>> busy;

  Seconds reserve(Seconds ready, Seconds wire) {
    Seconds start = ready;
    std::size_t insert_at = 0;
    for (; insert_at < busy.size(); ++insert_at) {
      const auto& [busy_start, busy_end] = busy[insert_at];
      if (start + wire <= busy_start) break;
      start = std::max(start, busy_end);
    }
    const Seconds completion = start + wire;
    busy.insert(busy.begin() + static_cast<std::ptrdiff_t>(insert_at),
                {start, completion});
    return completion;
  }
};

}  // namespace

ReplayResult replay_ops(const trace::OpTraceLog& ops,
                        const net::NetworkModel& model,
                        const Mapping& mapping) {
  const int p = ops.num_ranks();
  GEOMAP_CHECK_MSG(static_cast<int>(mapping.size()) == p,
                   "mapping size != trace rank count");
  const int m = model.num_sites();
  for (const SiteId s : mapping)
    GEOMAP_CHECK_MSG(s >= 0 && s < m, "mapping names invalid site " << s);

  std::vector<RankState> ranks(static_cast<std::size_t>(p));
  // Pending sends per (src, dst, tag), FIFO — the runtime's matching
  // discipline.
  std::map<std::tuple<int, int, int>, std::deque<PostedSend>> posted;
  std::vector<LinkSchedule> links(static_cast<std::size_t>(m) * m);

  // Round-robin: run each rank until it blocks; repeat until done.
  bool progressed = true;
  std::size_t remaining_ops = ops.total_ops();
  while (remaining_ops > 0) {
    GEOMAP_CHECK_MSG(progressed,
                     "replay deadlock: no rank can make progress "
                     "(malformed or truncated trace)");
    progressed = false;
    for (ProcessId r = 0; r < p; ++r) {
      RankState& state = ranks[static_cast<std::size_t>(r)];
      const std::vector<Op>& prog = ops.rank(r);
      while (state.pc < prog.size()) {
        const Op& op = prog[state.pc];
        bool executed = false;
        switch (op.kind) {
          case Op::Kind::kCompute:
            state.now += op.seconds;
            executed = true;
            break;
          case Op::Kind::kSend: {
            posted[{r, op.peer, op.tag}].push_back(
                PostedSend{state.sends_posted, op.bytes, state.now});
            ++state.sends_posted;
            state.send_completion.push_back(kUnmatched);
            executed = true;
            break;
          }
          case Op::Kind::kRecv: {
            auto it = posted.find({op.peer, r, op.tag});
            if (it == posted.end() || it->second.empty()) break;  // blocked
            const PostedSend send = it->second.front();
            it->second.pop_front();
            const SiteId src_site = mapping[static_cast<std::size_t>(op.peer)];
            const SiteId dst_site = mapping[static_cast<std::size_t>(r)];
            const Seconds ready = std::max(send.sender_ready, state.now);
            const Seconds wire =
                model.transfer_time(src_site, dst_site, send.bytes);
            const Seconds completion =
                src_site == dst_site
                    ? ready + wire
                    : links[static_cast<std::size_t>(src_site) * m + dst_site]
                          .reserve(ready, wire);
            state.comm_seconds += completion - state.now;
            state.now = completion;
            ranks[static_cast<std::size_t>(op.peer)]
                .send_completion[static_cast<std::size_t>(send.send_index)] =
                completion;
            executed = true;
            break;
          }
          case Op::Kind::kWait: {
            GEOMAP_CHECK_MSG(
                op.send_index >= 0 &&
                    op.send_index <
                        static_cast<std::int64_t>(state.send_completion.size()),
                "wait references unknown send #" << op.send_index);
            const Seconds completion =
                state.send_completion[static_cast<std::size_t>(op.send_index)];
            if (completion == kUnmatched) break;  // blocked on the receiver
            if (completion > state.now) {
              state.comm_seconds += completion - state.now;
              state.now = completion;
            }
            executed = true;
            break;
          }
        }
        if (!executed) break;  // rank is blocked; move to the next rank
        ++state.pc;
        --remaining_ops;
        progressed = true;
      }
    }
  }

  // Every posted send must have been matched.
  for (const auto& [key, queue] : posted) {
    GEOMAP_CHECK_MSG(queue.empty(), "trace left unmatched sends");
  }

  ReplayResult result;
  result.finish_times.reserve(static_cast<std::size_t>(p));
  for (const RankState& state : ranks) {
    result.finish_times.push_back(state.now);
    result.makespan = std::max(result.makespan, state.now);
    result.max_comm_seconds =
        std::max(result.max_comm_seconds, state.comm_seconds);
  }
  return result;
}

}  // namespace geomap::sim
