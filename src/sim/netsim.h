#pragma once
// Network simulation (the paper's ns-2 substitute, Section 5.4).
//
// Two estimators of an application's communication time under a mapping:
//
//  * alpha_beta_cost — the paper's own cost model, Equation (2)/(3): the
//    sum over process pairs of AG·LT + CG/BT. This is what the paper's
//    simulation results normalize and compare.
//
//  * replay_with_contention — a discrete-event replay where each ordered
//    site pair is a serializing link of bandwidth BT: each process issues
//    its messages in pattern order, messages queue on busy links, and the
//    makespan is the last completion. This adds the congestion effect the
//    analytic sum ignores and serves as a robustness check: improvements
//    should keep their ordering under contention.

#include "common/types.h"
#include "fault/degraded_network.h"
#include "mapping/problem.h"
#include "net/network_model.h"
#include "trace/comm_matrix.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::sim {

/// Paper Equation (2): total alpha-beta communication cost of `mapping`.
Seconds alpha_beta_cost(const trace::CommMatrix& comm,
                        const net::NetworkModel& model, const Mapping& mapping);

struct ContentionResult {
  /// Last message completion over all processes.
  Seconds makespan = 0;
  /// Busy time of the most loaded inter-site link.
  Seconds busiest_link_seconds = 0;
  /// Sum of per-message latencies+transfer (equals alpha_beta_cost).
  Seconds total_transfer_seconds = 0;
};

/// Event-driven replay with per-site-pair link serialization. Messages of
/// one source process issue sequentially in CSR row order; intra-site
/// traffic uses the (infinite-parallelism) intra link and never queues.
/// `collector` (opt-in, not owned) wraps the replay in a wall span,
/// records edge counts plus contention-stall histograms, and records the
/// replay's happened-before DAG as one critical-path run named `label`
/// (see obs/critpath.h); nullptr replays the exact uninstrumented path
/// with bit-identical results.
ContentionResult replay_with_contention(const trace::CommMatrix& comm,
                                        const net::NetworkModel& model,
                                        const Mapping& mapping,
                                        obs::Collector* collector = nullptr,
                                        const char* label = "sim/replay");

/// Fault-aware replay: identical discrete-event engine, but every edge's
/// wire time is evaluated under `model`'s fault plan as of the edge's
/// virtual issue time (`start_time` offsets the whole replay into the
/// plan's schedule), so analytic estimates stay comparable with the
/// runtime's degraded executions. Edges issuing while an endpoint site is
/// out stall until the outage ends; a permanent outage in the replayed
/// window throws Error — remap first (core/remap.h), then replay the
/// surviving mapping. Per-message loss is not modeled here: CSR edges
/// aggregate many messages, so loss shows up only in the runtime's
/// accounting. The returned makespan is the replay *duration* (last
/// completion minus start_time). With an empty plan and start_time 0 this
/// reproduces the fault-free overload bit-for-bit.
ContentionResult replay_with_contention(const trace::CommMatrix& comm,
                                        const fault::DegradedNetworkModel& model,
                                        const Mapping& mapping,
                                        Seconds start_time = 0,
                                        obs::Collector* collector = nullptr,
                                        const char* label = "sim/replay");

// ---------------------------------------------------------------------------
// Multi-tenant replay: K independent jobs sharing one substrate
//
// The per-link serialization above assumes every flow belongs to one
// application. A geo-distributed substrate hosts many: each tenant has
// its own communication graph and mapping, but the ordered site-pair
// links are shared, so one tenant's burst queues behind another's. The
// multi-tenant replay interleaves *all* tenants' flows on one shared set
// of serializing links, deterministically: the pending-flow queue is
// ordered by (issue time, tenant id, process id, edge index), a total
// order, so identical inputs produce bit-identical per-tenant results
// regardless of tenant count or host scheduling.

/// One tenant's workload on the shared substrate (non-owning; both must
/// outlive the replay call).
struct TenantFlow {
  const trace::CommMatrix* comm = nullptr;
  const Mapping* mapping = nullptr;
};

struct MultiTenantReplayOptions {
  /// Virtual time the replay (and the fault plan's schedule) starts at.
  Seconds start_time = 0;

  /// Times each process re-issues its edge list (an iterative
  /// application's rounds). One round often completes before a
  /// mid-horizon fault even starts; an observation run sizes this so
  /// traffic spans the chaos horizon and the detector sees post-outage
  /// telemetry.
  int rounds = 1;

  /// Permanent-outage semantics. The single-tenant fault-aware replay
  /// throws when an edge would wait forever; a multi-tenant observation
  /// run must instead keep going so the detector gets telemetry from
  /// *after* the death. With force_through, an edge whose endpoints never
  /// come back up is delivered after `force_timeout` extra virtual
  /// seconds (the runtime's retry-exhaustion semantics) and a
  /// `link.timeout` point is recorded — exactly the down signal the
  /// degradation detector keys on.
  bool force_through = true;
  Seconds force_timeout = 2.0;

  /// Observability (opt-in, not owned): `link.latency_ratio` and
  /// `link.timeout` per-link series on the shared timeline plus
  /// sim.mt_* counters. nullptr replays the exact uninstrumented path
  /// with bit-identical results.
  obs::Collector* collector = nullptr;
  const char* label = "sim/multitenant";
};

/// Per-tenant view of a shared replay.
struct TenantReplayResult {
  /// Last completion of this tenant's flows minus start_time.
  Seconds makespan = 0;
  Seconds total_transfer_seconds = 0;
  /// Edges delivered by the force-through path (0 on healthy runs).
  int forced_edges = 0;
};

struct MultiTenantReplayResult {
  std::vector<TenantReplayResult> tenants;
  /// Max over tenants.
  Seconds makespan = 0;
  Seconds busiest_link_seconds = 0;
};

/// Replay every tenant's traffic concurrently on the shared serializing
/// links under `model`'s fault plan. Bit-reproducible: identical inputs
/// give identical results across runs and machines. A fault-free
/// single-tenant call reproduces replay_with_contention's
/// total_transfer_seconds exactly (the per-edge prices are identical;
/// the issue interleaving may differ on ties because this queue's
/// tie-break is total). Throws InvalidArgument on malformed tenants and
/// Error when an edge crosses a permanent outage with force_through
/// disabled.
MultiTenantReplayResult replay_multitenant(
    const std::vector<TenantFlow>& tenants,
    const fault::DegradedNetworkModel& model,
    const MultiTenantReplayOptions& options = {});

/// Earliest time >= t at which *both* endpoint sites of ordered link
/// (src, dst) are simultaneously up under `plan`; fault::kNoEnd when a
/// permanent outage makes the wait unbounded. Shared by the fault-aware
/// replay (which treats kNoEnd as an error — remap first) and the
/// migration executor (which parks the flow and replans instead).
Seconds outage_clear_time(const fault::FaultPlan& plan, SiteId src, SiteId dst,
                          Seconds t);

/// Communication improvement of `mapping` over `baseline` in percent,
/// under the alpha-beta model.
double comm_improvement_percent(const trace::CommMatrix& comm,
                                const net::NetworkModel& model,
                                const Mapping& baseline,
                                const Mapping& mapping);

}  // namespace geomap::sim
