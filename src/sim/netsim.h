#pragma once
// Network simulation (the paper's ns-2 substitute, Section 5.4).
//
// Two estimators of an application's communication time under a mapping:
//
//  * alpha_beta_cost — the paper's own cost model, Equation (2)/(3): the
//    sum over process pairs of AG·LT + CG/BT. This is what the paper's
//    simulation results normalize and compare.
//
//  * replay_with_contention — a discrete-event replay where each ordered
//    site pair is a serializing link of bandwidth BT: each process issues
//    its messages in pattern order, messages queue on busy links, and the
//    makespan is the last completion. This adds the congestion effect the
//    analytic sum ignores and serves as a robustness check: improvements
//    should keep their ordering under contention.

#include "common/types.h"
#include "fault/degraded_network.h"
#include "mapping/problem.h"
#include "net/network_model.h"
#include "trace/comm_matrix.h"

namespace geomap::obs {
class Collector;
}

namespace geomap::sim {

/// Paper Equation (2): total alpha-beta communication cost of `mapping`.
Seconds alpha_beta_cost(const trace::CommMatrix& comm,
                        const net::NetworkModel& model, const Mapping& mapping);

struct ContentionResult {
  /// Last message completion over all processes.
  Seconds makespan = 0;
  /// Busy time of the most loaded inter-site link.
  Seconds busiest_link_seconds = 0;
  /// Sum of per-message latencies+transfer (equals alpha_beta_cost).
  Seconds total_transfer_seconds = 0;
};

/// Event-driven replay with per-site-pair link serialization. Messages of
/// one source process issue sequentially in CSR row order; intra-site
/// traffic uses the (infinite-parallelism) intra link and never queues.
/// `collector` (opt-in, not owned) wraps the replay in a wall span,
/// records edge counts plus contention-stall histograms, and records the
/// replay's happened-before DAG as one critical-path run named `label`
/// (see obs/critpath.h); nullptr replays the exact uninstrumented path
/// with bit-identical results.
ContentionResult replay_with_contention(const trace::CommMatrix& comm,
                                        const net::NetworkModel& model,
                                        const Mapping& mapping,
                                        obs::Collector* collector = nullptr,
                                        const char* label = "sim/replay");

/// Fault-aware replay: identical discrete-event engine, but every edge's
/// wire time is evaluated under `model`'s fault plan as of the edge's
/// virtual issue time (`start_time` offsets the whole replay into the
/// plan's schedule), so analytic estimates stay comparable with the
/// runtime's degraded executions. Edges issuing while an endpoint site is
/// out stall until the outage ends; a permanent outage in the replayed
/// window throws Error — remap first (core/remap.h), then replay the
/// surviving mapping. Per-message loss is not modeled here: CSR edges
/// aggregate many messages, so loss shows up only in the runtime's
/// accounting. The returned makespan is the replay *duration* (last
/// completion minus start_time). With an empty plan and start_time 0 this
/// reproduces the fault-free overload bit-for-bit.
ContentionResult replay_with_contention(const trace::CommMatrix& comm,
                                        const fault::DegradedNetworkModel& model,
                                        const Mapping& mapping,
                                        Seconds start_time = 0,
                                        obs::Collector* collector = nullptr,
                                        const char* label = "sim/replay");

/// Earliest time >= t at which *both* endpoint sites of ordered link
/// (src, dst) are simultaneously up under `plan`; fault::kNoEnd when a
/// permanent outage makes the wait unbounded. Shared by the fault-aware
/// replay (which treats kNoEnd as an error — remap first) and the
/// migration executor (which parks the flow and replans instead).
Seconds outage_clear_time(const fault::FaultPlan& plan, SiteId src, SiteId dst,
                          Seconds t);

/// Communication improvement of `mapping` over `baseline` in percent,
/// under the alpha-beta model.
double comm_improvement_percent(const trace::CommMatrix& comm,
                                const net::NetworkModel& model,
                                const Mapping& baseline,
                                const Mapping& mapping);

}  // namespace geomap::sim
