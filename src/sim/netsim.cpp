#include "sim/netsim.h"

#include <algorithm>
#include <map>
#include <queue>

#include "common/error.h"
#include "mapping/cost.h"
#include "mapping/metrics.h"
#include "obs/collector.h"

namespace geomap::sim {

Seconds alpha_beta_cost(const trace::CommMatrix& comm,
                        const net::NetworkModel& model,
                        const Mapping& mapping) {
  GEOMAP_CHECK_MSG(static_cast<int>(mapping.size()) == comm.num_processes(),
                   "mapping size mismatch");
  Seconds total = 0;
  for (ProcessId i = 0; i < comm.num_processes(); ++i) {
    const SiteId si = mapping[static_cast<std::size_t>(i)];
    const trace::CommMatrix::Row row = comm.row(i);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const SiteId sj = mapping[static_cast<std::size_t>(row.dst[k])];
      total += model.message_cost(si, sj, row.count[k], row.volume[k]);
    }
  }
  return total;
}

namespace {

// One priced CSR edge: total serialized wire time plus its healthy
// alpha/beta split. Fault-aware pricing inflates `wire` above
// alpha + beta; the engine attributes the excess to the fault-stall
// component of the edge's critical-path event.
struct WirePrice {
  Seconds wire = 0;
  Seconds alpha = 0;
  Seconds beta = 0;
};

// Shared discrete-event engine: `wire_at(src, dst, count, volume, t)`
// prices one CSR edge issued at virtual time t, `stall_until(src, dst, t)`
// may push the issue time forward (outage stalls). The fault-free overload
// instantiates both as time-independent, which reproduces the historical
// arithmetic exactly.
template <typename WireFn, typename StallFn>
ContentionResult replay_engine(const trace::CommMatrix& comm, int num_sites,
                               const Mapping& mapping, Seconds start_time,
                               WireFn&& wire_at, StallFn&& stall_until,
                               obs::Collector* collector, const char* label) {
  GEOMAP_CHECK_MSG(static_cast<int>(mapping.size()) == comm.num_processes(),
                   "mapping size mismatch");
  const int n = comm.num_processes();
  const int m = num_sites;

  // Handles resolved once; the per-edge loop only dereferences them.
  obs::Span replay_span;
  obs::Counter* edges_replayed = nullptr;
  obs::Histogram* queue_stalls = nullptr;
  obs::Histogram* outage_stalls = nullptr;
  obs::CritGraph* crit = nullptr;
  obs::TimeSeriesRegistry* timeline = nullptr;
  int crit_run = -1;
  obs::Phase replay_phase;
  if (collector != nullptr) {
    replay_span = collector->tracer().span("sim/replay", "sim");
    replay_phase = collector->profile().phase(std::string("replay:") + label);
    replay_phase.count("edges", comm.nnz());
    collector->mem().note("comm.csr", comm.memory_bytes());
    edges_replayed = &collector->metrics().counter("sim.edges_replayed");
    queue_stalls =
        &collector->metrics().histogram("sim.contention_stall_seconds");
    outage_stalls = &collector->metrics().histogram("sim.outage_stall_seconds");
    // Per-edge event recording is a forensic recorder; `crit` stays null
    // (and the event loop skips it) unless the artifact was asked for.
    if (collector->critpath_enabled()) {
      crit = &collector->critpath();
      crit_run = crit->begin_run(label, start_time);
    }
    timeline = &collector->timeline();
  }
  // The replay loop is single-threaded and hot: per-edge observations are
  // buffered locally and flushed in one batch per metric after the loop
  // (state-identical — see record_many — at a fraction of the locking
  // cost; the self-overhead gate holds the collector-on tax under 5%).
  std::uint64_t edges_count = 0;
  std::vector<double> queue_stall_buf;
  std::vector<double> outage_stall_buf;
  std::vector<std::vector<obs::TimePoint>> tl_latency_buf(
      timeline != nullptr ? static_cast<std::size_t>(m) * m : 0);

  // Per ordered inter-site pair: time the link frees up; per process:
  // time the process can issue its next message.
  std::vector<Seconds> link_free(static_cast<std::size_t>(m) * m, start_time);
  std::vector<Seconds> link_busy(static_cast<std::size_t>(m) * m, 0.0);
  std::vector<Seconds> proc_ready(static_cast<std::size_t>(n), start_time);
  // Critical-path bookkeeping: last event of each process chain and the
  // event currently occupying each link (both -1 until recorded).
  std::vector<std::int64_t> proc_last;
  std::vector<std::int64_t> link_last;
  if (crit != nullptr) {
    proc_last.assign(static_cast<std::size_t>(n), -1);
    link_last.assign(static_cast<std::size_t>(m) * m, -1);
  }

  // Priority queue of (issue_time, process, edge_index) — processes
  // replay their rows in order; globally we process the earliest
  // issue-ready message first so link queues interleave fairly.
  struct Pending {
    Seconds ready;
    ProcessId proc;
    std::size_t edge;  // index into the process's row
    bool operator>(const Pending& other) const { return ready > other.ready; }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> q;
  for (ProcessId i = 0; i < n; ++i) {
    if (comm.row(i).size() > 0) q.push(Pending{start_time, i, 0});
  }

  ContentionResult result;
  while (!q.empty()) {
    const Pending p = q.top();
    q.pop();
    const trace::CommMatrix::Row row = comm.row(p.proc);
    const SiteId src = mapping[static_cast<std::size_t>(p.proc)];
    const SiteId dst = mapping[static_cast<std::size_t>(row.dst[p.edge])];

    const Seconds stalled = stall_until(src, dst, p.ready);
    if (outage_stalls != nullptr && stalled > p.ready)
      outage_stall_buf.push_back(stalled - p.ready);
    Seconds start = stalled;
    std::int64_t link_pred = -1;
    if (src != dst) {
      const std::size_t link =
          static_cast<std::size_t>(src) * m + static_cast<std::size_t>(dst);
      if (link_free[link] > start) {
        if (queue_stalls != nullptr)
          queue_stall_buf.push_back(link_free[link] - start);
        if (crit != nullptr) link_pred = link_last[link];
      }
      start = std::max(start, link_free[link]);
    }
    // The CSR edge aggregates count[k] messages of total volume[k]; its
    // serialized wire time is count·LT + volume/BT, priced as of `start`.
    const WirePrice price =
        wire_at(src, dst, row.count[p.edge], row.volume[p.edge], start);
    const Seconds wire = price.wire;
    result.total_transfer_seconds += wire;
    const Seconds end = start + wire;
    if (src != dst) {
      const std::size_t link =
          static_cast<std::size_t>(src) * m + static_cast<std::size_t>(dst);
      link_free[link] = end;
      link_busy[link] += wire;
    }
    proc_ready[static_cast<std::size_t>(p.proc)] = end;
    result.makespan = std::max(result.makespan, end - start_time);
    if (edges_replayed != nullptr) edges_count += 1;
    if (timeline != nullptr && src != dst) {
      // Same wire-inflation signal the runtime records: priced wire over
      // the healthy alpha-beta price, 1.0 on an unfaulted link.
      const std::size_t link =
          static_cast<std::size_t>(src) * m + static_cast<std::size_t>(dst);
      const Seconds healthy = price.alpha + price.beta;
      if (healthy > 0)
        tl_latency_buf[link].push_back(obs::TimePoint{start, wire / healthy});
    }
    if (crit != nullptr) {
      obs::CritEvent e;
      e.id = crit->next_id();
      e.run = crit_run;
      e.seq = static_cast<std::int64_t>(p.edge);
      e.kind = "edge";
      e.rank = p.proc;
      e.peer = row.dst[p.edge];
      e.src_site = src;
      e.dst_site = dst;
      e.messages = row.count[p.edge];
      e.bytes = row.volume[p.edge];
      e.ready = p.ready;
      e.start = start;
      e.end = end;
      e.alpha_seconds = price.alpha;
      e.beta_seconds = price.beta;
      // Outage stall plus fault-inflated wire excess over the healthy
      // alpha-beta price; link queueing is the contention component.
      // Subtracting the re-formed sum (not alpha then beta) keeps the
      // fault-free overload — where wire *is* fl(alpha + beta) — at an
      // exact zero instead of a rounding residue.
      e.fault_stall_seconds =
          (stalled - p.ready) + (wire - (price.alpha + price.beta));
      e.contention_stall_seconds = start - stalled;
      e.pred_program = proc_last[static_cast<std::size_t>(p.proc)];
      e.pred_link = link_pred;
      proc_last[static_cast<std::size_t>(p.proc)] = e.id;
      if (src != dst) {
        const std::size_t link =
            static_cast<std::size_t>(src) * m + static_cast<std::size_t>(dst);
        link_last[link] = e.id;
      }
      crit->add(std::move(e));
    }

    if (p.edge + 1 < row.size()) q.push(Pending{end, p.proc, p.edge + 1});
  }
  if (edges_replayed != nullptr) edges_replayed->add(edges_count);
  if (outage_stalls != nullptr) outage_stalls->record_many(outage_stall_buf);
  if (queue_stalls != nullptr) queue_stalls->record_many(queue_stall_buf);
  if (timeline != nullptr) {
    for (SiteId src = 0; src < m; ++src) {
      for (SiteId dst = 0; dst < m; ++dst) {
        const std::vector<obs::TimePoint>& buf =
            tl_latency_buf[static_cast<std::size_t>(src) * m +
                           static_cast<std::size_t>(dst)];
        if (buf.empty()) continue;
        timeline->series("link.latency_ratio", obs::link_label(src, dst))
            .record_many(buf);
      }
    }
  }
  result.busiest_link_seconds =
      link_busy.empty() ? 0.0
                        : *std::max_element(link_busy.begin(), link_busy.end());
  return result;
}

}  // namespace

ContentionResult replay_with_contention(const trace::CommMatrix& comm,
                                        const net::NetworkModel& model,
                                        const Mapping& mapping,
                                        obs::Collector* collector,
                                        const char* label) {
  return replay_engine(
      comm, model.num_sites(), mapping, 0.0,
      [&](SiteId src, SiteId dst, double count, Bytes volume, Seconds) {
        const Seconds alpha = count * model.latency(src, dst);
        const Seconds beta = volume / model.bandwidth(src, dst);
        return WirePrice{alpha + beta, alpha, beta};
      },
      [](SiteId, SiteId, Seconds t) { return t; }, collector, label);
}

ContentionResult replay_with_contention(
    const trace::CommMatrix& comm, const fault::DegradedNetworkModel& model,
    const Mapping& mapping, Seconds start_time, obs::Collector* collector,
    const char* label) {
  const fault::FaultPlan& plan = model.plan();
  return replay_engine(
      comm, model.num_sites(), mapping, start_time,
      [&](SiteId src, SiteId dst, double count, Bytes volume, Seconds t) {
        // Healthy split from the base model; the degraded price's excess
        // over it is the edge's fault component.
        const Seconds alpha = count * model.base().latency(src, dst);
        const Seconds beta = volume / model.base().bandwidth(src, dst);
        return WirePrice{model.message_cost(src, dst, count, volume, t),
                         alpha, beta};
      },
      [&](SiteId src, SiteId dst, Seconds t) {
        // Outage stall: wait until both endpoints are back up. Permanent
        // outages cannot be replayed through — callers must remap the
        // dead site away first.
        const Seconds up = outage_clear_time(plan, src, dst, t);
        GEOMAP_CHECK_MSG(up != fault::kNoEnd,
                         "replay crosses a permanent outage of site "
                             << (plan.next_site_up(src, t) == fault::kNoEnd
                                     ? src
                                     : dst)
                             << " — remap before replaying");
        return up;
      },
      collector, label);
}

MultiTenantReplayResult replay_multitenant(
    const std::vector<TenantFlow>& tenants,
    const fault::DegradedNetworkModel& model,
    const MultiTenantReplayOptions& options) {
  const int m = model.num_sites();
  GEOMAP_CHECK_ARG(options.force_timeout > 0,
                   "force_timeout must be positive, got "
                       << options.force_timeout);
  GEOMAP_CHECK_ARG(options.rounds >= 1,
                   "rounds must be >= 1, got " << options.rounds);
  for (std::size_t k = 0; k < tenants.size(); ++k) {
    const TenantFlow& t = tenants[k];
    GEOMAP_CHECK_ARG(t.comm != nullptr && t.mapping != nullptr,
                     "tenant " << k << " has a null comm matrix or mapping");
    GEOMAP_CHECK_ARG(
        static_cast<int>(t.mapping->size()) == t.comm->num_processes(),
        "tenant " << k << " mapping size " << t.mapping->size()
                  << " != " << t.comm->num_processes() << " processes");
    for (const SiteId s : *t.mapping)
      GEOMAP_CHECK_ARG(s >= 0 && s < m,
                       "tenant " << k << " maps a process to invalid site "
                                 << s);
  }
  const fault::FaultPlan& plan = model.plan();
  const Seconds start_time = options.start_time;

  obs::Span replay_span;
  obs::Phase replay_phase;
  obs::Counter* edges_replayed = nullptr;
  obs::Counter* forced_edges = nullptr;
  obs::Histogram* queue_stalls = nullptr;
  obs::TimeSeriesRegistry* timeline = nullptr;
  if (options.collector != nullptr) {
    replay_span = options.collector->tracer().span(options.label, "sim");
    replay_phase = options.collector->profile().phase(
        std::string("replay-multitenant:") + options.label);
    std::size_t tenant_bytes = 0;
    std::uint64_t tenant_edges = 0;
    for (const TenantFlow& t : tenants) {
      tenant_bytes += t.comm->memory_bytes();
      tenant_edges += t.comm->nnz();
    }
    options.collector->mem().note("tenancy.comm", tenant_bytes);
    replay_phase.count("edges",
                       tenant_edges * static_cast<std::uint64_t>(options.rounds));
    edges_replayed =
        &options.collector->metrics().counter("sim.mt_edges_replayed");
    forced_edges =
        &options.collector->metrics().counter("sim.mt_forced_edges");
    queue_stalls = &options.collector->metrics().histogram(
        "sim.mt_contention_stall_seconds");
    timeline = &options.collector->timeline();
  }
  std::vector<obs::TimeSeries*> tl_latency(
      timeline != nullptr ? static_cast<std::size_t>(m) * m : 0, nullptr);
  std::vector<obs::TimeSeries*> tl_timeout(
      timeline != nullptr ? static_cast<std::size_t>(m) * m : 0, nullptr);

  // Shared link state: every tenant's inter-site flows serialize on the
  // same ordered site pairs.
  std::vector<Seconds> link_free(static_cast<std::size_t>(m) * m, start_time);
  std::vector<Seconds> link_busy(static_cast<std::size_t>(m) * m, 0.0);

  // Pending flows ordered by (ready, tenant, process, edge) — a total
  // order over all tenants' flows, so the interleaving is a pure function
  // of the inputs.
  struct Pending {
    Seconds ready;
    int tenant;
    ProcessId proc;
    std::size_t edge;
    bool operator>(const Pending& other) const {
      if (ready != other.ready) return ready > other.ready;
      if (tenant != other.tenant) return tenant > other.tenant;
      if (proc != other.proc) return proc > other.proc;
      return edge > other.edge;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> q;
  for (std::size_t k = 0; k < tenants.size(); ++k) {
    const trace::CommMatrix& comm = *tenants[k].comm;
    for (ProcessId i = 0; i < comm.num_processes(); ++i) {
      if (comm.row(i).size() > 0)
        q.push(Pending{start_time, static_cast<int>(k), i, 0});
    }
  }

  MultiTenantReplayResult result;
  result.tenants.resize(tenants.size());
  while (!q.empty()) {
    const Pending p = q.top();
    q.pop();
    const TenantFlow& tenant = tenants[static_cast<std::size_t>(p.tenant)];
    TenantReplayResult& tres = result.tenants[static_cast<std::size_t>(p.tenant)];
    const trace::CommMatrix::Row row = tenant.comm->row(p.proc);
    // p.edge counts total issues across rounds; the CSR edge repeats.
    const std::size_t e = p.edge % row.size();
    const SiteId src = (*tenant.mapping)[static_cast<std::size_t>(p.proc)];
    const SiteId dst =
        (*tenant.mapping)[static_cast<std::size_t>(row.dst[e])];

    // Outage stall — or the force-through path when the stall would be
    // unbounded (a permanent outage of an endpoint).
    Seconds stalled = outage_clear_time(plan, src, dst, p.ready);
    bool forced = false;
    if (stalled == fault::kNoEnd) {
      GEOMAP_CHECK_MSG(options.force_through,
                       "multi-tenant replay crosses a permanent outage on link "
                           << src << "->" << dst
                           << " with force_through disabled — remap first");
      forced = true;
      stalled = p.ready + options.force_timeout;
    }
    Seconds start = stalled;
    const std::size_t link =
        static_cast<std::size_t>(src) * m + static_cast<std::size_t>(dst);
    if (src != dst) {
      if (link_free[link] > start && queue_stalls != nullptr)
        queue_stalls->record(link_free[link] - start);
      start = std::max(start, link_free[link]);
    }
    // Healthy price from the base model; the degraded price (or, for a
    // forced edge, the healthy price — the wire time is unobservable
    // through a dead endpoint, the timeout cost is the signal) rides on
    // top.
    const Seconds healthy =
        model.base().message_cost(src, dst, row.count[e], row.volume[e]);
    const Seconds wire =
        forced ? healthy
               : model.message_cost(src, dst, row.count[e], row.volume[e],
                                    start);
    tres.total_transfer_seconds += wire;
    const Seconds end = start + wire;
    if (src != dst) {
      link_free[link] = end;
      link_busy[link] += wire;
    }
    tres.makespan = std::max(tres.makespan, end - start_time);
    if (forced) tres.forced_edges += 1;
    if (edges_replayed != nullptr) edges_replayed->add();
    if (forced && forced_edges != nullptr) forced_edges->add();
    if (timeline != nullptr) {
      if (forced) {
        // Recorded for intra-site edges too: a dead site's local traffic
        // timing out (src == dst, both the dead site) is the strongest
        // down signal the detector can get.
        obs::TimeSeries*& series = tl_timeout[link];
        if (series == nullptr) {
          series =
              &timeline->series("link.timeout", obs::link_label(src, dst));
        }
        series->record(stalled, 1.0);
      } else if (src != dst) {
        obs::TimeSeries*& series = tl_latency[link];
        if (series == nullptr) {
          series = &timeline->series("link.latency_ratio",
                                     obs::link_label(src, dst));
        }
        if (healthy > 0) series->record(start, wire / healthy);
      }
    }

    if (p.edge + 1 < row.size() * static_cast<std::size_t>(options.rounds))
      q.push(Pending{end, p.tenant, p.proc, p.edge + 1});
  }
  for (const TenantReplayResult& t : result.tenants)
    result.makespan = std::max(result.makespan, t.makespan);
  result.busiest_link_seconds =
      link_busy.empty() ? 0.0
                        : *std::max_element(link_busy.begin(), link_busy.end());
  return result;
}

Seconds outage_clear_time(const fault::FaultPlan& plan, SiteId src, SiteId dst,
                          Seconds t) {
  Seconds up = t;
  for (int guard = 0; guard < 64; ++guard) {
    const Seconds src_up = plan.next_site_up(src, up);
    if (src_up == fault::kNoEnd) return fault::kNoEnd;
    const Seconds dst_up = plan.next_site_up(dst, src_up);
    if (dst_up == fault::kNoEnd) return fault::kNoEnd;
    if (dst_up == up) return up;
    up = dst_up;
  }
  GEOMAP_CHECK_MSG(false, "alternating outages of sites "
                              << src << " and " << dst
                              << " did not converge after 64 iterations");
  return up;  // unreachable
}

double comm_improvement_percent(const trace::CommMatrix& comm,
                                const net::NetworkModel& model,
                                const Mapping& baseline,
                                const Mapping& mapping) {
  const Seconds base = alpha_beta_cost(comm, model, baseline);
  const Seconds ours = alpha_beta_cost(comm, model, mapping);
  return mapping::improvement_percent(base, ours);
}

}  // namespace geomap::sim
