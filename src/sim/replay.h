#pragma once
// Deterministic trace replay: re-evaluate one captured execution
// (trace::OpTraceLog) under any process mapping without re-running the
// application.
//
// The replay engine simulates the minimpi runtime's virtual-time
// semantics sequentially — rendezvous point-to-point completion
// `max(sender_ready, receiver_ready) + wire`, FIFO matching per
// (src, dst, tag), intra-site transfers contention-free, inter-site
// transfers first-fit scheduled on serializing per-site-pair WAN links —
// but with a canonical (round-robin) execution order, so results are
// bit-reproducible across runs and machines. Link-allocation order can
// differ from the threaded runtime's under contention; contention-free
// executions match the runtime exactly (asserted by tests).
//
// Capture once (Runtime::capture_ops), replay per candidate mapping:
// this is how many mappings can be scored with *execution-level*
// fidelity (dependencies, pipelining, contention) at cost O(total ops)
// each, instead of re-running thread-per-rank executions.

#include "common/types.h"
#include "net/network_model.h"
#include "trace/optrace.h"

namespace geomap::sim {

struct ReplayResult {
  /// Final virtual clock per rank; makespan = max.
  std::vector<Seconds> finish_times;
  Seconds makespan = 0;
  /// Clock advanced inside communication, max over ranks.
  Seconds max_comm_seconds = 0;
};

/// Replay `ops` under `mapping` over `model`. Throws Error on malformed
/// traces (unmatched operations, deadlock).
ReplayResult replay_ops(const trace::OpTraceLog& ops,
                        const net::NetworkModel& model,
                        const Mapping& mapping);

}  // namespace geomap::sim
