// hpc_npb: run the three NPB-style pseudo-applications (BT, SP, LU) on
// the minimpi runtime across four cloud regions and compare process
// mappings end to end — profile, optimize, execute, and report per-app
// tables including per-rank communication statistics.
//
//   $ hpc_npb [--ranks 16] [--iterations 10]

#include <iostream>

#include "apps/app.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/metrics.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "runtime/comm.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("NPB-style BT/SP/LU across four cloud regions");
  cli.add_int("ranks", 16, "number of parallel processes");
  cli.add_int("iterations", 10, "time steps per application");
  if (!cli.parse(argc, argv)) return 0;

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const net::CloudTopology cloud(
      net::aws_experiment_profile((ranks + 3) / 4));
  const net::CalibrationResult calib = net::Calibrator().calibrate(cloud);

  Table table({"app", "metric (converged)", "random map (s)",
               "geo-distributed (s)", "speedup", "cross-WAN bytes %"});

  for (const char* name : {"BT", "SP", "LU"}) {
    const apps::App& app = apps::app_by_name(name);
    apps::AppConfig cfg = app.default_config(ranks);
    cfg.iterations = static_cast<int>(cli.get_int("iterations"));

    // Profile once, optimize.
    trace::ApplicationProfile profile(ranks);
    {
      Mapping trivial(static_cast<std::size_t>(ranks), 0);
      runtime::Runtime rt(calib.model, trivial, cloud.instance().gflops,
                          &profile);
      rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });
    }
    trace::CommMatrix comm = profile.build_comm_matrix();
    const mapping::MappingProblem problem =
        core::make_problem(cloud, calib.model, comm);

    core::GeoDistMapper geo;
    mapping::RandomMapper random(11);
    const Mapping geo_map = geo.map(problem);
    const Mapping random_map = random.map(problem);

    auto execute = [&](const Mapping& m, double* metric) {
      runtime::Runtime rt(calib.model, m, cloud.instance().gflops);
      std::mutex mu;
      const runtime::RunResult rr = rt.run([&](runtime::Comm& c) {
        const double v = app.run(c, cfg);
        if (c.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          *metric = v;
        }
      });
      return rr;
    };
    double metric_random = 0, metric_geo = 0;
    const runtime::RunResult r_random = execute(random_map, &metric_random);
    const runtime::RunResult r_geo = execute(geo_map, &metric_geo);

    // Numerical results must not depend on the mapping.
    if (std::abs(metric_random - metric_geo) >
        1e-9 * std::max(1.0, std::abs(metric_random))) {
      std::cerr << name << ": metric diverged across mappings!\n";
      return 1;
    }

    // Fraction of traffic that crosses the WAN under the optimized map.
    Bytes cross = 0, total = 0;
    for (const trace::CommEdge& e : comm.edges()) {
      total += e.volume;
      if (geo_map[static_cast<std::size_t>(e.src)] !=
          geo_map[static_cast<std::size_t>(e.dst)])
        cross += e.volume;
    }

    table.row()
        .cell(name)
        .cell(metric_geo, 6)
        .cell(r_random.makespan, 2)
        .cell(r_geo.makespan, 2)
        .cell(r_random.makespan / r_geo.makespan, 2)
        .cell(total > 0 ? 100.0 * cross / total : 0.0, 1);
  }
  table.print(std::cout);
  std::cout << "\nThe convergence metric is identical under every mapping "
               "(mapping changes time, never results);\nthe geo-distributed "
               "mapping keeps most halo traffic inside regions.\n";
  return 0;
}
