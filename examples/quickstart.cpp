// Quickstart: the full geomap workflow on the paper's EC2 deployment —
// calibrate a 4-region cloud, profile an application, optimize the
// process mapping, and verify the gain by (virtually) executing the app
// under both mappings.
//
//   $ quickstart [--ranks 16] [--constraint-ratio 0.2]

#include <iostream>

#include "apps/app.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/greedy_mapper.h"
#include "mapping/metrics.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "runtime/comm.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("geomap quickstart: map NPB LU across four cloud regions");
  cli.add_int("ranks", 16, "number of parallel processes");
  cli.add_double("constraint-ratio", 0.2,
                 "fraction of processes pinned by data-movement constraints");
  cli.add_int("seed", 42, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // 1. The deployment: US East, US West, Ireland, Singapore (paper
  //    Section 5.1), enough m4.xlarge nodes for one process each.
  const net::CloudTopology cloud(
      net::aws_experiment_profile((ranks + 3) / 4));
  std::cout << "Deployment: " << cloud.num_sites() << " regions, "
            << cloud.total_nodes() << " nodes, instance "
            << cloud.instance().name << "\n";

  // 2. Calibrate LT/BT with simulated SKaMPI pingpongs.
  const net::Calibrator calibrator;
  const net::CalibrationResult calib = calibrator.calibrate(cloud);
  std::cout << "Calibration: " << calib.measurements
            << " site-pair measurements (all-node-pairs would need "
            << net::Calibrator::node_pair_measurements(cloud.total_nodes())
            << ")\n";

  // 3. Profile the application: run LU once under a trivial mapping with
  //    the tracer attached, then build CG/AG.
  const apps::App& lu = apps::app_by_name("LU");
  const apps::AppConfig config = lu.default_config(ranks);
  trace::ApplicationProfile profile(ranks);
  {
    Mapping trivial(static_cast<std::size_t>(ranks), 0);
    runtime::Runtime profiling_run(calib.model, trivial,
                                   cloud.instance().gflops, &profile);
    profiling_run.run([&](runtime::Comm& comm) { lu.run(comm, config); });
  }
  trace::CommMatrix comm_matrix = profile.build_comm_matrix();
  std::cout << "Profile: " << comm_matrix.nnz() << " communicating pairs, "
            << comm_matrix.total_volume() / kMiB << " MiB total, "
            << "trace compression "
            << profile.aggregate_compression_ratio() << "x\n";

  // 4. Data-movement constraints.
  Rng rng(seed);
  ConstraintVector constraints = mapping::make_random_constraints(
      ranks, cloud.capacities(), cli.get_double("constraint-ratio"), rng);

  const mapping::MappingProblem problem = core::make_problem(
      cloud, calib.model, std::move(comm_matrix), std::move(constraints));

  // 5. Optimize with every algorithm and compare.
  mapping::RandomMapper baseline(seed);
  mapping::GreedyMapper greedy;
  mapping::MpippMapper mpipp;
  core::GeoDistMapper geo;

  const auto base_run = mapping::run_mapper(baseline, problem);
  Table table({"algorithm", "alpha-beta cost (s)", "improvement (%)",
               "optimize (ms)"});
  std::vector<mapping::MapperRun> runs = {base_run};
  for (mapping::Mapper* mapper :
       std::initializer_list<mapping::Mapper*>{&greedy, &mpipp, &geo}) {
    runs.push_back(mapping::run_mapper(*mapper, problem));
  }
  for (const auto& run : runs) {
    table.row()
        .cell(run.mapper)
        .cell(run.cost, 3)
        .cell(mapping::improvement_percent(base_run.cost, run.cost), 1)
        .cell(run.optimize_seconds * 1e3, 2);
  }
  table.print(std::cout);

  // 6. Verify by virtual execution: run LU under the baseline and the
  //    geo-distributed mapping and compare modeled makespans.
  auto execute = [&](const Mapping& mapping) {
    runtime::Runtime rt(calib.model, mapping, cloud.instance().gflops);
    return rt.run([&](runtime::Comm& comm) { lu.run(comm, config); });
  };
  const runtime::RunResult before = execute(runs.front().mapping);
  const runtime::RunResult after = execute(runs.back().mapping);
  std::cout << "\nVirtual execution (LU, " << ranks << " ranks):\n"
            << "  baseline mapping        : " << before.makespan << " s\n"
            << "  geo-distributed mapping : " << after.makespan << " s\n"
            << "  speedup                 : "
            << before.makespan / after.makespan << "x\n";
  return 0;
}
