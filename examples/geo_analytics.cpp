// geo_analytics: the paper's motivating scenario — a geo-distributed
// machine-learning job over data that cannot leave its home regions.
//
// A K-means clustering job runs across four continents. A fraction of
// the processes is pinned to specific regions by data-residency rules
// (e.g. EU records must stay in Ireland); the remaining processes are
// free. The example walks the full "move computation to data" pipeline:
// calibrate the WAN, profile the job, express residency as a constraint
// vector, optimize the mapping, and quantify what each ingredient buys.
//
//   $ geo_analytics [--ranks 32] [--eu-share 0.25]

#include <iostream>

#include "apps/app.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/metrics.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "runtime/comm.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli(
      "geo-distributed analytics with data-residency constraints");
  cli.add_int("ranks", 32, "number of parallel processes");
  cli.add_double("eu-share", 0.25,
                 "fraction of processes pinned to the EU region");
  cli.add_double("apac-share", 0.125,
                 "fraction of processes pinned to the APAC region");
  cli.add_int("seed", 7, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const net::CloudTopology cloud(
      net::aws_experiment_profile((ranks + 3) / 4));

  // Identify the regions by role.
  SiteId eu = -1, apac = -1;
  for (SiteId s = 0; s < cloud.num_sites(); ++s) {
    if (cloud.site(s).name.rfind("eu-west-1", 0) == 0) eu = s;
    if (cloud.site(s).name.rfind("ap-southeast-1", 0) == 0) apac = s;
  }

  // Data residency: the first ceil(eu_share*N) processes analyze EU
  // records and must run in Ireland; the next apac_share in Singapore.
  ConstraintVector constraints(static_cast<std::size_t>(ranks),
                               kUnconstrained);
  const int eu_pins = static_cast<int>(cli.get_double("eu-share") * ranks);
  const int apac_pins = static_cast<int>(cli.get_double("apac-share") * ranks);
  for (int i = 0; i < eu_pins && i < ranks; ++i)
    constraints[static_cast<std::size_t>(i)] = eu;
  for (int i = eu_pins; i < eu_pins + apac_pins && i < ranks; ++i)
    constraints[static_cast<std::size_t>(i)] = apac;
  std::cout << "Data residency: " << eu_pins << " processes pinned to "
            << cloud.site(eu).name << ", " << apac_pins << " to "
            << cloud.site(apac).name << "\n";

  // Calibrate + profile + optimize through the pipeline.
  const apps::App& kmeans = apps::app_by_name("K-means");
  apps::AppConfig cfg = kmeans.default_config(ranks);
  const net::CalibrationResult calib = net::Calibrator().calibrate(cloud);

  trace::ApplicationProfile profile(ranks);
  {
    Mapping trivial(static_cast<std::size_t>(ranks), 0);
    runtime::Runtime rt(calib.model, trivial, cloud.instance().gflops,
                        &profile);
    rt.run([&](runtime::Comm& c) { (void)kmeans.run(c, cfg); });
  }
  const mapping::MappingProblem problem = core::make_problem(
      cloud, calib.model, profile.build_comm_matrix(), constraints);

  // Compare mappings, executing the job under each.
  auto execute = [&](const Mapping& m) {
    runtime::Runtime rt(calib.model, m, cloud.instance().gflops);
    return rt.run([&](runtime::Comm& c) { (void)kmeans.run(c, cfg); });
  };

  mapping::RandomMapper unplanned(static_cast<std::uint64_t>(cli.get_int("seed")));
  mapping::GreedyMapper greedy;
  core::GeoDistMapper geo;

  Table table({"mapping strategy", "job time (s)", "comm time (s)",
               "improvement (%)"});
  const runtime::RunResult base = execute(unplanned.map(problem));
  table.row()
      .cell("unplanned (random)")
      .cell(base.makespan, 2)
      .cell(base.max_comm_seconds, 2)
      .cell(0.0, 1);
  for (auto& [label, mapper] :
       std::initializer_list<std::pair<const char*, mapping::Mapper*>>{
           {"Greedy (Hoefler-Snir)", &greedy},
           {"Geo-distributed (this library)", &geo}}) {
    const runtime::RunResult run = execute(mapper->map(problem));
    table.row()
        .cell(label)
        .cell(run.makespan, 2)
        .cell(run.max_comm_seconds, 2)
        .cell(mapping::improvement_percent(base.makespan, run.makespan), 1);
  }
  table.print(std::cout);

  // What did residency cost? Re-run without pins for comparison.
  mapping::MappingProblem unconstrained = problem;
  unconstrained.constraints.clear();
  const runtime::RunResult free_run = execute(geo.map(unconstrained));
  std::cout << "\nResidency overhead: the optimal unconstrained mapping "
               "would finish in "
            << format_double(free_run.makespan, 2)
            << " s; residency rules cost "
            << format_double(
                   std::max(0.0, 100.0 *
                                     (execute(geo.map(problem)).makespan -
                                      free_run.makespan) /
                                     free_run.makespan),
                   1)
            << "% extra time.\n";
  return 0;
}
