// mapping_tool: the library as a command-line utility for downstream
// users — feed it a communication matrix (and optionally constraints),
// pick a deployment and an algorithm, get a process->site mapping.
//
//   $ mapping_tool --comm pattern.txt --profile aws4 --algorithm geo
//   $ mapping_tool --app LU --ranks 64 --profile aws11 --csv
//
// Input format for --comm (CommMatrix::from_text):
//   commmatrix <N> <nnz>
//   <src> <dst> <volume_bytes> <message_count>
//   ...
// Constraint file for --constraints: one "<process> <site>" pair per
// line (single-site pins). Writes "process site" lines to stdout or
// --output.

#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/app.h"
#include "common/cli.h"
#include "common/table.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/annealing_mapper.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/metrics.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/model_io.h"

using namespace geomap;

namespace {

net::CloudTopology make_topology(const std::string& profile,
                                 int nodes_per_site) {
  if (profile == "aws4") {
    return net::CloudTopology(net::aws_experiment_profile(nodes_per_site));
  }
  if (profile == "aws11") {
    return net::CloudTopology(
        net::aws2016_profile("m4.xlarge", nodes_per_site));
  }
  if (profile == "azure") {
    return net::CloudTopology(net::azure2016_profile(nodes_per_site));
  }
  if (profile == "multi") {
    const net::CloudTopology aws(net::aws_experiment_profile(nodes_per_site));
    const net::CloudTopology azure(net::azure2016_profile(nodes_per_site));
    return net::CloudTopology::merge({&aws, &azure});
  }
  throw InvalidArgument("unknown --profile '" + profile +
                        "' (aws4 | aws11 | azure | multi)");
}

std::unique_ptr<mapping::Mapper> make_mapper(const std::string& name,
                                             std::uint64_t seed) {
  if (name == "geo") return std::make_unique<core::GeoDistMapper>();
  if (name == "greedy") return std::make_unique<mapping::GreedyMapper>();
  if (name == "mpipp") return std::make_unique<mapping::MpippMapper>();
  if (name == "annealing")
    return std::make_unique<mapping::AnnealingMapper>();
  if (name == "random") return std::make_unique<mapping::RandomMapper>(seed);
  throw InvalidArgument("unknown --algorithm '" + name +
                        "' (geo | greedy | mpipp | annealing | random)");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  GEOMAP_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) try {
  CliParser cli("geomap mapping tool: communication matrix in, mapping out");
  cli.add_string("comm", "", "communication matrix file (commmatrix format)");
  cli.add_string("app", "",
                 "alternatively: built-in app pattern (BT|SP|LU|K-means|DNN)");
  cli.add_int("ranks", 64, "process count when --app is used");
  cli.add_string("profile", "aws4", "deployment: aws4 | aws11 | azure | multi");
  cli.add_string("network", "",
                 "use a geomap-network spec file instead of --profile");
  cli.add_string("save-network", "",
                 "write the calibrated deployment spec here and exit");
  cli.add_int("nodes-per-site", 0,
              "nodes per region (0 = just enough for the process count)");
  cli.add_string("algorithm", "geo",
                 "geo | greedy | mpipp | annealing | random");
  cli.add_string("constraints", "", "pin file: '<process> <site>' per line");
  cli.add_string("output", "", "write mapping here instead of stdout");
  cli.add_int("seed", 1, "seed for randomized algorithms");
  cli.add_bool("quiet", false, "suppress the summary, print only the mapping");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Communication matrix.
  trace::CommMatrix comm;
  if (!cli.get_string("comm").empty()) {
    comm = trace::CommMatrix::from_text(read_file(cli.get_string("comm")));
  } else if (!cli.get_string("app").empty()) {
    const apps::App& app = apps::app_by_name(cli.get_string("app"));
    const int ranks = static_cast<int>(cli.get_int("ranks"));
    comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  } else {
    std::cerr << "need --comm <file> or --app <name> (try --help)\n";
    return 2;
  }
  const int n = comm.num_processes();

  // 2. Deployment: a built-in profile (calibrated here) or a user spec.
  net::NetworkSpec spec;
  if (!cli.get_string("network").empty()) {
    spec = net::network_spec_from_text(read_file(cli.get_string("network")));
    if (spec.capacities.empty()) {
      const int per_site =
          (n + spec.model.num_sites() - 1) / spec.model.num_sites();
      spec.capacities.assign(static_cast<std::size_t>(spec.model.num_sites()),
                             per_site);
    }
  } else {
    int nodes = static_cast<int>(cli.get_int("nodes-per-site"));
    net::CloudTopology probe = make_topology(cli.get_string("profile"), 1);
    if (nodes == 0) nodes = (n + probe.num_sites() - 1) / probe.num_sites();
    const net::CloudTopology topo =
        make_topology(cli.get_string("profile"), nodes);
    const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
    spec = net::make_spec(topo, calib.model);
  }
  if (spec.site_names.empty()) {
    for (SiteId s = 0; s < spec.model.num_sites(); ++s)
      spec.site_names.push_back("site-" + std::to_string(s));
  }
  if (!cli.get_string("save-network").empty()) {
    std::ofstream out(cli.get_string("save-network"));
    GEOMAP_CHECK_MSG(out.good(),
                     "cannot write " << cli.get_string("save-network"));
    out << net::to_text(spec);
    std::cerr << "wrote deployment spec ("
              << spec.model.num_sites() << " sites) to "
              << cli.get_string("save-network") << "\n";
    return 0;
  }
  int total_nodes = 0;
  for (const int c : spec.capacities) total_nodes += c;
  GEOMAP_CHECK_MSG(total_nodes >= n, "deployment has "
                                         << total_nodes << " nodes for " << n
                                         << " processes");

  // 3. Constraints.
  ConstraintVector constraints;
  if (!cli.get_string("constraints").empty()) {
    constraints.assign(static_cast<std::size_t>(n), kUnconstrained);
    std::istringstream in(read_file(cli.get_string("constraints")));
    ProcessId p;
    SiteId s;
    while (in >> p >> s) {
      GEOMAP_CHECK_MSG(p >= 0 && p < n, "constraint names process " << p);
      constraints[static_cast<std::size_t>(p)] = s;
    }
  }

  // 4. Optimize.
  mapping::MappingProblem problem;
  problem.comm = std::move(comm);
  problem.network = spec.model;
  problem.capacities = spec.capacities;
  problem.site_coords = spec.coords;
  problem.constraints = std::move(constraints);
  problem.validate();
  auto mapper = make_mapper(cli.get_string("algorithm"),
                            static_cast<std::uint64_t>(cli.get_int("seed")));
  const mapping::MapperRun run = mapping::run_mapper(*mapper, problem);

  // 5. Report + emit.
  if (!cli.get_bool("quiet")) {
    mapping::RandomMapper baseline(
        static_cast<std::uint64_t>(cli.get_int("seed")) + 1);
    const mapping::MapperRun base = mapping::run_mapper(baseline, problem);
    std::cerr << run.mapper << ": cost " << run.cost << " s ("
              << format_double(
                     mapping::improvement_percent(base.cost, run.cost), 1)
              << "% better than random), optimized in "
              << format_double(run.optimize_seconds * 1e3, 2) << " ms\n";
    std::vector<int> per_site(static_cast<std::size_t>(spec.model.num_sites()),
                              0);
    for (const SiteId s : run.mapping) ++per_site[static_cast<std::size_t>(s)];
    for (SiteId s = 0; s < spec.model.num_sites(); ++s) {
      if (per_site[static_cast<std::size_t>(s)] > 0)
        std::cerr << "  " << spec.site_names[static_cast<std::size_t>(s)]
                  << ": " << per_site[static_cast<std::size_t>(s)]
                  << " processes\n";
    }
  }

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!cli.get_string("output").empty()) {
    file.open(cli.get_string("output"));
    GEOMAP_CHECK_MSG(file.good(), "cannot write " << cli.get_string("output"));
    out = &file;
  }
  for (ProcessId i = 0; i < n; ++i)
    *out << i << ' ' << run.mapping[static_cast<std::size_t>(i)] << '\n';
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 1;
}
