// scale_study: how far does the optimization carry? Sweeps deployment
// size (64 .. 4096 processes; configurable) on synthetic worlds with
// many regions, demonstrating the grouping optimization that keeps the
// kappa! order search tractable while the solution space grows O(N^M),
// and reporting optimization time and solution quality at each scale.
//
//   $ scale_study [--max-ranks 4096] [--sites 12]

#include <iostream>

#include "apps/app.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/geodist_mapper.h"
#include "core/montecarlo.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/metrics.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("scaling study on synthetic multi-region worlds");
  cli.add_int("max-ranks", 4096, "largest process count");
  cli.add_int("sites", 12, "number of regions in the synthetic world");
  cli.add_int("kappa", 4, "site groups for the order search");
  cli.add_int("seed", 4, "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const int sites = static_cast<int>(cli.get_int("sites"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "Synthetic world: " << sites
            << " regions at random coordinates; workload: K-means "
               "(complex pattern).\n";

  Table table({"processes", "nnz", "optimize (ms)", "improvement (%)",
               "beats random draws (%)"});

  for (int ranks = 64; ranks <= cli.get_int("max-ranks"); ranks *= 4) {
    const net::CloudTopology topo(
        net::synthetic_profile(sites, (ranks + sites - 1) / sites, seed));
    const net::CalibrationResult calib = net::Calibrator().calibrate(topo);

    const apps::App& app = apps::app_by_name("K-means");
    Rng rng(seed);
    mapping::MappingProblem problem;
    problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
    problem.network = calib.model;
    problem.capacities = topo.capacities();
    problem.site_coords = topo.coordinates();
    problem.constraints = mapping::make_random_constraints(
        ranks, problem.capacities, 0.2, rng);
    problem.validate();

    core::GeoDistOptions opts;
    opts.kappa = static_cast<int>(cli.get_int("kappa"));
    core::GeoDistMapper geo(opts);

    Timer timer;
    const Mapping mapped = geo.map(problem);
    const double optimize_ms = timer.elapsed_ms();

    const mapping::CostEvaluator eval(problem);
    const double geo_cost = eval.total_cost(mapped);

    // Baseline average + how much of the random space the solution beats.
    core::MonteCarloOptions mc_opts;
    mc_opts.samples = 2000;
    mc_opts.seed = seed + 1;
    const core::MonteCarloResult mc = core::run_monte_carlo(problem, mc_opts);

    table.row()
        .cell(static_cast<long long>(ranks))
        .cell(static_cast<long long>(problem.comm.nnz()))
        .cell(optimize_ms, 1)
        .cell(mapping::improvement_percent(mc.mean, geo_cost), 1)
        .cell(100.0 * (1.0 - mc.fraction_below(geo_cost)), 2);
  }
  table.print(std::cout);
  std::cout << "\nWith grouping (kappa=" << cli.get_int("kappa")
            << ") the order search stays " << cli.get_int("kappa")
            << "! regardless of " << sites
            << " regions; optimization time grows near-linearly in the "
               "pattern size.\n";
  return 0;
}
