file(REMOVE_RECURSE
  "libgeomap_mapping.a"
)
