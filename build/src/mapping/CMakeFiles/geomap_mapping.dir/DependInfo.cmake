
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/allowed_sites.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/allowed_sites.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/allowed_sites.cpp.o.d"
  "/root/repo/src/mapping/annealing_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/annealing_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/annealing_mapper.cpp.o.d"
  "/root/repo/src/mapping/cost.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/cost.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/cost.cpp.o.d"
  "/root/repo/src/mapping/exhaustive_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/exhaustive_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/exhaustive_mapper.cpp.o.d"
  "/root/repo/src/mapping/greedy_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/greedy_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/greedy_mapper.cpp.o.d"
  "/root/repo/src/mapping/mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/mapper.cpp.o.d"
  "/root/repo/src/mapping/metrics.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/metrics.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/metrics.cpp.o.d"
  "/root/repo/src/mapping/mpipp_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/mpipp_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/mpipp_mapper.cpp.o.d"
  "/root/repo/src/mapping/problem.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/problem.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/problem.cpp.o.d"
  "/root/repo/src/mapping/random_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/random_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/random_mapper.cpp.o.d"
  "/root/repo/src/mapping/round_robin_mapper.cpp" "src/mapping/CMakeFiles/geomap_mapping.dir/round_robin_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/geomap_mapping.dir/round_robin_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
