file(REMOVE_RECURSE
  "CMakeFiles/geomap_mapping.dir/allowed_sites.cpp.o"
  "CMakeFiles/geomap_mapping.dir/allowed_sites.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/annealing_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/annealing_mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/cost.cpp.o"
  "CMakeFiles/geomap_mapping.dir/cost.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/exhaustive_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/exhaustive_mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/greedy_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/greedy_mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/metrics.cpp.o"
  "CMakeFiles/geomap_mapping.dir/metrics.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/mpipp_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/mpipp_mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/problem.cpp.o"
  "CMakeFiles/geomap_mapping.dir/problem.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/random_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/random_mapper.cpp.o.d"
  "CMakeFiles/geomap_mapping.dir/round_robin_mapper.cpp.o"
  "CMakeFiles/geomap_mapping.dir/round_robin_mapper.cpp.o.d"
  "libgeomap_mapping.a"
  "libgeomap_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
