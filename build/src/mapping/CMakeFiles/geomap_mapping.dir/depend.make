# Empty dependencies file for geomap_mapping.
# This may be replaced when dependencies are built.
