file(REMOVE_RECURSE
  "CMakeFiles/geomap_common.dir/cli.cpp.o"
  "CMakeFiles/geomap_common.dir/cli.cpp.o.d"
  "CMakeFiles/geomap_common.dir/parallel.cpp.o"
  "CMakeFiles/geomap_common.dir/parallel.cpp.o.d"
  "CMakeFiles/geomap_common.dir/rng.cpp.o"
  "CMakeFiles/geomap_common.dir/rng.cpp.o.d"
  "CMakeFiles/geomap_common.dir/stats.cpp.o"
  "CMakeFiles/geomap_common.dir/stats.cpp.o.d"
  "CMakeFiles/geomap_common.dir/table.cpp.o"
  "CMakeFiles/geomap_common.dir/table.cpp.o.d"
  "libgeomap_common.a"
  "libgeomap_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
