file(REMOVE_RECURSE
  "libgeomap_common.a"
)
