# Empty dependencies file for geomap_common.
# This may be replaced when dependencies are built.
