file(REMOVE_RECURSE
  "libgeomap_core.a"
)
