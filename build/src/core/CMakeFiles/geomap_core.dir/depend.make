# Empty dependencies file for geomap_core.
# This may be replaced when dependencies are built.
