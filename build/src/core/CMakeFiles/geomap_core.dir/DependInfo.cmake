
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/geodist_mapper.cpp" "src/core/CMakeFiles/geomap_core.dir/geodist_mapper.cpp.o" "gcc" "src/core/CMakeFiles/geomap_core.dir/geodist_mapper.cpp.o.d"
  "/root/repo/src/core/grouping.cpp" "src/core/CMakeFiles/geomap_core.dir/grouping.cpp.o" "gcc" "src/core/CMakeFiles/geomap_core.dir/grouping.cpp.o.d"
  "/root/repo/src/core/montecarlo.cpp" "src/core/CMakeFiles/geomap_core.dir/montecarlo.cpp.o" "gcc" "src/core/CMakeFiles/geomap_core.dir/montecarlo.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/geomap_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/geomap_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/geomap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
