file(REMOVE_RECURSE
  "CMakeFiles/geomap_core.dir/geodist_mapper.cpp.o"
  "CMakeFiles/geomap_core.dir/geodist_mapper.cpp.o.d"
  "CMakeFiles/geomap_core.dir/grouping.cpp.o"
  "CMakeFiles/geomap_core.dir/grouping.cpp.o.d"
  "CMakeFiles/geomap_core.dir/montecarlo.cpp.o"
  "CMakeFiles/geomap_core.dir/montecarlo.cpp.o.d"
  "CMakeFiles/geomap_core.dir/pipeline.cpp.o"
  "CMakeFiles/geomap_core.dir/pipeline.cpp.o.d"
  "libgeomap_core.a"
  "libgeomap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
