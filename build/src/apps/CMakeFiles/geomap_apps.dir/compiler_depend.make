# Empty compiler generated dependencies file for geomap_apps.
# This may be replaced when dependencies are built.
