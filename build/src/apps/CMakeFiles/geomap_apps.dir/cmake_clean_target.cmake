file(REMOVE_RECURSE
  "libgeomap_apps.a"
)
