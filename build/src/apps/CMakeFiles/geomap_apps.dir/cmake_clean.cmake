file(REMOVE_RECURSE
  "CMakeFiles/geomap_apps.dir/app.cpp.o"
  "CMakeFiles/geomap_apps.dir/app.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/bt.cpp.o"
  "CMakeFiles/geomap_apps.dir/bt.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/cg.cpp.o"
  "CMakeFiles/geomap_apps.dir/cg.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/dnn.cpp.o"
  "CMakeFiles/geomap_apps.dir/dnn.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/ft.cpp.o"
  "CMakeFiles/geomap_apps.dir/ft.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/kmeans.cpp.o"
  "CMakeFiles/geomap_apps.dir/kmeans.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/lu.cpp.o"
  "CMakeFiles/geomap_apps.dir/lu.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/mg.cpp.o"
  "CMakeFiles/geomap_apps.dir/mg.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/solvers.cpp.o"
  "CMakeFiles/geomap_apps.dir/solvers.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/sp.cpp.o"
  "CMakeFiles/geomap_apps.dir/sp.cpp.o.d"
  "CMakeFiles/geomap_apps.dir/synthetic.cpp.o"
  "CMakeFiles/geomap_apps.dir/synthetic.cpp.o.d"
  "libgeomap_apps.a"
  "libgeomap_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
