
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/geomap_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/bt.cpp" "src/apps/CMakeFiles/geomap_apps.dir/bt.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/bt.cpp.o.d"
  "/root/repo/src/apps/cg.cpp" "src/apps/CMakeFiles/geomap_apps.dir/cg.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/cg.cpp.o.d"
  "/root/repo/src/apps/dnn.cpp" "src/apps/CMakeFiles/geomap_apps.dir/dnn.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/dnn.cpp.o.d"
  "/root/repo/src/apps/ft.cpp" "src/apps/CMakeFiles/geomap_apps.dir/ft.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/ft.cpp.o.d"
  "/root/repo/src/apps/kmeans.cpp" "src/apps/CMakeFiles/geomap_apps.dir/kmeans.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/kmeans.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/apps/CMakeFiles/geomap_apps.dir/lu.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/lu.cpp.o.d"
  "/root/repo/src/apps/mg.cpp" "src/apps/CMakeFiles/geomap_apps.dir/mg.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/mg.cpp.o.d"
  "/root/repo/src/apps/solvers.cpp" "src/apps/CMakeFiles/geomap_apps.dir/solvers.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/solvers.cpp.o.d"
  "/root/repo/src/apps/sp.cpp" "src/apps/CMakeFiles/geomap_apps.dir/sp.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/sp.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/geomap_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/geomap_apps.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/geomap_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
