file(REMOVE_RECURSE
  "CMakeFiles/geomap_net.dir/calibration.cpp.o"
  "CMakeFiles/geomap_net.dir/calibration.cpp.o.d"
  "CMakeFiles/geomap_net.dir/cloud.cpp.o"
  "CMakeFiles/geomap_net.dir/cloud.cpp.o.d"
  "CMakeFiles/geomap_net.dir/geo.cpp.o"
  "CMakeFiles/geomap_net.dir/geo.cpp.o.d"
  "CMakeFiles/geomap_net.dir/instance.cpp.o"
  "CMakeFiles/geomap_net.dir/instance.cpp.o.d"
  "CMakeFiles/geomap_net.dir/loggp.cpp.o"
  "CMakeFiles/geomap_net.dir/loggp.cpp.o.d"
  "CMakeFiles/geomap_net.dir/model_io.cpp.o"
  "CMakeFiles/geomap_net.dir/model_io.cpp.o.d"
  "CMakeFiles/geomap_net.dir/network_model.cpp.o"
  "CMakeFiles/geomap_net.dir/network_model.cpp.o.d"
  "libgeomap_net.a"
  "libgeomap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
