file(REMOVE_RECURSE
  "libgeomap_net.a"
)
