
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/calibration.cpp" "src/net/CMakeFiles/geomap_net.dir/calibration.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/calibration.cpp.o.d"
  "/root/repo/src/net/cloud.cpp" "src/net/CMakeFiles/geomap_net.dir/cloud.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/cloud.cpp.o.d"
  "/root/repo/src/net/geo.cpp" "src/net/CMakeFiles/geomap_net.dir/geo.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/geo.cpp.o.d"
  "/root/repo/src/net/instance.cpp" "src/net/CMakeFiles/geomap_net.dir/instance.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/instance.cpp.o.d"
  "/root/repo/src/net/loggp.cpp" "src/net/CMakeFiles/geomap_net.dir/loggp.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/loggp.cpp.o.d"
  "/root/repo/src/net/model_io.cpp" "src/net/CMakeFiles/geomap_net.dir/model_io.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/model_io.cpp.o.d"
  "/root/repo/src/net/network_model.cpp" "src/net/CMakeFiles/geomap_net.dir/network_model.cpp.o" "gcc" "src/net/CMakeFiles/geomap_net.dir/network_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
