# Empty compiler generated dependencies file for geomap_net.
# This may be replaced when dependencies are built.
