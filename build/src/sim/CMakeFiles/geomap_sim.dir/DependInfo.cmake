
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/netsim.cpp" "src/sim/CMakeFiles/geomap_sim.dir/netsim.cpp.o" "gcc" "src/sim/CMakeFiles/geomap_sim.dir/netsim.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/geomap_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/geomap_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/sim/CMakeFiles/geomap_sim.dir/replay.cpp.o" "gcc" "src/sim/CMakeFiles/geomap_sim.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapping/CMakeFiles/geomap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
