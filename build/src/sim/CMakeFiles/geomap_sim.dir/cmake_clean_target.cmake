file(REMOVE_RECURSE
  "libgeomap_sim.a"
)
