# Empty compiler generated dependencies file for geomap_sim.
# This may be replaced when dependencies are built.
