file(REMOVE_RECURSE
  "CMakeFiles/geomap_sim.dir/netsim.cpp.o"
  "CMakeFiles/geomap_sim.dir/netsim.cpp.o.d"
  "CMakeFiles/geomap_sim.dir/perf_model.cpp.o"
  "CMakeFiles/geomap_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/geomap_sim.dir/replay.cpp.o"
  "CMakeFiles/geomap_sim.dir/replay.cpp.o.d"
  "libgeomap_sim.a"
  "libgeomap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
