file(REMOVE_RECURSE
  "libgeomap_runtime.a"
)
