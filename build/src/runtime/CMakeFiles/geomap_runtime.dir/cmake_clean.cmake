file(REMOVE_RECURSE
  "CMakeFiles/geomap_runtime.dir/comm.cpp.o"
  "CMakeFiles/geomap_runtime.dir/comm.cpp.o.d"
  "libgeomap_runtime.a"
  "libgeomap_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
