# Empty compiler generated dependencies file for geomap_runtime.
# This may be replaced when dependencies are built.
