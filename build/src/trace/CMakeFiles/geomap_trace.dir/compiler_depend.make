# Empty compiler generated dependencies file for geomap_trace.
# This may be replaced when dependencies are built.
