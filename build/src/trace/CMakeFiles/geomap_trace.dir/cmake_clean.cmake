file(REMOVE_RECURSE
  "CMakeFiles/geomap_trace.dir/comm_matrix.cpp.o"
  "CMakeFiles/geomap_trace.dir/comm_matrix.cpp.o.d"
  "CMakeFiles/geomap_trace.dir/profile.cpp.o"
  "CMakeFiles/geomap_trace.dir/profile.cpp.o.d"
  "CMakeFiles/geomap_trace.dir/recorder.cpp.o"
  "CMakeFiles/geomap_trace.dir/recorder.cpp.o.d"
  "libgeomap_trace.a"
  "libgeomap_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geomap_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
