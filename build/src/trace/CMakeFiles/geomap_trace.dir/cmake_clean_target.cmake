file(REMOVE_RECURSE
  "libgeomap_trace.a"
)
