
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/geomap_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/geomap_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/geomap_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/geomap_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/extra_apps_test.cpp" "tests/CMakeFiles/geomap_tests.dir/extra_apps_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/extra_apps_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/geomap_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/loggp_test.cpp" "tests/CMakeFiles/geomap_tests.dir/loggp_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/loggp_test.cpp.o.d"
  "/root/repo/tests/mapping_test.cpp" "tests/CMakeFiles/geomap_tests.dir/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/mapping_test.cpp.o.d"
  "/root/repo/tests/matrix_test.cpp" "tests/CMakeFiles/geomap_tests.dir/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/matrix_test.cpp.o.d"
  "/root/repo/tests/model_io_test.cpp" "tests/CMakeFiles/geomap_tests.dir/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/model_io_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/geomap_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/geomap_tests.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/replay_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/geomap_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/geomap_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/geomap_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/geomap_tests.dir/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geomap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/geomap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/geomap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/geomap_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/geomap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
