# Empty dependencies file for geomap_tests.
# This may be replaced when dependencies are built.
