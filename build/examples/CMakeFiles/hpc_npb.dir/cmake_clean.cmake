file(REMOVE_RECURSE
  "CMakeFiles/hpc_npb.dir/hpc_npb.cpp.o"
  "CMakeFiles/hpc_npb.dir/hpc_npb.cpp.o.d"
  "hpc_npb"
  "hpc_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
