# Empty compiler generated dependencies file for hpc_npb.
# This may be replaced when dependencies are built.
