file(REMOVE_RECURSE
  "CMakeFiles/geo_analytics.dir/geo_analytics.cpp.o"
  "CMakeFiles/geo_analytics.dir/geo_analytics.cpp.o.d"
  "geo_analytics"
  "geo_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
