# Empty compiler generated dependencies file for geo_analytics.
# This may be replaced when dependencies are built.
