# Empty dependencies file for mapping_tool.
# This may be replaced when dependencies are built.
