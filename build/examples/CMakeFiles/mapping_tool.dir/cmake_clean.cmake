file(REMOVE_RECURSE
  "CMakeFiles/mapping_tool.dir/mapping_tool.cpp.o"
  "CMakeFiles/mapping_tool.dir/mapping_tool.cpp.o.d"
  "mapping_tool"
  "mapping_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
