# Empty dependencies file for bench_fig6_sim_improvement.
# This may be replaced when dependencies are built.
