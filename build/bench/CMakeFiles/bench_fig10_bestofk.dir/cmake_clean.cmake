file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bestofk.dir/bench_fig10_bestofk.cpp.o"
  "CMakeFiles/bench_fig10_bestofk.dir/bench_fig10_bestofk.cpp.o.d"
  "bench_fig10_bestofk"
  "bench_fig10_bestofk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bestofk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
