# Empty dependencies file for bench_table2_aws_regions.
# This may be replaced when dependencies are built.
