# Empty dependencies file for bench_table1_instance_bw.
# This may be replaced when dependencies are built.
