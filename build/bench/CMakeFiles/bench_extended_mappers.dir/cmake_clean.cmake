file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_mappers.dir/bench_extended_mappers.cpp.o"
  "CMakeFiles/bench_extended_mappers.dir/bench_extended_mappers.cpp.o.d"
  "bench_extended_mappers"
  "bench_extended_mappers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_mappers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
