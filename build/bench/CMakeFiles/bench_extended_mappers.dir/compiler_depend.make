# Empty compiler generated dependencies file for bench_extended_mappers.
# This may be replaced when dependencies are built.
