# Empty compiler generated dependencies file for bench_fig5_ec2_improvement.
# This may be replaced when dependencies are built.
