
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_ec2_improvement.cpp" "bench/CMakeFiles/bench_fig5_ec2_improvement.dir/bench_fig5_ec2_improvement.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_ec2_improvement.dir/bench_fig5_ec2_improvement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/geomap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/geomap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/geomap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/geomap_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/geomap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/geomap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/geomap_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/geomap_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
