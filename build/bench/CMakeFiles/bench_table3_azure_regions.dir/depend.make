# Empty dependencies file for bench_table3_azure_regions.
# This may be replaced when dependencies are built.
