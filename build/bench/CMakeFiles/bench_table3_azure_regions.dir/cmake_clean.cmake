file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_azure_regions.dir/bench_table3_azure_regions.cpp.o"
  "CMakeFiles/bench_table3_azure_regions.dir/bench_table3_azure_regions.cpp.o.d"
  "bench_table3_azure_regions"
  "bench_table3_azure_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_azure_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
