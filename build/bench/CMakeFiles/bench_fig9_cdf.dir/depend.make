# Empty dependencies file for bench_fig9_cdf.
# This may be replaced when dependencies are built.
