# Empty compiler generated dependencies file for bench_loggp_tradeoff.
# This may be replaced when dependencies are built.
