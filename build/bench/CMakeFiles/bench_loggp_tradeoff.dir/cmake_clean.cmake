file(REMOVE_RECURSE
  "CMakeFiles/bench_loggp_tradeoff.dir/bench_loggp_tradeoff.cpp.o"
  "CMakeFiles/bench_loggp_tradeoff.dir/bench_loggp_tradeoff.cpp.o.d"
  "bench_loggp_tradeoff"
  "bench_loggp_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loggp_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
