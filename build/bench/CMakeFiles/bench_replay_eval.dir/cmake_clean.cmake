file(REMOVE_RECURSE
  "CMakeFiles/bench_replay_eval.dir/bench_replay_eval.cpp.o"
  "CMakeFiles/bench_replay_eval.dir/bench_replay_eval.cpp.o.d"
  "bench_replay_eval"
  "bench_replay_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replay_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
