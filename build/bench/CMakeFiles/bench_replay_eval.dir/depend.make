# Empty dependencies file for bench_replay_eval.
# This may be replaced when dependencies are built.
