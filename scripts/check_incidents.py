#!/usr/bin/env python3
"""Validate an incidents.json artifact (src/obs/incident.h).

Checks:
  * the meta header is present;
  * `count` equals the length of `incidents`;
  * ids are unique, "inc-NNN"-shaped, and sorted in export order;
  * every incident carries exactly the four stages (detect, queue,
    migrate, residual), contiguous (stage[i].end == stage[i+1].start,
    first start == incident start, last end == incident end) with
    non-negative lengths;
  * the per-stage seconds re-fold (within float tolerance) to the
    incident's end-to-end duration;
  * blame confidence is in [0, 1] and a blamed link always touches the
    blamed site;
  * when the `attribution` block is present, its ratio fields are
    consistent with the raw counters (precision, recall, blamed =
    correct + misblamed, episodes = attributed + missed).

Exit 0 when the artifact is well-formed, 1 with a diagnostic otherwise.

Usage: check_incidents.py <incidents.json>
"""

import json
import math
import re
import sys

STAGES = ["detect", "queue", "migrate", "residual"]
REL_TOL = 1e-9
ABS_TOL = 1e-9


def fail(msg):
    print(f"check_incidents: {msg}", file=sys.stderr)
    sys.exit(1)


def close(a, b):
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def check_incident(inc):
    iid = inc.get("id", "<missing id>")
    if not re.fullmatch(r"inc-\d{3,}", iid):
        fail(f"incident id {iid!r} is not inc-NNN shaped")
    stages = inc.get("stages")
    if not isinstance(stages, dict) or sorted(stages) != sorted(STAGES):
        fail(f"{iid}: stages must be exactly {STAGES}, got "
             f"{sorted(stages) if isinstance(stages, dict) else stages}")

    start, end = inc["start"], inc["end"]
    prev_end = start
    refold = 0.0
    for name in STAGES:
        s = stages[name]
        if not close(s["start"], prev_end):
            fail(f"{iid}: stage {name} starts at {s['start']} but the "
                 f"previous boundary is {prev_end} (stages must be "
                 f"contiguous)")
        if s["end"] < s["start"]:
            fail(f"{iid}: stage {name} has negative length "
                 f"[{s['start']}, {s['end']}]")
        if not close(s["seconds"], s["end"] - s["start"]):
            fail(f"{iid}: stage {name} seconds {s['seconds']} != "
                 f"end - start = {s['end'] - s['start']}")
        refold += s["seconds"]
        prev_end = s["end"]
    if not close(prev_end, end):
        fail(f"{iid}: last stage ends at {prev_end}, incident at {end}")
    if not close(refold, inc["duration"]):
        fail(f"{iid}: stage seconds re-fold to {refold} but duration is "
             f"{inc['duration']}")
    if not close(inc["duration"], end - start):
        fail(f"{iid}: duration {inc['duration']} != end - start = "
             f"{end - start}")

    blame = inc["blame"]
    if not 0.0 <= blame["confidence"] <= 1.0:
        fail(f"{iid}: blame confidence {blame['confidence']} not in [0,1]")
    if blame["dominant_stage"] not in STAGES:
        fail(f"{iid}: dominant stage {blame['dominant_stage']!r} unknown")
    if blame["link_src"] >= 0 and blame["site"] not in (
        blame["link_src"],
        blame["link_dst"],
    ):
        fail(f"{iid}: blamed link {blame['link_src']}->{blame['link_dst']} "
             f"does not touch blamed site {blame['site']}")
    return iid


def check_attribution(a):
    if a["blamed"] != a["correctly_blamed"] + a["misblamed"]:
        fail(f"attribution: blamed {a['blamed']} != correct "
             f"{a['correctly_blamed']} + misblamed {a['misblamed']}")
    if a["episodes"] != a["attributed"] + a["missed"]:
        fail(f"attribution: episodes {a['episodes']} != attributed "
             f"{a['attributed']} + missed {a['missed']}")
    precision = (
        a["correctly_blamed"] / a["blamed"] if a["blamed"] > 0 else 1.0
    )
    recall = a["attributed"] / a["episodes"] if a["episodes"] > 0 else 1.0
    if not close(a["precision"], precision):
        fail(f"attribution: precision {a['precision']} inconsistent with "
             f"{a['correctly_blamed']}/{a['blamed']}")
    if not close(a["recall"], recall):
        fail(f"attribution: recall {a['recall']} inconsistent with "
             f"{a['attributed']}/{a['episodes']}")


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <incidents.json>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")

    if "meta" not in doc:
        fail(f"{path}: missing meta header")
    incidents = doc.get("incidents")
    if not isinstance(incidents, list):
        fail(f"{path}: missing 'incidents' array")
    if doc.get("count") != len(incidents):
        fail(f"{path}: count {doc.get('count')} != {len(incidents)} "
             f"incidents")

    ids = [check_incident(inc) for inc in incidents]
    if len(set(ids)) != len(ids):
        fail(f"{path}: duplicate incident ids")
    numbers = [int(i.split("-")[1]) for i in ids]
    if numbers != sorted(numbers):
        fail(f"{path}: incident ids are not in export order")

    if "attribution" in doc:
        check_attribution(doc["attribution"])

    scored = "scored" if "attribution" in doc else "unscored"
    print(f"check_incidents: OK — {len(incidents)} incidents ({scored})")


if __name__ == "__main__":
    main()
