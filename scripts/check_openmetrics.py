#!/usr/bin/env python3
"""Lint a metrics.prom artifact (src/obs/openmetrics.h).

Checks the exposition-format contract the renderer promises:
  * every metric family is declared by a `# TYPE <name> <counter|gauge|
    summary>` line before any of its samples;
  * every sample line belongs to a declared family, with the conventional
    suffixes per type (counter samples end `_total`; summary samples are
    quantile-labeled or end `_sum` / `_count`);
  * metric names stay inside the OpenMetrics charset with the `geomap_`
    prefix (build_info included);
  * sample values parse as numbers;
  * the exposition ends with the mandatory `# EOF` terminator and
    nothing after it.

Exit 0 on a clean exposition, 1 with a diagnostic otherwise.

Usage: check_openmetrics.py <metrics.prom>
"""

import re
import sys

NAME_RE = re.compile(r"^geomap_[a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(r"^([a-zA-Z0-9_]+)(\{[^}]*\})?\s+(\S+)$")


def fail(msg):
    print(f"check_openmetrics: {msg}", file=sys.stderr)
    sys.exit(1)


def base_family(name, families):
    """Map a sample's metric name back to its declared family."""
    if name in families:
        return name
    for suffix in ("_total", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <metrics.prom>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    families = {}  # name -> type
    samples = 0
    saw_eof = False
    for lineno, line in enumerate(lines, start=1):
        if saw_eof:
            fail(f"{path}:{lineno}: content after the # EOF terminator")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "summary"):
                fail(f"{path}:{lineno}: malformed TYPE line: {line!r}")
            name = parts[2]
            if not NAME_RE.match(name):
                fail(f"{path}:{lineno}: family {name!r} outside the charset")
            if name in families:
                fail(f"{path}:{lineno}: family {name!r} declared twice")
            families[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and other comments
        if not line.strip():
            fail(f"{path}:{lineno}: blank line in exposition")
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{lineno}: unparseable sample line: {line!r}")
        name, labels, value = m.groups()
        family = base_family(name, families)
        if family is None:
            fail(f"{path}:{lineno}: sample {name!r} has no TYPE declaration")
        ftype = families[family]
        if ftype == "counter" and not name.endswith("_total"):
            fail(f"{path}:{lineno}: counter sample {name!r} must end _total")
        if ftype == "summary" and name == family and (
            labels is None or "quantile=" not in labels
        ):
            fail(f"{path}:{lineno}: summary sample {name!r} needs a quantile label")
        try:
            float(value)
        except ValueError:
            fail(f"{path}:{lineno}: non-numeric sample value {value!r}")
        samples += 1

    if not saw_eof:
        fail(f"{path}: missing the # EOF terminator")
    if not families:
        fail(f"{path}: no metric families declared")
    print(
        f"check_openmetrics: OK — {len(families)} families, {samples} samples"
    )


if __name__ == "__main__":
    main()
