#!/usr/bin/env bash
# Bench regression gate: run the fast benches with the observability
# exporters on, reduce each critpath artifact to its compact analysis
# summary (geomap-obsctl analyze --json — events dropped, per-run
# makespan + component decomposition kept), and `geomap-obsctl check`
# every summary against the blessed copy in bench/baselines/. The gate
# fails (exit 1) when any watched leaf — a run's makespan or one of its
# alpha / beta / contention / fault / local components — grows more than
# the threshold over its baseline.
#
# Usage:
#   scripts/bench_regress.sh [--build-dir DIR] [--out-dir DIR]
#                            [--threshold PCT] [--bless]
#
#   --bless   regenerate bench/baselines/ from this machine's run instead
#             of checking (commit the result; review the diff like code).
#
# The run metadata header is pinned (GEOMAP_TIMESTAMP, and a fixed
# GEOMAP_GIT_DESCRIBE under --bless) so blessed baselines only diff when
# the numbers do. Checks ignore the header entirely.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=bench-regress-artifacts
BASELINE_DIR=bench/baselines
THRESHOLD=10
BLESS=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift 2 ;;
    --out-dir) OUT_DIR=$2; shift 2 ;;
    --threshold) THRESHOLD=$2; shift 2 ;;
    --bless) BLESS=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

OBSCTL=$BUILD_DIR/src/apps/geomap-obsctl
[[ -x $OBSCTL ]] || { echo "missing $OBSCTL — build first" >&2; exit 2; }

export GEOMAP_TIMESTAMP=${GEOMAP_TIMESTAMP:-1970-01-01T00:00:00Z}
if [[ $BLESS -eq 1 ]]; then
  export GEOMAP_GIT_DESCRIBE=blessed-baseline
else
  export GEOMAP_GIT_DESCRIBE=${GEOMAP_GIT_DESCRIBE:-$(git describe --always --dirty 2>/dev/null || echo unknown)}
fi

mkdir -p "$OUT_DIR" "$BASELINE_DIR"
FAILED=0

# run_gate <name> <bench binary> [bench flags...]
run_gate() {
  local name=$1 bench=$2
  shift 2
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  "$BUILD_DIR/bench/$bench" "$@" --obs-dir "$OUT_DIR/$name" \
    > "$OUT_DIR/$name/stdout.json"
  "$OBSCTL" analyze --json "$OUT_DIR/$name/critpath.json" \
    > "$OUT_DIR/$name/critpath.summary.json"
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/critpath.summary.json" \
       "$BASELINE_DIR/$name.critpath.json"
    echo "blessed $BASELINE_DIR/$name.critpath.json"
  elif [[ -f $BASELINE_DIR/$name.critpath.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      "$BASELINE_DIR/$name.critpath.json" \
      "$OUT_DIR/$name/critpath.summary.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.critpath.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_detector_gate <name>: the closed-loop detector bench. Detection
# precision/recall are higher-is-better, so the watch patterns carry the
# '-' prefix and the gate fails on a *drop* past the (laxer) threshold.
# The faulted runtime's virtual times are reproducible only up to
# link-queueing order, so the same artifact's makespans and costs are
# reported as context but never fatal. The rendered timeline must also
# parse — a timeline artifact obsctl cannot read is a gate failure.
run_detector_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  "$BUILD_DIR/bench/bench_fault_recovery" "$@" --detector \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.json"
  "$OBSCTL" timeline "$OUT_DIR/$name/timeline.json" > /dev/null || FAILED=1
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/stdout.json" "$BASELINE_DIR/$name.detection.json"
    echo "blessed $BASELINE_DIR/$name.detection.json"
  elif [[ -f $BASELINE_DIR/$name.detection.json ]]; then
    "$OBSCTL" check --threshold "${DETECTOR_THRESHOLD:-20}" \
      --watch '-cells.*.detection.precision,-cells.*.detection.recall' \
      "$BASELINE_DIR/$name.detection.json" \
      "$OUT_DIR/$name/stdout.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.detection.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_migrate_gate <name>: the migration-executor bench. Fully
# deterministic (single-threaded discrete-event executor), so every cell
# leaf is stable and the default threshold applies; the watched leaves
# are the migration outcomes the engine exists to bound. The bench also
# certifies each run's protocol journal — a nonzero exit is an invariant
# violation and fails the gate outright, baseline or not. The exported
# timeline (with its migration lanes) must parse.
run_migrate_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  "$BUILD_DIR/bench/bench_fault_recovery" "$@" --migrate \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.json" \
    || { echo "migration invariant violation" >&2; FAILED=1; }
  "$OBSCTL" timeline "$OUT_DIR/$name/timeline.json" > /dev/null || FAILED=1
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/stdout.json" "$BASELINE_DIR/$name.migration.json"
    echo "blessed $BASELINE_DIR/$name.migration.json"
  elif [[ -f $BASELINE_DIR/$name.migration.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      --watch 'cells.*.migration_seconds,cells.*.app_makespan,cells.*.max_downtime,cells.*.rollbacks,cells.*.violations,total_violations' \
      "$BASELINE_DIR/$name.migration.json" \
      "$OUT_DIR/$name/stdout.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.migration.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_multitenant_gate <name>: the shared-substrate fairness sweep.
# Deterministic end to end (seeded substrate, discrete-event storm), so
# the fair-share cell's fairness leaves are stable. jain_index is
# higher-is-better ('-' watch prefix: fail on a drop); stretch, drain
# time and violations fail on growth. A nonzero bench exit is a
# cross-tenant invariant violation and fails the gate outright. The
# tenant-labeled timeline must render.
run_multitenant_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  "$BUILD_DIR/bench/bench_multitenant" "$@" \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.json" \
    || { echo "cross-tenant invariant violation" >&2; FAILED=1; }
  "$OBSCTL" timeline "$OUT_DIR/$name/timeline.json" > /dev/null || FAILED=1
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/stdout.json" "$BASELINE_DIR/$name.fairness.json"
    echo "blessed $BASELINE_DIR/$name.fairness.json"
  elif [[ -f $BASELINE_DIR/$name.fairness.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      --watch '-fairness.jain_index,fairness.p99_stretch,fairness.storm_drain_seconds,fairness.violations,total_violations' \
      "$BASELINE_DIR/$name.fairness.json" \
      "$OUT_DIR/$name/stdout.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.fairness.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_profile_gate <name>: the mapper profile watch. The bench runs with
# GEOMAP_PROFILE_DETERMINISTIC=1, so profile.json is byte-stable: clocks
# read zero and the watched leaves — phase wall seconds (zero unless
# deterministic mode breaks), work counters, call counts, instrumented
# peak bytes — are pure functions of the workload. The rendered report
# and the collapsed stacks must both come out of obsctl.
run_profile_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  GEOMAP_PROFILE_DETERMINISTIC=1 "$BUILD_DIR/bench/bench_fig7_scale" "$@" \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.txt"
  "$OBSCTL" profile "$OUT_DIR/$name/profile.json" > /dev/null || FAILED=1
  [[ -s "$OUT_DIR/$name/profile.collapsed" ]] \
    || { echo "empty $OUT_DIR/$name/profile.collapsed" >&2; FAILED=1; }
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/profile.json" "$BASELINE_DIR/$name.profile.json"
    echo "blessed $BASELINE_DIR/$name.profile.json"
  elif [[ -f $BASELINE_DIR/$name.profile.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      --watch '*.wall_seconds,*.counters.*,*.calls,memory.accounts.*.peak_bytes' \
      "$BASELINE_DIR/$name.profile.json" \
      "$OUT_DIR/$name/profile.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.profile.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_slo_gate <name>: SLO error budgets over the multi-tenant soak's
# event stream. The soak is deterministic end to end and the export runs
# under GEOMAP_PROFILE_DETERMINISTIC=1, so events.jsonl is byte-stable
# and every slo.json leaf is a pure function of the workload. Two-fold:
# `obsctl slo --gate` fails outright when any error budget is blown, and
# `obsctl check` fails when a burn leaf grows (or a compliance leaf
# drops) past the threshold over the blessed copy — a run can regress
# toward the budget edge without crossing it, and the check catches that
# drift before the gate ever would.
run_slo_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  GEOMAP_PROFILE_DETERMINISTIC=1 "$BUILD_DIR/bench/bench_multitenant" "$@" \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.json" \
    || { echo "cross-tenant invariant violation" >&2; FAILED=1; }
  "$OBSCTL" slo "$OUT_DIR/$name/events.jsonl" --gate \
    || { echo "an SLO blew its error budget" >&2; FAILED=1; }
  "$OBSCTL" slo "$OUT_DIR/$name/events.jsonl" --json \
    > "$OUT_DIR/$name/slo.json"
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/slo.json" "$BASELINE_DIR/$name.slo.json"
    echo "blessed $BASELINE_DIR/$name.slo.json"
  elif [[ -f $BASELINE_DIR/$name.slo.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      --watch 'slos.*.burn,-slos.*.compliance,slos.*.worst' \
      "$BASELINE_DIR/$name.slo.json" \
      "$OUT_DIR/$name/slo.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.slo.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_attribution_gate <name>: blame quality over the chaos soak's
# incident reconstruction. The soak is deterministic end to end and the
# export runs under GEOMAP_PROFILE_DETERMINISTIC=1, so incidents.json is
# byte-stable and the attribution block is a pure function of the seeded
# faults. Three-fold: the structural linter must pass, `obsctl explain`
# must render every incident's chain (rc 0/1 — 1 just means the probed
# SLO blew; >=2 is a real failure), and `obsctl check` fails when
# attribution precision/recall drop (higher-is-better '-' watch) or the
# onset error / stage-latency means drift past the threshold.
run_attribution_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  GEOMAP_PROFILE_DETERMINISTIC=1 "$BUILD_DIR/bench/bench_multitenant" "$@" \
    --obs-dir "$OUT_DIR/$name" > "$OUT_DIR/$name/stdout.json" \
    || { echo "cross-tenant invariant violation" >&2; FAILED=1; }
  python3 scripts/check_incidents.py "$OUT_DIR/$name/incidents.json" \
    || FAILED=1
  "$OBSCTL" incidents "$OUT_DIR/$name" > /dev/null || FAILED=1
  local rc=0
  "$OBSCTL" explain "$OUT_DIR/$name" placement_stretch > /dev/null || rc=$?
  [[ $rc -le 1 ]] || { echo "obsctl explain failed (rc $rc)" >&2; FAILED=1; }
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/incidents.json" "$BASELINE_DIR/$name.attribution.json"
    echo "blessed $BASELINE_DIR/$name.attribution.json"
  elif [[ -f $BASELINE_DIR/$name.attribution.json ]]; then
    "$OBSCTL" check --threshold "$THRESHOLD" \
      --watch '-attribution.precision,-attribution.recall,attribution.mean_onset_error,attribution.misblamed,attribution.missed,stage_summary.*.mean' \
      "$BASELINE_DIR/$name.attribution.json" \
      "$OUT_DIR/$name/incidents.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.attribution.json — run with --bless" >&2
    FAILED=1
  fi
}

# run_recovery_gate <name>: the exhaustive crash-matrix soak. Every
# registered WAL crash point is armed in turn, the killed control plane
# recovered in a fresh "process", and the recovered digest asserted
# equal to the uninterrupted baseline's — the bench itself exits
# non-zero unless every point is clean, which fails the gate outright.
# The blessed comparison watches only the exactly-deterministic count
# leaves (threshold 0): catalog size, points fired, points clean and
# violation counts. Wall-clock replay/recovery timings ride along in the
# artifact as context but are never fatal. Growing the catalog (new
# crash points) passes the higher-is-better watches; rebless to pin the
# new counts.
run_recovery_gate() {
  local name=$1
  shift
  echo "== $name =="
  mkdir -p "$OUT_DIR/$name"
  GEOMAP_PROFILE_DETERMINISTIC=1 "$BUILD_DIR/bench/bench_multitenant" "$@" \
    --wal-dir "$OUT_DIR/$name/wal" > "$OUT_DIR/$name/stdout.json" \
    || { echo "crash matrix not clean" >&2; FAILED=1; }
  if [[ $BLESS -eq 1 ]]; then
    cp "$OUT_DIR/$name/stdout.json" "$BASELINE_DIR/$name.crash_matrix.json"
    echo "blessed $BASELINE_DIR/$name.crash_matrix.json"
  elif [[ -f $BASELINE_DIR/$name.crash_matrix.json ]]; then
    "$OBSCTL" check --threshold 0 \
      --watch '-points,-points_fired,-points_clean,violations,cases.*.violations' \
      "$BASELINE_DIR/$name.crash_matrix.json" \
      "$OUT_DIR/$name/stdout.json" || FAILED=1
  else
    echo "no baseline $BASELINE_DIR/$name.crash_matrix.json — run with --bless" >&2
    FAILED=1
  fi
}

# The gate set: one healthy contention-replay bench, one faulted
# remap-on-outage bench, the closed-loop detector head-to-head, and the
# migration executor carrying a remap out — all small enough to finish in
# seconds.
run_gate fig6_sim_improvement bench_fig6_sim_improvement \
  --ranks=16 --trials=3 --contention
run_gate fault_recovery bench_fault_recovery --ranks=16
run_detector_gate detector_closed_loop --ranks=16
run_migrate_gate fault_recovery_migrate --ranks=16
run_multitenant_gate multitenant --tenants 12 --sweep 3
run_profile_gate fig7_scale --min-scale=64 --max-scale=128 --trials=3
run_slo_gate multitenant_soak --soak 2 --soak-tenants 12
run_attribution_gate chaos_soak --soak 50 --soak-tenants 8
run_recovery_gate recovery --crash-matrix --sites 4 --soak-tenants 8 \
  --seed 17 --wal-fsync=false

if [[ $BLESS -eq 1 ]]; then
  echo "baselines written to $BASELINE_DIR/"
  exit "$FAILED"  # nonzero: a bench failed outright (e.g. invariant violation)
fi
if [[ $FAILED -ne 0 ]]; then
  echo "bench-regress: FAILED (see tables above)" >&2
  exit 1
fi
echo "bench-regress: all gates passed"
