#!/usr/bin/env python3
"""Validate a crash-matrix report (bench_multitenant --crash-matrix).

The report is the acceptance surface of the crash-consistent control
plane: every registered WAL crash point armed in turn, the killed run
recovered in a fresh "process", and the recovered outcome digest
compared against the uninterrupted baseline. Checks:

  * mode is "crash-matrix" and the catalog is non-trivial (`points`
    equals the case count and covers at least the 40-point seed
    catalog's shape: every case names a distinct point);
  * every case completed within its attempt budget, matched the
    baseline digest, and reported zero recovery violations
    (`points_clean == points`, `ok` is true);
  * the workload actually exercised the log: the always-reachable
    points (run_begin / sched_grant / sched_finish / run_end appends,
    the torn-sync point) all fired, and `points_fired` equals the
    per-case count;
  * every fired case recovered at least once, and across the matrix
    at least one recovery replayed durable WAL records;
  * the summary counters re-fold from the cases (points_fired,
    points_clean, violations, wal_records_replayed).

Exit 0 when the matrix is clean, 1 with a diagnostic otherwise.

Usage: check_recovery.py <crash-matrix.json>
"""

import json
import sys

# Points every storm-shaped workload must reach; a matrix where one of
# these never fired tested nothing.
MUST_FIRE = [
    "wal.append.run_begin.before",
    "wal.append.run_begin.after",
    "wal.append.sched_grant.before",
    "wal.append.sched_finish.after",
    "wal.append.run_end.before",
    "wal.sync.torn",
]


def fail(msg):
    print(f"check_recovery: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    report = json.load(open(sys.argv[1]))

    if report.get("mode") != "crash-matrix":
        fail(f"mode is {report.get('mode')!r}, expected 'crash-matrix'")
    cases = report.get("cases", [])
    if not cases:
        fail("no cases — the crash-point catalog is empty")
    if report.get("points") != len(cases):
        fail(f"points {report.get('points')} != {len(cases)} cases")

    seen = set()
    fired = 0
    clean = 0
    violations = 0
    replayed = 0
    for c in cases:
        point = c.get("point", "<missing>")
        if point in seen:
            fail(f"point {point!r} appears twice")
        seen.add(point)
        if not c.get("completed"):
            fail(f"{point}: never completed within the attempt budget")
        if not c.get("digest_match"):
            fail(f"{point}: recovered digest diverged from the baseline")
        violations += c.get("violations", 0)
        if c.get("violations", 0) != 0:
            fail(f"{point}: {c['violations']} recovery violation(s)")
        clean += 1
        if c.get("fired"):
            fired += 1
            if c.get("recoveries", 0) < 1:
                fail(f"{point}: fired but reports no recovery")
        replayed += c.get("wal_records_replayed", 0)

    for point in MUST_FIRE:
        if point not in seen:
            fail(f"catalog is missing {point!r}")
        case = next(c for c in cases if c["point"] == point)
        if not case.get("fired"):
            fail(f"{point!r} never fired — the workload did not "
                 f"exercise the log")

    if report.get("points_fired") != fired:
        fail(f"points_fired {report.get('points_fired')} != {fired} "
             f"fired cases")
    if report.get("points_clean") != clean:
        fail(f"points_clean {report.get('points_clean')} != {clean} "
             f"clean cases")
    if report.get("points_clean") != len(cases):
        fail(f"only {report.get('points_clean')}/{len(cases)} points clean")
    if report.get("violations") != violations:
        fail(f"violations {report.get('violations')} != {violations} "
             f"re-folded")
    if report.get("wal_records_replayed") != replayed:
        fail(f"wal_records_replayed {report.get('wal_records_replayed')} "
             f"!= {replayed} re-folded")
    if replayed < 1:
        fail("no recovery ever replayed a WAL record — the matrix "
             "never actually recovered anything")
    if report.get("ok") is not True:
        fail("ok is not true")

    print(f"check_recovery: OK ({len(cases)} points, {fired} fired, "
          f"{replayed} WAL records replayed, digests all match)")


if __name__ == "__main__":
    main()
