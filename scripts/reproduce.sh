#!/usr/bin/env bash
# Reproduce every experiment in one shot (the paper's artifact-description
# workflow): configure, build, run the test suite, regenerate all tables
# and figures, and archive the outputs under results/.
#
#   scripts/reproduce.sh [build-dir]
#
# Environment:
#   GEOMAP_BENCH_FLAGS   extra flags passed to every bench binary
#                        (e.g. "--csv" or "--seed 7").
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD=${1:-build}
RESULTS=results
FLAGS=${GEOMAP_BENCH_FLAGS:-}

echo "== configure + build =="
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== test suite =="
mkdir -p "$RESULTS"
ctest --test-dir "$BUILD" 2>&1 | tee "$RESULTS/tests.txt" | tail -2

echo "== benches (tables and figures) =="
for b in "$BUILD"/bench/bench_*; do
  name=$(basename "$b")
  echo "-- $name"
  # shellcheck disable=SC2086
  "$b" $FLAGS >"$RESULTS/$name.txt" 2>&1
done

echo "== examples =="
for e in quickstart geo_analytics hpc_npb scale_study; do
  echo "-- $e"
  "$BUILD/examples/$e" >"$RESULTS/example_$e.txt" 2>&1
done

echo
echo "All outputs in $RESULTS/ — see EXPERIMENTS.md for the paper-vs-measured"
echo "reading of each table and figure."
