#!/usr/bin/env python3
"""Validate an events.jsonl artifact (src/obs/eventlog.h).

Checks:
  * the first line is the meta object ({"kind": "meta", ...}) carrying
    integer `events` (total emitted) and `dropped` counts;
  * every following line is one complete JSON event object with the
    required keys (seq, t, severity, component, event, fields);
  * sequence numbers are strictly increasing and the first retained
    event's seq is dropped + 1 (retention drops oldest-first);
  * severities are from the closed set;
  * retained count == events - dropped;
  * when nothing was dropped, the sequence is contiguous (each seq is
    previous + 1) and the last seq equals the meta total — a gap in an
    undropped stream means the exporter lost events silently.

Exit 0 when the artifact is well-formed, 1 with a diagnostic otherwise.

Usage: check_events_jsonl.py <events.jsonl>
"""

import json
import sys

SEVERITIES = {"debug", "info", "warn", "error"}
REQUIRED_KEYS = {"seq", "t", "severity", "component", "event", "fields"}


def fail(msg):
    print(f"check_events_jsonl: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <events.jsonl>")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {path}: {e}")

    if not lines:
        fail(f"{path} is empty — expected a meta line")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(f"{path}:1: meta line is not valid JSON: {e}")
    if meta.get("kind") != "meta":
        fail(f'{path}:1: first line must be the meta object ("kind": "meta")')
    total, dropped = meta.get("events"), meta.get("dropped")
    if not isinstance(total, int) or not isinstance(dropped, int):
        fail(f"{path}:1: meta needs integer 'events' and 'dropped' counts")

    last_seq = dropped  # first retained event must be dropped + 1
    retained = 0
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            fail(f"{path}:{lineno}: blank line inside the stream")
        try:
            event = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        missing = REQUIRED_KEYS - event.keys()
        if missing:
            fail(f"{path}:{lineno}: missing keys {sorted(missing)}")
        seq = event["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            fail(
                f"{path}:{lineno}: seq {seq!r} not strictly increasing "
                f"(previous {last_seq})"
            )
        if dropped == 0 and seq != last_seq + 1:
            fail(
                f"{path}:{lineno}: seq gap in an undropped stream "
                f"({last_seq} -> {seq}) — the exporter lost events"
            )
        if event["severity"] not in SEVERITIES:
            fail(f"{path}:{lineno}: unknown severity {event['severity']!r}")
        if not isinstance(event["fields"], dict):
            fail(f"{path}:{lineno}: 'fields' must be an object")
        last_seq = seq
        retained += 1

    if retained != total - dropped:
        fail(
            f"{path}: retained {retained} events but meta says "
            f"{total} - {dropped} dropped = {total - dropped}"
        )
    if dropped == 0 and retained > 0 and last_seq != total:
        fail(
            f"{path}: undropped stream ends at seq {last_seq} but meta "
            f"says {total} events were emitted"
        )
    print(
        f"check_events_jsonl: OK — {retained} events "
        f"({dropped} dropped, max seq {last_seq})"
    )


if __name__ == "__main__":
    main()
