// Paper Figure 9: cumulative distribution of normalized communication
// time over random mappings (Monte Carlo), with the three algorithms'
// solutions positioned on the distribution — LU, K-means, DNN at 64
// processes. The paper's headline: Geo-distributed lands where fewer
// than 1% (LU) / 0.1% (K-means, DNN) of random mappings are better.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "core/montecarlo.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 9: Monte Carlo CDF of normalized comm time");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("samples", 200000,
              "Monte Carlo draws (paper uses 10^7; the CDF stabilizes far "
              "earlier)");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  for (const char* app_name : {"LU", "K-means", "DNN"}) {
    const apps::App& app = apps::app_by_name(app_name);
    apps::AppConfig cfg = app.default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(app, cfg, ctx.calib.model);

    Rng rng(seed);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm),
        mapping::make_random_constraints(
            ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"),
            rng));

    core::MonteCarloOptions mc_opts;
    mc_opts.samples = cli.get_int("samples");
    mc_opts.seed = seed;
    const core::MonteCarloResult mc = core::run_monte_carlo(problem, mc_opts);
    const EmpiricalCdf cdf = mc.cdf();

    const mapping::CostEvaluator eval(problem);
    const bench::AlgorithmSet algos = bench::paper_algorithms(ranks, 1000, obs.collector());

    print_banner(std::cout, std::string("Figure 9 — ") + app_name +
                                ": CDF of normalized communication time");
    auto normalized = [&](double cost) {
      return mapping::normalize(cost, mc.best, mc.worst);
    };

    Table curve({"normalized time", "CDF"});
    for (const double q :
         {0.0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      curve.row().cell(normalized(cdf.quantile(q)), 4).cell(q, 3);
    }
    bench::print_table(curve, cli.get_bool("csv"));

    // Markers: "normalized" positions algorithms on the CDF's [0,1] axis
    // (negative = cheaper than every sampled random mapping); "vs worst"
    // is the cost relative to the worst sampled mapping.
    Table markers(
        {"algorithm", "normalized time", "vs worst", "P(random better) %"});
    for (mapping::Mapper* mapper : algos.all()) {
      const double cost = eval.total_cost(mapper->map(problem));
      markers.row()
          .cell(mapper->name())
          .cell(normalized(cost), 4)
          .cell(cost / mc.worst, 4)
          .cell(100.0 * mc.fraction_below(cost), 3);
    }
    bench::print_table(markers, cli.get_bool("csv"));
  }
  std::cout << "\nPaper shapes: Geo-distributed beaten by <1% of random "
               "mappings on LU and <0.1% on K-means/DNN;\nGreedy near the "
               "distribution median on K-means/DNN (no better than "
               "random).\n";
  return 0;
}
