// Extended comparison beyond the paper's three algorithms: every mapper
// the library ships — Block/Cyclic schedulers, Greedy, MPIPP, simulated
// annealing (Bollinger & Midkiff-style), and Geo-distributed — on all
// five applications, reporting communication improvement and
// optimization overhead. Annealing gauges how close the O(kappa!·N^2)
// heuristic gets to an expensive global search.

#include <iostream>
#include <memory>

#include "bench_util.h"
#include "common/cli.h"
#include "mapping/annealing_mapper.h"
#include "mapping/round_robin_mapper.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("extended mapper comparison (all library algorithms)");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  std::vector<std::pair<std::string, std::unique_ptr<mapping::Mapper>>>
      mappers;
  mappers.emplace_back("Block", std::make_unique<mapping::BlockMapper>());
  mappers.emplace_back("Cyclic", std::make_unique<mapping::CyclicMapper>());
  mappers.emplace_back("Greedy", std::make_unique<mapping::GreedyMapper>());
  mappers.emplace_back("MPIPP", std::make_unique<mapping::MpippMapper>());
  mappers.emplace_back("Annealing",
                       std::make_unique<mapping::AnnealingMapper>());
  mappers.emplace_back("Geo-distributed",
                       std::make_unique<core::GeoDistMapper>());

  print_banner(std::cout,
               "Extended comparison — communication improvement over "
               "Baseline (%) / optimize (ms)");
  std::vector<std::string> header = {"app"};
  for (const auto& [name, mapper] : mappers) header.push_back(name);
  Table table(header);

  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);
    Rng rng(seed);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm),
        mapping::make_random_constraints(ranks, ctx.topo.capacities(),
                                         cli.get_double("constraint-ratio"),
                                         rng));
    const RunningStats base = bench::baseline_cost_stats(problem, 20, seed);

    std::vector<std::string> row = {app->name()};
    for (auto& [name, mapper] : mappers) {
      const mapping::MapperRun run = mapping::run_mapper(*mapper, problem);
      row.push_back(
          format_double(mapping::improvement_percent(base.mean(), run.cost),
                        1) +
          " / " + format_double(run.optimize_seconds * 1e3, 1));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nReading: annealing approaches (or matches) Geo-distributed "
               "quality at orders of magnitude more\noptimization time; "
               "Block accidentally suits near-diagonal NPB patterns; Cyclic "
               "is adversarial for them.\n";
  return 0;
}
