// Multi-tenant substrate bench: fairness sweep over scheduler policies,
// plus the 100-tenant chaos soak.
//
// Two modes:
//
//   * sweep (default): a few seeds × every scheduler policy through the
//     full observe → detect → remap-storm → migrate loop on a shared
//     substrate. Emits one JSON object whose `cells` array has one entry
//     per policy (seed-averaged fairness/interference metrics) and whose
//     top-level `fairness` object repeats the fair-share cell — the
//     blessed bench-regress gate (bench/baselines/multitenant.fairness
//     .json) watches exactly those keys.
//
//   * --soak N: N seeds × --soak-tenants tenants (default 100) through
//     the same loop, every journal replayed through the per-tenant and
//     cross-tenant invariant checkers. Emits a machine-checked summary
//     (seeds_run / invariants_checked / violations / ok) and exits
//     non-zero on any violation — the CI chaos gate asserts the fields,
//     not just JSON parseability.
//
//   * --soak N --wal-dir D: the same soak through the crash-consistent
//     driver — every control-plane decision write-ahead-logged under
//     D/seed-<seed>, crashed runs resumed from their log. Per-case WAL
//     replay / recovery timings land in the JSON, and the kill/restart
//     quickstart hangs off this mode: arm GEOMAP_CRASHPOINT, the process
//     dies with exit 42, rerun the same command and it recovers.
//
//   * --crash-matrix: the exhaustive acceptance soak — every registered
//     WAL crash point armed in turn, the killed run recovered in a fresh
//     "process", and the recovered digest asserted equal to the
//     uninterrupted baseline's. Exits non-zero unless every point is
//     clean; the blessed bench-regress gate watches the count fields.

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/json_writer.h"
#include "fault/crash.h"
#include "recover/driver.h"
#include "tenancy/scheduler.h"
#include "tenancy/soak.h"
#include "tenancy/substrate.h"

namespace geomap {
namespace {

struct PolicyCell {
  tenancy::SchedulerPolicy policy = tenancy::SchedulerPolicy::kFifo;
  double jain_index = 0;
  double p99_stretch = 0;
  double mean_stretch = 0;
  double storm_drain_seconds = 0;
  double requeues = 0;
  double gave_up = 0;
  std::int64_t violations = 0;
};

PolicyCell run_policy(tenancy::SchedulerPolicy policy,
                      const std::vector<std::uint64_t>& seeds,
                      tenancy::MultiTenantSoakOptions options) {
  options.scheduler.policy = policy;
  const tenancy::MultiTenantSoakReport report =
      tenancy::run_multitenant_soak(seeds, options);

  PolicyCell cell;
  cell.policy = policy;
  const double n = static_cast<double>(report.cases.size());
  for (const tenancy::MultiTenantSoakCase& c : report.cases) {
    cell.jain_index += c.fairness.jain_index / n;
    cell.p99_stretch += c.fairness.p99_stretch / n;
    cell.mean_stretch += c.fairness.mean_stretch / n;
    cell.storm_drain_seconds += c.storm.storm_drain_seconds / n;
    for (const fault::InvariantViolation& v : c.violations) {
      std::cerr << "INVARIANT VIOLATION (policy " << to_string(policy)
                << ", seed " << c.seed << "): t=" << v.t << " " << v.message
                << "\n";
    }
  }
  cell.requeues = report.total_requeues / n;
  cell.gave_up = report.total_gave_up / n;
  cell.violations = report.total_violations;
  return cell;
}

void write_cell_fields(JsonWriter& w, const PolicyCell& cell) {
  w.field("jain_index", cell.jain_index);
  w.field("p99_stretch", cell.p99_stretch);
  w.field("mean_stretch", cell.mean_stretch);
  w.field("storm_drain_seconds", cell.storm_drain_seconds);
  w.field("requeues", cell.requeues);
  w.field("gave_up", cell.gave_up);
  w.field("violations", cell.violations);
}

tenancy::MultiTenantSoakOptions make_options(const CliParser& cli,
                                             int num_tenants) {
  tenancy::MultiTenantSoakOptions options;
  options.substrate.num_sites = static_cast<int>(cli.get_int("sites"));
  options.substrate.num_tenants = num_tenants;
  options.scheduler.max_concurrent =
      static_cast<int>(cli.get_int("max-concurrent"));
  return options;
}

std::vector<std::uint64_t> make_seeds(const CliParser& cli, int count) {
  std::vector<std::uint64_t> seeds;
  const auto base = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (int i = 0; i < count; ++i)
    seeds.push_back(base + static_cast<std::uint64_t>(i));
  return seeds;
}

int run_sweep(const CliParser& cli, bench::ObsSink& obs) {
  const auto seeds = make_seeds(cli, static_cast<int>(cli.get_int("sweep")));
  tenancy::MultiTenantSoakOptions options =
      make_options(cli, static_cast<int>(cli.get_int("tenants")));
  options.scheduler.collector = obs.collector();

  const std::vector<tenancy::SchedulerPolicy> policies = {
      tenancy::SchedulerPolicy::kFifo, tenancy::SchedulerPolicy::kSeverity,
      tenancy::SchedulerPolicy::kFairShare};

  std::vector<PolicyCell> cells;
  cells.reserve(policies.size());
  for (const tenancy::SchedulerPolicy policy : policies) {
    cells.push_back(run_policy(policy, seeds, options));
  }

  std::int64_t violations = 0;
  JsonWriter w(std::cout);
  w.begin_object();
  w.field("tenants", cli.get_int("tenants"));
  w.field("sites", cli.get_int("sites"));
  w.field("seeds", static_cast<std::int64_t>(seeds.size()));
  w.key("cells").begin_array();
  for (const PolicyCell& cell : cells) {
    w.begin_object();
    w.field("policy", std::string(to_string(cell.policy)));
    write_cell_fields(w, cell);
    w.end_object();
    violations += cell.violations;
  }
  w.end_array();
  // The bench-regress gate watches the fair-share cell under `fairness`.
  w.key("fairness").begin_object();
  write_cell_fields(w, cells.back());
  w.end_object();
  w.field("total_violations", violations);
  w.field("ok", violations == 0);
  w.end_object();
  w.done();
  std::cout << "\n";
  obs.flush();
  return violations == 0 ? 0 : 1;
}

int run_soak(const CliParser& cli, bench::ObsSink& obs) {
  const auto seeds = make_seeds(cli, static_cast<int>(cli.get_int("soak")));
  tenancy::MultiTenantSoakOptions options =
      make_options(cli, static_cast<int>(cli.get_int("soak-tenants")));
  options.collector = obs.collector();

  // Case-by-case (rather than one run_multitenant_soak call) so the obs
  // sink can checkpoint after every seed: `geomap-obsctl watch` on a
  // live --obs-dir sees the event stream / metrics grow as the soak
  // progresses instead of only at exit.
  const std::string wal_root = cli.get_string("wal-dir");
  // The recoverable driver needs a collector even when no --obs-dir was
  // given (it re-emits the durable history through it on resume).
  obs::Collector local_collector;
  std::vector<recover::RecoverableCaseResult> recoverable;
  std::size_t recovery_violations = 0;
  tenancy::MultiTenantSoakReport report;
  report.cases.reserve(seeds.size());
  for (const std::uint64_t seed : seeds) {
    if (wal_root.empty()) {
      report.cases.push_back(tenancy::run_multitenant_soak_case(seed, options));
    } else {
      recover::RecoverableSoakOptions ro;
      ro.soak = options;
      if (ro.soak.collector == nullptr) ro.soak.collector = &local_collector;
      ro.wal_dir = wal_root + "/seed-" + std::to_string(seed);
      ro.wal.fsync = cli.get_bool("wal-fsync");
      ro.snapshot_every_samples = 16;
      recoverable.push_back(recover::run_recoverable_case(seed, ro));
      const recover::RecoverableCaseResult& r = recoverable.back();
      recovery_violations += r.recovery_violations.size();
      for (const std::string& v : r.recovery_violations) {
        std::cerr << "RECOVERY VIOLATION (seed " << seed << "): " << v
                  << "\n";
      }
      report.cases.push_back(r.soak_case);
    }
    const tenancy::MultiTenantSoakCase& c = report.cases.back();
    report.seeds_run += 1;
    report.total_violations += static_cast<int>(c.violations.size());
    report.total_invariants_checked += c.invariants_checked;
    report.total_requeues += c.storm.requeues;
    report.total_gave_up += c.storm.gave_up;
    if (c.detected) report.detected_cases += 1;
    if (c.attribution_scored) report.attribution.merge(c.attribution);
    obs.checkpoint();
  }

  JsonWriter w(std::cout);
  w.begin_object();
  w.field("mode", std::string("multitenant-soak"));
  w.field("seeds_run", report.seeds_run);
  w.field("tenants_per_seed", cli.get_int("soak-tenants"));
  w.key("cases").begin_array();
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const tenancy::MultiTenantSoakCase& c = report.cases[i];
    w.begin_object();
    w.field("seed", static_cast<std::int64_t>(c.seed));
    w.field("tenants", c.tenants);
    w.field("primary_site", c.primary_site);
    w.field("outage_time", c.outage_time);
    w.field("detected", c.detected);
    w.field("suspected_correct", c.suspected_correct);
    w.field("requests", c.requests);
    w.field("requeues", c.storm.requeues);
    w.field("gave_up", c.storm.gave_up);
    w.field("storm_drain_seconds", c.storm.storm_drain_seconds);
    w.field("jain_index", c.fairness.jain_index);
    w.field("p99_stretch", c.fairness.p99_stretch);
    w.field("invariants_checked", c.invariants_checked);
    w.field("violations", static_cast<std::int64_t>(c.violations.size()));
    if (i < recoverable.size()) {
      const recover::RecoverableCaseResult& r = recoverable[i];
      w.field("resumed", r.resumed);
      w.field("recoveries", r.recoveries);
      w.field("wal_records_replayed",
              static_cast<std::int64_t>(r.wal_records_replayed));
      w.field("wal_replay_ms", bench::masked_ms(r.wal_replay_seconds * 1e3));
      w.field("recovery_ms", bench::masked_ms(r.recovery_seconds * 1e3));
      w.field("recovery_violations",
              static_cast<std::int64_t>(r.recovery_violations.size()));
    }
    w.end_object();
    for (const fault::InvariantViolation& v : c.violations) {
      std::cerr << "INVARIANT VIOLATION (seed " << c.seed << "): t=" << v.t
                << " " << v.message << "\n";
    }
  }
  w.end_array();
  w.field("detected_cases", report.detected_cases);
  w.field("total_requeues", report.total_requeues);
  w.field("total_gave_up", report.total_gave_up);
  if (obs.collector() != nullptr) {
    // Blame quality vs the seeded truth — only measured when the
    // incident engine ran (it needs the event stream).
    w.key("attribution").begin_object();
    w.field("incidents",
            static_cast<std::int64_t>(report.attribution.incidents));
    w.field("precision", report.attribution.precision());
    w.field("recall", report.attribution.recall());
    w.field("mean_onset_error", report.attribution.mean_onset_error());
    w.end_object();
  }
  if (!recoverable.empty()) {
    int resumed_cases = 0;
    int total_recoveries = 0;
    std::int64_t replayed = 0;
    double replay_ms = 0;
    double recovery_ms = 0;
    for (const recover::RecoverableCaseResult& r : recoverable) {
      if (r.resumed) resumed_cases += 1;
      total_recoveries += r.recoveries;
      replayed += static_cast<std::int64_t>(r.wal_records_replayed);
      replay_ms += r.wal_replay_seconds * 1e3;
      recovery_ms += r.recovery_seconds * 1e3;
    }
    w.key("wal").begin_object();
    w.field("dir", wal_root);
    w.field("resumed_cases", resumed_cases);
    w.field("recoveries", total_recoveries);
    w.field("records_replayed", replayed);
    w.field("replay_ms", bench::masked_ms(replay_ms));
    w.field("recovery_ms", bench::masked_ms(recovery_ms));
    w.field("recovery_violations",
            static_cast<std::int64_t>(recovery_violations));
    w.end_object();
  }
  w.field("invariants_checked", report.total_invariants_checked);
  w.field("violations", report.total_violations);
  const bool ok = report.total_violations == 0 && recovery_violations == 0;
  w.field("ok", ok);
  w.end_object();
  w.done();
  std::cout << "\n";
  obs.flush();
  return ok ? 0 : 1;
}

int run_crash_matrix_mode(const CliParser& cli) {
  recover::CrashMatrixOptions mo;
  mo.base.soak =
      make_options(cli, static_cast<int>(cli.get_int("soak-tenants")));
  std::string wal_root = cli.get_string("wal-dir");
  if (wal_root.empty()) {
    wal_root = (std::filesystem::temp_directory_path() /
                "geomap-crash-matrix")
                   .string();
  }
  mo.base.wal_dir = wal_root;
  mo.base.wal.fsync = cli.get_bool("wal-fsync");
  // Frequent snapshots keep each attempt's log small and exercise the
  // compaction crash points on every run.
  mo.base.snapshot_every_samples = 16;
  mo.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const recover::CrashMatrixReport report = recover::run_crash_matrix(mo);

  std::int64_t replayed = 0;
  double replay_ms = 0;
  double recovery_ms = 0;
  std::int64_t violations = 0;
  JsonWriter w(std::cout);
  w.begin_object();
  w.field("mode", std::string("crash-matrix"));
  w.field("seed", cli.get_int("seed"));
  w.field("sites", cli.get_int("sites"));
  w.field("tenants", cli.get_int("soak-tenants"));
  w.field("baseline_digest", static_cast<std::int64_t>(report.baseline_digest));
  w.key("cases").begin_array();
  for (const recover::CrashMatrixCase& c : report.cases) {
    w.begin_object();
    w.field("point", c.point);
    w.field("fired", c.fired);
    w.field("completed", c.completed);
    w.field("recoveries", c.recoveries);
    w.field("digest_match", c.digest_match);
    w.field("wal_records_replayed",
            static_cast<std::int64_t>(c.wal_records_replayed));
    w.field("wal_replay_ms", bench::masked_ms(c.wal_replay_seconds * 1e3));
    w.field("recovery_ms", bench::masked_ms(c.recovery_seconds * 1e3));
    w.field("violations",
            static_cast<std::int64_t>(c.recovery_violations.size()));
    w.end_object();
    replayed += static_cast<std::int64_t>(c.wal_records_replayed);
    replay_ms += c.wal_replay_seconds * 1e3;
    recovery_ms += c.recovery_seconds * 1e3;
    violations += static_cast<std::int64_t>(c.recovery_violations.size());
    for (const std::string& v : c.recovery_violations) {
      std::cerr << "RECOVERY VIOLATION (point " << c.point << "): " << v
                << "\n";
    }
    if (!c.digest_match) {
      std::cerr << "DIGEST MISMATCH (point " << c.point << "): " << c.digest
                << " != baseline " << report.baseline_digest << "\n";
    }
  }
  w.end_array();
  w.field("points", static_cast<std::int64_t>(report.cases.size()));
  w.field("points_fired", report.points_fired);
  w.field("points_clean", report.points_clean);
  w.field("wal_records_replayed", replayed);
  w.field("wal_replay_ms", bench::masked_ms(replay_ms));
  w.field("recovery_ms", bench::masked_ms(recovery_ms));
  w.field("violations", violations);
  w.field("ok", report.all_clean);
  w.end_object();
  w.done();
  std::cout << "\n";
  return report.all_clean ? 0 : 1;
}

}  // namespace
}  // namespace geomap

int main(int argc, char** argv) {
  using geomap::CliParser;
  CliParser cli(
      "Multi-tenant substrate: scheduler-policy fairness sweep and the "
      "100-tenant chaos soak");
  cli.add_int("seed", 2017, "base random seed");
  cli.add_int("sites", 6, "shared substrate sites");
  cli.add_int("tenants", 12, "tenants in sweep mode");
  cli.add_int("sweep", 3, "seeds per policy in sweep mode");
  cli.add_int("max-concurrent", 2, "migrations in flight at once");
  cli.add_int("soak", 0,
              "run the multi-tenant chaos soak over this many seeds "
              "instead of the sweep");
  cli.add_int("soak-tenants", 100, "tenants per soak seed");
  cli.add_string("wal-dir", "",
                 "write-ahead-log the control plane under this directory "
                 "(soak mode: one WAL per seed, crashed runs resume)");
  cli.add_bool("wal-fsync", true,
               "fsync(2) the WAL on every sync (off: fflush only)");
  cli.add_bool("crash-matrix", false,
               "arm every registered WAL crash point in turn and assert "
               "the recovered digest matches the uninterrupted baseline");
  geomap::bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  geomap::bench::ObsSink obs = geomap::bench::ObsSink::parse(cli);
  try {
    if (cli.get_bool("crash-matrix"))
      return geomap::run_crash_matrix_mode(cli);
    if (cli.get_int("soak") > 0) return geomap::run_soak(cli, obs);
    return geomap::run_sweep(cli, obs);
  } catch (const geomap::fault::CrashTriggered& crash) {
    // A GEOMAP_CRASHPOINT-armed kill: the control plane died mid-run
    // with its WAL on disk. Rerunning the same command resumes it.
    std::cerr << "crashed at " << crash.point()
              << " (rerun with the same --wal-dir to recover)\n";
    return 42;
  }
}
