// Paper Figure 7: communication improvement at different scales — 64 to
// 8192 machines, 4 regions, machines evenly distributed — for LU,
// K-means and DNN. MPIPP is excluded beyond 1000 processes (the paper:
// "very inefficient for its large runtime overhead"). Synthetic patterns
// stand in for profiled runs at sizes where thread-per-rank execution is
// impractical; the alpha-beta model evaluates the mappings.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 7: improvement at scale (64..8192 machines)");
  cli.add_int("max-scale", 8192, "largest machine count");
  cli.add_int("min-scale", 64, "smallest machine count");
  cli.add_int("trials", 10, "baseline random mappings averaged");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_string("app", "",
                 "run only this app (LU, K-means, DNN; empty = all three)");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto max_scale = cli.get_int("max-scale");
  const auto min_scale = cli.get_int("min-scale");
  const int trials = static_cast<int>(cli.get_int("trials"));
  const std::string only_app = cli.get_string("app");

  print_banner(std::cout,
               "Figure 7 — improvement over Baseline at scale (%)");
  Table table({"app", "machines", "Greedy", "MPIPP", "Geo-distributed",
               "geo optimize (s)", "geo evals/s"});
  // The scale arc's number to beat: full-mapping cost evaluations per
  // second of geodist optimization, best row of the sweep.
  double best_evals_per_sec = 0;

  for (const char* app_name : {"LU", "K-means", "DNN"}) {
    if (!only_app.empty() && only_app != app_name) continue;
    const apps::App& app = apps::app_by_name(app_name);
    for (std::int64_t n = min_scale; n <= max_scale; n *= 2) {
      const int ranks = static_cast<int>(n);
      const net::CloudTopology topo(net::aws_experiment_profile(ranks / 4));
      const net::CalibrationResult calib = net::Calibrator().calibrate(topo);

      Rng rng(seed);
      mapping::MappingProblem problem;
      problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
      problem.network = calib.model;
      problem.capacities = topo.capacities();
      problem.site_coords = topo.coordinates();
      problem.constraints = mapping::make_random_constraints(
          ranks, problem.capacities, cli.get_double("constraint-ratio"), rng);
      problem.validate();

      const RunningStats base =
          bench::baseline_cost_stats(problem, trials, seed + 1);
      const mapping::CostEvaluator eval(problem);
      const bench::AlgorithmSet algos =
          bench::paper_algorithms(ranks, 1000, obs.collector());

      double greedy_imp = 0, mpipp_imp = 0, geo_imp = 0, geo_seconds = 0;
      const std::uint64_t evals_before =
          obs.collector() != nullptr
              ? obs.collector()->metrics().counter("mapper.orders_evaluated")
                    .value()
              : 0;
      {
        const Mapping m = algos.greedy->map(problem);
        greedy_imp = mapping::improvement_percent(base.mean(),
                                                  eval.total_cost(m));
      }
      if (algos.mpipp) {
        const Mapping m = algos.mpipp->map(problem);
        mpipp_imp = mapping::improvement_percent(base.mean(),
                                                 eval.total_cost(m));
      }
      {
        Timer timer;
        const Mapping m = algos.geo->map(problem);
        geo_seconds = timer.elapsed_seconds();
        geo_imp =
            mapping::improvement_percent(base.mean(), eval.total_cost(m));
      }
      double evals_per_sec = 0;
      if (obs.collector() != nullptr && geo_seconds > 0) {
        const std::uint64_t evals =
            obs.collector()->metrics().counter("mapper.orders_evaluated")
                .value() -
            evals_before;
        evals_per_sec = static_cast<double>(evals) / geo_seconds;
        best_evals_per_sec = std::max(best_evals_per_sec, evals_per_sec);
      }
      table.row()
          .cell(app_name)
          .cell(static_cast<long long>(ranks))
          .cell(greedy_imp, 1)
          .cell(algos.mpipp ? format_double(mpipp_imp, 1) : std::string("-"))
          .cell(geo_imp, 1)
          .cell(geo_seconds, 2)
          .cell(evals_per_sec, 1);
    }
  }
  if (obs.collector() != nullptr) {
    obs.collector()->metrics().gauge("mapper.cost_evals_per_sec")
        .set(best_evals_per_sec);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: improvements shrink slowly with scale (the "
               "O(N!) space grows); Geo-distributed stays >50%\neven at 8192 "
               "machines; Greedy holds >30% on LU but <10% on K-means/DNN; "
               "MPIPP infeasible beyond 1024.\n";
  return 0;
}
