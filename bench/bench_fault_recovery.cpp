// Fault-recovery sweep: how expensive is losing a site, and how much of
// that cost does remapping claw back?
//
// For each app the geo-distributed mapping is computed on the healthy
// 4-region EC2 deployment, then a fault scenario is injected: the
// busiest site browns out (its links degrade by --factor at t=0 and by
// --factor again at t=60) and finally fails at the swept outage time.
// remap_on_outage() rebuilds the instance and reruns the mapper over the
// survivors. The deployment is provisioned with ceil(ranks/3) nodes per
// site so that any single-site outage leaves enough capacity.
//
// Output is a JSON array (stdout), one object per (app, factor,
// outage-time) cell with the pre-fault / degraded / post-remap
// alpha-beta costs and the one-time migration bill.
//
// --detector switches to the closed-loop head-to-head: the app actually
// *executes* on the virtual-time runtime under the fault plan, the
// degradation detector scans the per-link telemetry the run recorded
// (never the plan), remap_on_detection recovers from what was detected,
// and the oracle remap_on_outage recovers from the ground truth. Output
// becomes {"cells": [...]} with per-cell detection quality
// (precision/recall/latency vs the plan's truth windows) and the
// oracle-recovery fraction — how much of the oracle's cost improvement
// the detector-driven remap achieved.
//
// --migrate carries each oracle remap *out* with the migration executor:
// every relocated process runs the prepare/copy/commit protocol as real
// chunked flows on the degraded network, contending with the app's own
// replayed traffic. Cells report downtime, makespan-with-migration and
// rollback/replan counts, and every run's protocol journal is certified
// by the invariant checker (any violation fails the bench). The executor
// is deterministic, so this mode is the regression baseline for the
// migration path.
//
// --chaos N runs the full observe → detect → remap → migrate soak over N
// seeded random fault plans (src/migrate/soak.h) and exits 1 on any
// invariant violation. Statistical (threaded runtime), so it is a safety
// net, not a baseline. With --wal-dir D each case's decision + protocol
// journal is additionally archived through the control-plane WAL
// (fsync-disciplined append, then a full read-back + decode), and the
// JSON reports the archival/replay timings plus a round-trip bit — the
// chaos gate's smoke check that WAL encoding keeps up with the richest
// journals the executor produces.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/json_writer.h"
#include "common/timer.h"
#include "recover/records.h"
#include "recover/wal.h"
#include "core/remap.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "migrate/executor.h"
#include "migrate/soak.h"
#include "obs/detector.h"

using namespace geomap;

namespace {

/// Site hosting the most processes — losing it is the worst case.
SiteId busiest_site(const Mapping& mapping, int num_sites) {
  std::vector<int> load(static_cast<std::size_t>(num_sites), 0);
  for (const SiteId s : mapping) load[static_cast<std::size_t>(s)] += 1;
  SiteId best = 0;
  for (SiteId s = 1; s < num_sites; ++s) {
    if (load[static_cast<std::size_t>(s)] > load[static_cast<std::size_t>(best)])
      best = s;
  }
  return best;
}

/// Fold every series a cell's private collector recorded into the shared
/// export collector, so the --obs-dir timeline artifact carries one
/// representative cell's telemetry (full keys round-trip as the name).
void fold_timeline(const obs::TimeSeriesRegistry& from,
                   obs::TimeSeriesRegistry& into) {
  for (const std::string& key : from.keys()) {
    const obs::TimeSeries* series = from.find(key);
    obs::TimeSeries& out = into.series(key);
    for (const obs::TimePoint& p : series->points()) out.record(p.t, p.value);
  }
}

int run_detector_mode(const CliParser& cli, bench::ObsSink& obs) {
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 2) / 3);

  // The brownout factor and the outage instants as fractions of each
  // app's healthy runtime makespan (absolute times like the oracle
  // sweep's 120 s would overshoot short virtual runs entirely).
  const double factor = 0.25;
  const std::vector<double> outage_fractions = {0.35, 0.65};

  core::RemapOptions options;
  options.bytes_per_process = cli.get_double("state-mib") * kMiB;
  options.collector = obs.collector();

  JsonWriter w(std::cout);
  w.begin_object();
  w.key("cells").begin_array();
  bool exported_cell = false;
  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"), rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    core::GeoDistOptions geo_options;
    geo_options.collector = obs.collector();
    const Mapping current = core::GeoDistMapper(geo_options).map(problem);
    const SiteId failed = busiest_site(current, problem.num_sites());

    // Healthy execution: calibrates the fault schedule to this app's
    // actual virtual duration.
    runtime::Runtime healthy_rt(ctx.calib.model, current);
    const Seconds healthy_makespan =
        healthy_rt.run([&](runtime::Comm& c) { (void)app->run(c, cfg); })
            .makespan;

    for (const double fraction : outage_fractions) {
      const Seconds t_out = fraction * healthy_makespan;
      // The brownout persists past the death: the remap-time snapshot
      // stays degraded, so both recovery policies have a real cost gain
      // to claw back (a brownout that expired exactly at t_out would make
      // the oracle's snapshot healthy and its "gain" vacuous).
      fault::FaultPlan plan(seed);
      plan.add_site_degradation(failed, 0.0, fault::kNoEnd, factor);
      plan.add_site_outage(failed, t_out);

      // The observed execution: the app rides through brownout, retry
      // storms and forced-through timeouts; every inter-site transfer
      // leaves a point on the cell's private timeline.
      obs::Collector cell_obs;
      runtime::Runtime rt(ctx.calib.model, current);
      rt.set_fault_plan(&plan);
      rt.set_collector(&cell_obs);
      const runtime::RunResult faulted =
          rt.run([&](runtime::Comm& c) { (void)app->run(c, cfg); });

      // Detection sees telemetry only; scoring sees the plan. Onset /
      // clear verdicts stream to the exported event log when one was
      // asked for (the cell's private collector is discarded).
      obs::DegradationDetector detector;
      if (obs.collector() != nullptr)
        detector.set_event_log(&obs.collector()->events());
      detector.scan(cell_obs.timeline());
      const std::vector<obs::DegradationEvent> events = detector.events();

      obs::DetectionScoreOptions score_options;
      for (const std::string& key : cell_obs.timeline().keys()) {
        const std::size_t brace = key.find('{');
        if (brace == std::string::npos ||
            key.compare(0, brace, "link.latency_ratio") != 0) {
          continue;
        }
        int src = -1, dst = -1;
        if (obs::parse_link_label(key.substr(brace + 1, key.size() - brace - 2),
                                  &src, &dst)) {
          score_options.observable_links.emplace_back(src, dst);
        }
      }
      const std::vector<obs::TruthWindow> truth =
          plan.truth_windows(problem.num_sites());
      const obs::DetectionScore score =
          obs::score_detections(events, truth, score_options);

      const core::RemapResult oracle =
          core::remap_on_outage(problem, current, plan, failed, t_out, options);

      bool detected = false;
      core::DetectionRemapResult det;
      try {
        det = core::remap_on_detection(problem, current, events, plan, options);
        detected = true;
      } catch (const InvalidArgument&) {
        // No actionable down event — the detector missed the outage; the
        // cell reports detection quality with no recovery fields.
      }

      if (!exported_cell && obs.collector() != nullptr) {
        // The exported timeline artifact carries the first cell's
        // telemetry with its detection overlay and score.
        exported_cell = true;
        fold_timeline(cell_obs.timeline(), obs.collector()->timeline());
        obs.collector()->detections().add_events(events);
        obs.collector()->detections().add_truth(truth);
        obs.collector()->detections().set_score(score);
      }

      w.begin_object();
      w.field("app", app->name());
      w.field("ranks", ranks);
      w.field("failed_site", failed);
      w.field("degradation_factor", factor);
      w.field("outage_fraction", fraction);
      w.field("outage_time", t_out);
      w.field("healthy_makespan", healthy_makespan);
      w.field("faulted_makespan", faulted.makespan);
      w.field("runtime_retries", faulted.total_retries);
      w.field("runtime_timeouts", faulted.total_timeouts);
      w.field("events", static_cast<std::int64_t>(events.size()));
      w.key("detection").begin_object();
      w.field("precision", score.precision);
      w.field("recall", score.recall);
      w.field("mean_detection_latency", score.mean_detection_latency);
      w.field("true_positive_events", score.true_positive_events);
      w.field("false_positive_events", score.false_positive_events);
      w.field("detected_windows", score.detected_windows);
      w.field("missed_windows", score.missed_windows);
      w.end_object();
      w.field("detected", detected);
      if (detected) {
        w.field("suspected_site", det.suspected_site);
        w.field("suspected_correct", det.suspected_site == failed);
        w.field("detection_time", det.detection_time);
        w.field("oracle_degraded_cost", oracle.degraded_cost);
        w.field("oracle_post_remap_cost", oracle.post_remap_cost);
        w.field("detection_post_remap_cost", det.remap.post_remap_cost);
        w.field("oracle_post_remap_makespan", oracle.post_remap_makespan);
        w.field("detection_post_remap_makespan",
                det.remap.post_remap_makespan);
        const double oracle_gain =
            oracle.degraded_cost - oracle.post_remap_cost;
        const double detection_gain =
            det.remap.degraded_cost - det.remap.post_remap_cost;
        w.field("oracle_gain", oracle_gain);
        w.field("detection_gain", detection_gain);
        w.field("oracle_recovery_fraction",
                oracle_gain > 0 ? detection_gain / oracle_gain : 1.0);
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  w.done();
  std::cout << "\n";
  return 0;
}

int run_migrate_mode(const CliParser& cli, bench::ObsSink& obs) {
  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 2) / 3);

  const double factor = 0.25;
  const std::vector<Seconds> outage_times = {5.0, 30.0};

  core::RemapOptions options;
  options.bytes_per_process = cli.get_double("state-mib") * kMiB;
  options.collector = obs.collector();

  int violations_total = 0;
  bool exported_cell = false;
  JsonWriter w(std::cout);
  w.begin_object();
  w.key("cells").begin_array();
  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"), rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    core::GeoDistOptions geo_options;
    geo_options.collector = obs.collector();
    const Mapping current = core::GeoDistMapper(geo_options).map(problem);
    const SiteId failed = busiest_site(current, problem.num_sites());

    for (const Seconds t_out : outage_times) {
      fault::FaultPlan plan(seed);
      plan.add_site_degradation(failed, 0.0, fault::kNoEnd, factor);
      plan.add_site_outage(failed, t_out);

      const core::RemapResult r =
          core::remap_on_outage(problem, current, plan, failed, t_out, options);

      migrate::MigrationOptions mopts;
      mopts.bytes_per_process = options.bytes_per_process;
      // The timeline artifact carries the first cell's migration lanes;
      // the collector never changes the (deterministic) report.
      mopts.collector = exported_cell ? nullptr : obs.collector();
      exported_cell = true;
      const migrate::MigrationReport report = migrate::execute_migration(
          problem, current, r.mapping, plan, t_out, mopts);

      fault::MigrationInvariantOptions inv;
      inv.planned_bytes_per_process = mopts.bytes_per_process;
      inv.chunk_bytes = mopts.chunk_bytes;
      inv.max_retries = mopts.retry.max_retries;
      inv.max_copy_attempts = mopts.max_copy_attempts + mopts.max_replans +
                              mopts.max_emergency_attempts;
      inv.horizon = report.finish_time;
      const std::vector<fault::InvariantViolation> violations =
          fault::check_migration_invariants(report.events, current,
                                            problem.capacities, plan, inv);
      for (const fault::InvariantViolation& v : violations) {
        std::cerr << "INVARIANT VIOLATION (" << app->name() << ", t_out "
                  << t_out << "): t=" << v.t << " " << v.message << "\n";
      }
      violations_total += static_cast<int>(violations.size());

      w.begin_object();
      w.field("app", app->name());
      w.field("ranks", ranks);
      w.field("failed_site", failed);
      w.field("outage_time", t_out);
      w.field("degradation_factor", factor);
      w.field("processes_planned", report.processes_planned);
      w.field("processes_committed", report.processes_committed);
      w.field("processes_rolled_back", report.processes_rolled_back);
      w.field("processes_abandoned", report.processes_abandoned);
      w.field("rollbacks", report.rollbacks);
      w.field("replans", report.replans);
      w.field("chunk_retries", report.chunk_retries);
      w.field("chunk_timeouts", report.chunk_timeouts);
      w.field("bytes_planned", report.bytes_planned);
      w.field("bytes_sent", report.bytes_sent);
      w.field("migration_seconds", report.migration_seconds);
      w.field("app_makespan", report.app_makespan);
      w.field("app_blocked_seconds", report.app_blocked_seconds);
      w.field("max_downtime", report.max_downtime);
      w.field("total_downtime", report.total_downtime);
      w.field("complete", report.complete);
      w.field("violations", static_cast<std::int64_t>(violations.size()));
      w.end_object();
    }
  }
  w.end_array();
  w.field("total_violations", violations_total);
  w.end_object();
  w.done();
  std::cout << "\n";
  return violations_total == 0 ? 0 : 1;
}

// One chaos case's journal pushed through the control-plane WAL and read
// back: how long the fsync-disciplined append takes on a real protocol
// journal, how long replay takes, and whether every record survives the
// encode → CRC → decode round trip.
struct WalArchive {
  std::int64_t records = 0;
  double append_ms = 0;
  double replay_ms = 0;
  bool roundtrip_ok = false;
};

recover::WalRecordType mig_type(fault::MigrationEventKind kind) {
  using T = recover::WalRecordType;
  switch (kind) {
    case fault::MigrationEventKind::kReserve: return T::kMigReserve;
    case fault::MigrationEventKind::kRelease: return T::kMigRelease;
    case fault::MigrationEventKind::kChunk: return T::kMigChunk;
    case fault::MigrationEventKind::kCommit: return T::kMigCommit;
    case fault::MigrationEventKind::kRollback: return T::kMigRollback;
    case fault::MigrationEventKind::kReplan: return T::kMigReplan;
  }
  return T::kMigReserve;
}

WalArchive archive_case_wal(const std::string& dir,
                            const migrate::SoakCase& c) {
  WalArchive a;
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  Timer append_timer;
  {
    recover::Wal wal(dir);
    recover::RunBeginRecord run;
    run.seed = c.seed;
    run.tenants = 1;
    run.sites = 0;
    run.policy = "chaos";
    wal.append(recover::WalRecordType::kRunBegin, 0,
               recover::encode_run_begin(run));
    recover::DetectDecisionRecord d;
    d.detected = c.detected;
    d.suspected_correct = c.suspected_correct;
    d.suspect = c.primary_site;
    d.failed_site = c.primary_site;
    d.outage_time = c.outage_time;
    d.detect_time = c.remap_time;
    wal.append(recover::WalRecordType::kDetectDecision, c.remap_time,
               recover::encode_detect_decision(d));
    Seconds last = c.remap_time;
    for (const fault::MigrationEvent& e : c.report.events) {
      recover::MigRecord m;
      m.tenant = 0;
      m.event = e;
      wal.append(mig_type(e.kind), e.t, recover::encode_mig(m));
      last = std::max(last, e.t);
    }
    wal.append(recover::WalRecordType::kRunEnd, last, "{}");
    wal.sync();
    a.records = static_cast<std::int64_t>(wal.appended());
  }
  a.append_ms = append_timer.elapsed_ms();

  Timer replay_timer;
  bool decoded = true;
  std::size_t migs = 0;
  recover::WalRecovery rec;
  try {
    rec = recover::read_wal(dir);
    for (const recover::WalRecord& r : rec.records) {
      switch (r.type) {
        case recover::WalRecordType::kRunBegin:
          recover::decode_run_begin(r.payload);
          break;
        case recover::WalRecordType::kDetectDecision:
          recover::decode_detect_decision(r.payload);
          break;
        case recover::WalRecordType::kRunEnd:
          break;
        default:
          recover::decode_mig(r.type, r.payload);
          migs += 1;
          break;
      }
    }
  } catch (const recover::WalCorrupt&) {
    decoded = false;
  }
  a.replay_ms = replay_timer.elapsed_ms();
  a.roundtrip_ok = decoded && rec.dropped_torn == 0 &&
                   rec.records.size() == static_cast<std::size_t>(a.records) &&
                   migs == c.report.events.size();
  return a;
}

int run_chaos_mode(const CliParser& cli, bench::ObsSink& obs) {
  const int num_seeds = static_cast<int>(cli.get_int("chaos"));
  migrate::SoakOptions opts;
  opts.ranks = static_cast<int>(cli.get_int("soak-ranks"));
  opts.app_rounds = static_cast<int>(cli.get_int("soak-rounds"));
  opts.collector = obs.collector();

  // Per-seed loop (not one run_chaos_soak call) so a live obs-dir
  // checkpoints after every case — incidents.json and events.jsonl grow
  // case by case under `obsctl watch`.
  migrate::SoakReport report;
  const std::string wal_root = cli.get_string("wal-dir");
  std::vector<WalArchive> archives;
  const auto base = static_cast<std::uint64_t>(cli.get_int("seed"));
  for (int i = 0; i < num_seeds; ++i) {
    const std::vector<std::uint64_t> one = {
        base + static_cast<std::uint64_t>(i)};
    const migrate::SoakReport step = migrate::run_chaos_soak(one, opts);
    if (!wal_root.empty()) {
      archives.push_back(archive_case_wal(
          wal_root + "/seed-" + std::to_string(one.front()),
          step.cases.front()));
    }
    report.cases.push_back(step.cases.front());
    report.total_violations += step.total_violations;
    report.detected_cases += step.detected_cases;
    report.fallback_cases += step.fallback_cases;
    report.total_committed += step.total_committed;
    report.total_rollbacks += step.total_rollbacks;
    report.total_replans += step.total_replans;
    report.total_abandoned += step.total_abandoned;
    report.attribution.merge(step.attribution);
    obs.checkpoint();
  }

  JsonWriter w(std::cout);
  w.begin_object();
  w.field("seeds", num_seeds);
  w.field("ranks", opts.ranks);
  w.key("cases").begin_array();
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const migrate::SoakCase& c = report.cases[i];
    w.begin_object();
    w.field("seed", static_cast<std::int64_t>(c.seed));
    w.field("primary_site", c.primary_site);
    w.field("outage_time", c.outage_time);
    w.field("detected", c.detected);
    w.field("suspected_correct", c.suspected_correct);
    w.field("remap_time", c.remap_time);
    w.field("committed", c.report.processes_committed);
    w.field("rollbacks", c.report.rollbacks);
    w.field("replans", c.report.replans);
    w.field("abandoned", c.report.processes_abandoned);
    w.field("violations", static_cast<std::int64_t>(c.violations.size()));
    if (i < archives.size()) {
      const WalArchive& a = archives[i];
      w.field("wal_records", a.records);
      w.field("wal_append_ms", bench::masked_ms(a.append_ms));
      w.field("wal_replay_ms", bench::masked_ms(a.replay_ms));
      w.field("wal_roundtrip_ok", a.roundtrip_ok);
    }
    w.end_object();
    for (const fault::InvariantViolation& v : c.violations) {
      std::cerr << "INVARIANT VIOLATION (seed " << c.seed << "): t=" << v.t
                << " " << v.message << "\n";
    }
  }
  w.end_array();
  w.field("detected_cases", report.detected_cases);
  w.field("fallback_cases", report.fallback_cases);
  w.field("total_committed", report.total_committed);
  w.field("total_rollbacks", report.total_rollbacks);
  w.field("total_replans", report.total_replans);
  w.field("total_abandoned", report.total_abandoned);
  w.field("total_violations", report.total_violations);
  if (obs.collector() != nullptr) {
    // Blame quality vs the seeded truth — only measured when the
    // incident engine ran (it needs the event stream).
    w.key("attribution").begin_object();
    w.field("incidents",
            static_cast<std::int64_t>(report.attribution.incidents));
    w.field("precision", report.attribution.precision());
    w.field("recall", report.attribution.recall());
    w.field("mean_onset_error", report.attribution.mean_onset_error());
    w.end_object();
  }
  std::int64_t wal_failures = 0;
  if (!archives.empty()) {
    std::int64_t records = 0;
    double append_ms = 0;
    double replay_ms = 0;
    for (const WalArchive& a : archives) {
      records += a.records;
      append_ms += a.append_ms;
      replay_ms += a.replay_ms;
      if (!a.roundtrip_ok) wal_failures += 1;
    }
    w.key("wal").begin_object();
    w.field("dir", wal_root);
    w.field("records", records);
    w.field("append_ms", bench::masked_ms(append_ms));
    w.field("replay_ms", bench::masked_ms(replay_ms));
    w.field("roundtrip_failures", wal_failures);
    w.end_object();
  }
  // Machine-checked summary: CI asserts these, not just parseability.
  w.field("seeds_run", static_cast<std::int64_t>(report.cases.size()));
  w.field("invariants_checked", static_cast<std::int64_t>(report.cases.size()));
  w.field("violations", report.total_violations);
  const bool ok = report.ok() && wal_failures == 0;
  w.field("ok", ok);
  w.end_object();
  w.done();
  std::cout << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Fault recovery: outage/degradation sweep with remapping");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_double("state-mib", 64.0, "migrated state per process (MiB)");
  cli.add_bool("detector", false,
               "closed-loop mode: execute under the fault plan, detect "
               "degradation from telemetry, and compare detection-driven "
               "remapping against the oracle");
  cli.add_bool("migrate", false,
               "carry out each oracle remap with the migration executor "
               "(deterministic; certifies every protocol journal and "
               "exits 1 on any invariant violation)");
  cli.add_int("chaos", 0,
              "run the full detect/remap/migrate chaos soak over this "
              "many seeds and exit 1 on any invariant violation");
  cli.add_int("soak-ranks", 10, "processes per chaos-soak case");
  cli.add_int("soak-rounds", 16, "app rounds per chaos-soak case");
  cli.add_string("wal-dir", "",
                 "(chaos mode) archive each case's journal through the "
                 "control-plane WAL under this directory and report the "
                 "append/replay timings");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);
  if (cli.get_bool("detector")) return run_detector_mode(cli, obs);
  if (cli.get_bool("migrate")) return run_migrate_mode(cli, obs);
  if (cli.get_int("chaos") > 0) return run_chaos_mode(cli, obs);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // Headroom: survivors of a single-site outage must still fit `ranks`.
  const bench::Ec2Context ctx((ranks + 2) / 3);

  const std::vector<double> factors = {0.5, 0.25, 0.1};
  const std::vector<Seconds> outage_times = {5.0, 30.0, 120.0};

  core::RemapOptions options;
  options.bytes_per_process = cli.get_double("state-mib") * kMiB;
  options.collector = obs.collector();

  JsonWriter w(std::cout);
  w.begin_array();
  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"), rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    core::GeoDistOptions geo_options;
    geo_options.collector = obs.collector();
    const Mapping current = core::GeoDistMapper(geo_options).map(problem);
    const SiteId failed = busiest_site(current, problem.num_sites());

    for (const double factor : factors) {
      for (const Seconds t_out : outage_times) {
        fault::FaultPlan plan(seed);
        plan.add_site_degradation(failed, 0.0, fault::kNoEnd, factor);
        if (t_out > 60.0) {  // the brownout deepens before the failure
          plan.add_site_degradation(failed, 60.0, fault::kNoEnd, factor);
        }
        plan.add_site_outage(failed, t_out);

        const core::RemapResult r =
            core::remap_on_outage(problem, current, plan, failed, t_out,
                                  options);

        w.begin_object();
        w.field("app", app->name());
        w.field("ranks", ranks);
        w.field("failed_site", failed);
        w.field("outage_time", t_out);
        w.field("degradation_factor", factor);
        w.field("pre_fault_cost", r.pre_fault_cost);
        w.field("degraded_cost", r.degraded_cost);
        w.field("post_remap_cost", r.post_remap_cost);
        w.field("pre_fault_makespan", r.pre_fault_makespan);
        w.field("post_remap_makespan", r.post_remap_makespan);
        w.field("migration_seconds", r.migration_seconds);
        w.field("bytes_moved", r.bytes_moved);
        w.field("processes_moved", r.processes_moved);
        w.field("recovered_percent",
                r.degraded_cost > 0
                    ? 100.0 * (r.degraded_cost - r.post_remap_cost) /
                          r.degraded_cost
                    : 0.0);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.done();
  std::cout << "\n";
  return 0;
}
