// Fault-recovery sweep: how expensive is losing a site, and how much of
// that cost does remapping claw back?
//
// For each app the geo-distributed mapping is computed on the healthy
// 4-region EC2 deployment, then a fault scenario is injected: the
// busiest site browns out (its links degrade by --factor at t=0 and by
// --factor again at t=60) and finally fails at the swept outage time.
// remap_on_outage() rebuilds the instance and reruns the mapper over the
// survivors. The deployment is provisioned with ceil(ranks/3) nodes per
// site so that any single-site outage leaves enough capacity.
//
// Output is a JSON array (stdout), one object per (app, factor,
// outage-time) cell with the pre-fault / degraded / post-remap
// alpha-beta costs and the one-time migration bill.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/json_writer.h"
#include "core/remap.h"
#include "fault/fault_plan.h"

using namespace geomap;

namespace {

/// Site hosting the most processes — losing it is the worst case.
SiteId busiest_site(const Mapping& mapping, int num_sites) {
  std::vector<int> load(static_cast<std::size_t>(num_sites), 0);
  for (const SiteId s : mapping) load[static_cast<std::size_t>(s)] += 1;
  SiteId best = 0;
  for (SiteId s = 1; s < num_sites; ++s) {
    if (load[static_cast<std::size_t>(s)] > load[static_cast<std::size_t>(best)])
      best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Fault recovery: outage/degradation sweep with remapping");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_double("state-mib", 64.0, "migrated state per process (MiB)");
  bench::add_obs_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // Headroom: survivors of a single-site outage must still fit `ranks`.
  const bench::Ec2Context ctx((ranks + 2) / 3);

  const std::vector<double> factors = {0.5, 0.25, 0.1};
  const std::vector<Seconds> outage_times = {5.0, 30.0, 120.0};

  core::RemapOptions options;
  options.bytes_per_process = cli.get_double("state-mib") * kMiB;
  options.collector = obs.collector();

  JsonWriter w(std::cout);
  w.begin_array();
  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"), rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    core::GeoDistOptions geo_options;
    geo_options.collector = obs.collector();
    const Mapping current = core::GeoDistMapper(geo_options).map(problem);
    const SiteId failed = busiest_site(current, problem.num_sites());

    for (const double factor : factors) {
      for (const Seconds t_out : outage_times) {
        fault::FaultPlan plan(seed);
        plan.add_site_degradation(failed, 0.0, fault::kNoEnd, factor);
        if (t_out > 60.0) {  // the brownout deepens before the failure
          plan.add_site_degradation(failed, 60.0, fault::kNoEnd, factor);
        }
        plan.add_site_outage(failed, t_out);

        const core::RemapResult r =
            core::remap_on_outage(problem, current, plan, failed, t_out,
                                  options);

        w.begin_object();
        w.field("app", app->name());
        w.field("ranks", ranks);
        w.field("failed_site", failed);
        w.field("outage_time", t_out);
        w.field("degradation_factor", factor);
        w.field("pre_fault_cost", r.pre_fault_cost);
        w.field("degraded_cost", r.degraded_cost);
        w.field("post_remap_cost", r.post_remap_cost);
        w.field("pre_fault_makespan", r.pre_fault_makespan);
        w.field("post_remap_makespan", r.post_remap_makespan);
        w.field("migration_seconds", r.migration_seconds);
        w.field("bytes_moved", r.bytes_moved);
        w.field("processes_moved", r.processes_moved);
        w.field("recovered_percent",
                r.degraded_cost > 0
                    ? 100.0 * (r.degraded_cost - r.post_remap_cost) /
                          r.degraded_cost
                    : 0.0);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.done();
  std::cout << "\n";
  return 0;
}
