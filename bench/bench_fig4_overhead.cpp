// Paper Figure 4: optimization overhead of Greedy / MPIPP /
// Geo-distributed at different scales ("#sites/#processes" = 1/32, 2/64,
// 4/64, 4/128, 4/256), normalized to Baseline (random mapping). Expected
// shape: MPIPP orders of magnitude above the others and growing fastest;
// Geo-distributed ~Greedy at small site counts; Geo == Greedy at one
// site.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"

using namespace geomap;

namespace {

double time_mapper(mapping::Mapper& mapper,
                   const mapping::MappingProblem& problem, int reps) {
  // Warm-up once, then average.
  (void)mapper.map(problem);
  Timer timer;
  for (int r = 0; r < reps; ++r) (void)mapper.map(problem);
  return timer.elapsed_seconds() / reps;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Figure 4: optimization overhead vs scale");
  cli.add_int("reps", 3, "timing repetitions per algorithm");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int reps = static_cast<int>(cli.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  struct Scale {
    int sites;
    int processes;
  };
  const Scale scales[] = {{1, 32}, {2, 64}, {4, 64}, {4, 128}, {4, 256}};

  print_banner(std::cout,
               "Figure 4 — optimization overhead normalized to Baseline");
  Table table({"sites/processes", "Baseline (ms)", "Greedy (x)", "MPIPP (x)",
               "Geo-distributed (x)"});

  for (const Scale& s : scales) {
    const net::CloudTopology topo(
        net::synthetic_profile(s.sites, s.processes / s.sites, seed));
    const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
    // K-means' complex pattern exercises every algorithm's full search.
    const apps::App& app = apps::app_by_name("K-means");
    mapping::MappingProblem problem;
    problem.comm =
        app.synthetic_pattern(s.processes, app.default_config(s.processes));
    problem.network = model;
    problem.capacities = topo.capacities();
    problem.site_coords = topo.coordinates();
    problem.validate();

    mapping::RandomMapper baseline(seed);
    mapping::GreedyMapper greedy;
    mapping::MpippMapper mpipp;
    // Note: an attached collector audits every timed map() call, so the
    // reported Geo overhead then includes the observability tax.
    core::GeoDistOptions geo_options;
    geo_options.collector = obs.collector();
    core::GeoDistMapper geo(geo_options);

    const double t_base = time_mapper(baseline, problem, reps);
    const double t_greedy = time_mapper(greedy, problem, reps);
    const double t_mpipp = time_mapper(mpipp, problem, reps);
    const double t_geo = time_mapper(geo, problem, reps);

    table.row()
        .cell(std::to_string(s.sites) + "/" + std::to_string(s.processes))
        .cell(t_base * 1e3, 3)
        .cell(t_greedy / t_base, 1)
        .cell(t_mpipp / t_base, 1)
        .cell(t_geo / t_base, 1);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: MPIPP >> Greedy ~ Geo-distributed; Geo == "
               "Greedy-order overhead at 1 site; MPIPP grows\nsuper-linearly "
               "with processes. Absolute Geo overhead stays well under the "
               "paper's 1-minute bound at 4/64.\n";
  return 0;
}
