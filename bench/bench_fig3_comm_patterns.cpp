// Paper Figure 3: communication pattern matrices of the five
// applications at 64 processes, from actual profiled executions on the
// minimpi runtime. Rendered as ASCII heatmaps (darker character = heavier
// traffic) plus the structural statistics the paper highlights: the NPB
// trio's near-diagonal locality with two LU message sizes, K-means'
// complex pattern, and DNN's small total volume.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

namespace {

void print_heatmap(const trace::CommMatrix& m, int bucket_count) {
  // Downsample the N x N volume matrix into bucket_count^2 cells.
  const int n = m.num_processes();
  const int bucket = std::max(1, n / bucket_count);
  std::vector<double> cells(static_cast<std::size_t>(bucket_count) *
                            bucket_count, 0.0);
  double max_cell = 0;
  for (const trace::CommEdge& e : m.edges()) {
    const int bi = std::min(e.src / bucket, bucket_count - 1);
    const int bj = std::min(e.dst / bucket, bucket_count - 1);
    auto& cell = cells[static_cast<std::size_t>(bi) * bucket_count + bj];
    cell += e.volume;
    max_cell = std::max(max_cell, cell);
  }
  const char* shades = " .:-=+*#%@";
  for (int i = 0; i < bucket_count; ++i) {
    std::cout << "    ";
    for (int j = 0; j < bucket_count; ++j) {
      const double v =
          cells[static_cast<std::size_t>(i) * bucket_count + j];
      // Log scale so the light collective trees stay visible next to the
      // heavy halo edges.
      const int shade =
          v <= 0 ? 0
                 : 1 + static_cast<int>(8.0 * std::log1p(v) /
                                        std::log1p(max_cell));
      std::cout << shades[std::min(shade, 9)];
    }
    std::cout << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Figure 3: communication pattern matrices (profiled @64)");
  cli.add_int("ranks", 64, "number of processes to profile");
  cli.add_int("heatmap-size", 32, "heatmap buckets per axis");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout, "Figure 3 — communication pattern matrices");
  Table stats({"app", "nnz pairs", "total MiB", "msgs", "diag volume %",
               "avg msg KB"});

  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    const trace::CommMatrix m = bench::profile_app(*app, cfg, ctx.calib.model);

    const apps::ProcessGrid grid = apps::make_process_grid(ranks);
    Bytes neighbour = 0, total = 0;
    for (const trace::CommEdge& e : m.edges()) {
      const int dx = std::abs(grid.x(e.src) - grid.x(e.dst));
      const int dy = std::abs(grid.y(e.src) - grid.y(e.dst));
      if (dx + dy == 1) neighbour += e.volume;
      total += e.volume;
    }
    stats.row()
        .cell(app->name())
        .cell(static_cast<long long>(m.nnz()))
        .cell(m.total_volume() / kMiB, 2)
        .cell(static_cast<long long>(m.total_messages()))
        .cell(total > 0 ? 100.0 * neighbour / total : 0.0, 1)
        .cell(m.total_volume() / std::max(1.0, m.total_messages()) / 1024, 1);

    std::cout << "\n  " << app->name() << " (" << ranks << " processes):\n";
    print_heatmap(m, static_cast<int>(cli.get_int("heatmap-size")));
  }
  std::cout << '\n';
  stats.print(std::cout);
  std::cout << "\nPaper shapes: BT/SP/LU near-diagonal (grid-neighbour "
               "volume dominates); LU has exactly two message\nsizes (43/83 "
               "KB); K-means complex (off-diagonal dominates); DNN tiny "
               "total volume.\n";
  return 0;
}
