// Paper Table 1: average network bandwidths (MB/s) of five EC2 instance
// types within US East, within Singapore, and between the two regions —
// the measurement behind Observation 1 (intra >> cross). Each cell is a
// calibrated (simulated-pingpong) measurement, printed next to the
// paper's published value.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "net/instance.h"

using namespace geomap;

namespace {

struct PaperRow {
  const char* type;
  double us_east, singapore, cross;
};

// Verbatim values from paper Table 1.
constexpr PaperRow kPaperTable1[] = {
    {"m1.small", 15, 22, 5.4},   {"m1.medium", 80, 78, 6.3},
    {"m1.large", 84, 82, 6.3},   {"m1.xlarge", 102, 103, 6.4},
    {"c3.8xlarge", 148, 204, 6.6},
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Table 1: instance-type bandwidths (measured vs paper)");
  cli.add_bool("csv", false, "emit CSV instead of the aligned table");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  print_banner(std::cout, "Table 1 — EC2 instance-type bandwidths (MB/s)");
  Table table({"instance", "US East", "Singapore", "cross-region",
               "paper: US East", "paper: Singapore", "paper: cross"});

  for (const PaperRow& row : kPaperTable1) {
    const net::CloudTopology topo(net::aws2016_profile(row.type, 2));
    const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
    SiteId us_east = -1, singapore = -1;
    for (SiteId s = 0; s < topo.num_sites(); ++s) {
      if (topo.site(s).name.rfind("us-east-1", 0) == 0) us_east = s;
      if (topo.site(s).name.rfind("ap-southeast-1", 0) == 0) singapore = s;
    }
    table.row()
        .cell(row.type)
        .cell(calib.model.bandwidth(us_east, us_east) / 1e6, 1)
        .cell(calib.model.bandwidth(singapore, singapore) / 1e6, 1)
        .cell(calib.model.bandwidth(us_east, singapore) / 1e6, 1)
        .cell(row.us_east, 1)
        .cell(row.singapore, 1)
        .cell(row.cross, 1);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nShape checks: intra-region >> cross-region for every "
               "instance type (Observation 1);\ncross-region bandwidth "
               "nearly flat across instance types (WAN-bound).\n";
  return 0;
}
