// Capture-once / replay-many mapping evaluation. The virtual-time
// runtime re-executes the application (threads, real numerics) for every
// mapping it scores; the deterministic replay engine re-evaluates one
// captured operation trace in milliseconds per mapping with the same
// execution-level fidelity (dependencies, pipelining, WAN contention).
// This bench measures the speedup and shows both engines rank the
// paper's algorithms identically.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"
#include "sim/replay.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("replay engine: capture once, evaluate mappings many times");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("random-mappings", 200, "random mappings scored via replay");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(ranks);

  // Capture the op trace (and the CG/AG profile) in one execution.
  trace::OpTraceLog ops(ranks);
  trace::ApplicationProfile profile(ranks);
  Timer capture_timer;
  {
    Mapping trivial(static_cast<std::size_t>(ranks), 0);
    runtime::Runtime rt(ctx.calib.model, trivial, ctx.topo.instance().gflops,
                        &profile);
    rt.capture_ops(&ops);
    rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); });
  }
  const double capture_s = capture_timer.elapsed_seconds();

  const mapping::MappingProblem problem = core::make_problem(
      ctx.topo, ctx.calib.model, profile.build_comm_matrix());

  // Engine agreement on the paper's algorithms.
  print_banner(std::cout, "Engine agreement — LU makespan (s) per mapping");
  Table agree({"mapping", "runtime (re-executes)", "replay (trace)",
               "runtime cost (s)", "replay cost (s)"});
  const bench::AlgorithmSet algos = bench::paper_algorithms(ranks, 1000, obs.collector());
  Rng rng(seed);
  std::vector<std::pair<std::string, Mapping>> candidates;
  candidates.emplace_back("Baseline (random)",
                          mapping::RandomMapper::draw(problem, rng));
  for (mapping::Mapper* mapper : algos.all())
    candidates.emplace_back(mapper->name(), mapper->map(problem));

  for (const auto& [name, m] : candidates) {
    Timer rt_timer;
    runtime::Runtime rt(ctx.calib.model, m, ctx.topo.instance().gflops);
    const double executed =
        rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); }).makespan;
    const double rt_cost = rt_timer.elapsed_seconds();
    Timer rp_timer;
    const double replayed =
        sim::replay_ops(ops, ctx.calib.model, m).makespan;
    const double rp_cost = rp_timer.elapsed_seconds();
    agree.row()
        .cell(name)
        .cell(executed, 3)
        .cell(replayed, 3)
        .cell(rt_cost, 3)
        .cell(rp_cost, 4);
  }
  bench::print_table(agree, cli.get_bool("csv"));

  // Bulk evaluation: score many random mappings from the one trace.
  const auto bulk = static_cast<int>(cli.get_int("random-mappings"));
  Timer bulk_timer;
  double best = 1e300, worst = 0;
  for (int i = 0; i < bulk; ++i) {
    const Mapping m = mapping::RandomMapper::draw(problem, rng);
    const double t = sim::replay_ops(ops, ctx.calib.model, m).makespan;
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  const double bulk_s = bulk_timer.elapsed_seconds();

  std::cout << "\nBulk evaluation: " << bulk << " random mappings in "
            << format_double(bulk_s, 2) << " s ("
            << format_double(bulk_s / bulk * 1e3, 2)
            << " ms each; capture itself took " << format_double(capture_s, 2)
            << " s, trace holds " << ops.total_ops()
            << " ops).\n   Random-mapping makespans span "
            << format_double(best, 2) << " .. " << format_double(worst, 2)
            << " s — the spread the optimizers exploit.\n";
  return 0;
}
