// Beyond the paper's five applications: the additional NPB-style kernels
// CG (irregular sparse halo), MG (multilevel + hub traffic to rank 0)
// and FT (dense all-to-all transposes), profiled on the runtime and
// mapped with the paper's comparison set. FT is the stress case: its
// uniform dense pattern leaves locality heuristics nothing to grab, so
// improvements collapse toward the traffic-balancing floor.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("extra workloads: CG / MG / FT under the paper's algorithms");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout,
               "Extra workloads — communication improvement over Baseline "
               "(%), profiled patterns");
  Table table({"app", "pattern", "nnz", "Greedy", "MPIPP",
               "Geo-distributed"});

  struct Row {
    const char* name;
    const char* klass;
  };
  for (const Row row : {Row{"CG", "irregular sparse halo"},
                        Row{"MG", "multilevel + hub"},
                        Row{"FT", "dense all-to-all"}}) {
    const apps::App& app = apps::app_by_name(row.name);
    apps::AppConfig cfg = app.default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(app, cfg, ctx.calib.model);
    const std::size_t nnz = comm.nnz();

    Rng rng(seed);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm),
        mapping::make_random_constraints(ranks, ctx.topo.capacities(),
                                         cli.get_double("constraint-ratio"),
                                         rng));
    const RunningStats base = bench::baseline_cost_stats(problem, 20, seed);
    const mapping::CostEvaluator eval(problem);
    const bench::AlgorithmSet algos = bench::paper_algorithms(ranks, 1000, obs.collector());

    std::vector<std::string> cells = {row.name, row.klass,
                                      std::to_string(nnz)};
    for (mapping::Mapper* mapper : algos.all()) {
      cells.push_back(format_double(
          mapping::improvement_percent(base.mean(),
                                       eval.total_cost(mapper->map(problem))),
          1));
    }
    table.add_row(std::move(cells));
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nReading: CG behaves between LU and K-means (halo locality "
               "plus an irregular tail); MG's hub traffic\nrewards placing "
               "rank 0's region well; FT's uniform all-to-all bounds every "
               "mapper near the same floor.\n";
  return 0;
}
