// google-benchmark micro benchmarks of the library's hot kernels: cost
// evaluation, incremental deltas, the two fill engines, k-means
// grouping, Monte Carlo draws and the contention replay.

#include <benchmark/benchmark.h>

#include "apps/app.h"
#include "common/rng.h"
#include "core/geodist_mapper.h"
#include "core/grouping.h"
#include "mapping/cost.h"
#include "mapping/random_mapper.h"
#include "net/cloud.h"
#include "net/loggp.h"
#include "net/network_model.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "sim/replay.h"

namespace geomap {
namespace {

mapping::MappingProblem problem_for(int n, const char* app_name) {
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const apps::App& app = apps::app_by_name(app_name);
  mapping::MappingProblem p;
  p.comm = app.synthetic_pattern(n, app.default_config(n));
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.validate();
  return p;
}

void BM_TotalCost(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const mapping::CostEvaluator eval(p);
  Rng rng(1);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.total_cost(m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.comm.nnz()));
}
BENCHMARK(BM_TotalCost)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeltaMove(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const mapping::CostEvaluator eval(p);
  Rng rng(2);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  ProcessId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.delta_move(m, i, (m[static_cast<std::size_t>(i)] + 1) % 4));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_DeltaMove)->Arg(64)->Arg(4096);

void BM_FillNaive(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const core::Grouping g = core::group_sites(p.site_coords, 4);
  std::vector<GroupId> order;
  for (int i = 0; i < g.num_groups; ++i) order.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fill_for_order(
        p, g, order, core::GeoDistOptions::FillEngine::kNaive));
  }
}
BENCHMARK(BM_FillNaive)->Arg(64)->Arg(512)->Arg(2048);

void BM_FillHeap(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const core::Grouping g = core::group_sites(p.site_coords, 4);
  std::vector<GroupId> order;
  for (int i = 0; i < g.num_groups; ++i) order.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fill_for_order(
        p, g, order, core::GeoDistOptions::FillEngine::kHeap));
  }
}
BENCHMARK(BM_FillHeap)->Arg(64)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GroupSites(benchmark::State& state) {
  const net::CloudTopology topo(
      net::synthetic_profile(static_cast<int>(state.range(0)), 4, 3));
  const auto coords = topo.coordinates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::group_sites(coords, 4));
  }
}
BENCHMARK(BM_GroupSites)->Arg(8)->Arg(64)->Arg(256);

void BM_MonteCarloDraw(benchmark::State& state) {
  const mapping::MappingProblem p = problem_for(64, "LU");
  const mapping::CostEvaluator eval(p);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.total_cost(mapping::RandomMapper::draw(p, rng)));
  }
}
BENCHMARK(BM_MonteCarloDraw);

void BM_OpTraceReplay(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(n);
  cfg.iterations = 4;
  trace::OpTraceLog ops(n);
  Mapping capture(static_cast<std::size_t>(n), 0);
  runtime::Runtime rt(model, capture, 45.0);
  rt.capture_ops(&ops);
  rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); });
  Mapping scattered(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) scattered[static_cast<std::size_t>(r)] = r % 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::replay_ops(ops, model, scattered));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.total_ops()));
}
BENCHMARK(BM_OpTraceReplay)->Arg(16)->Arg(64);

void BM_AllreduceVirtualTime(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  Mapping mapping(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    mapping[static_cast<std::size_t>(r)] = r / ((n + 3) / 4);
  runtime::Runtime rt(model, mapping);
  for (auto _ : state) {
    rt.run([](runtime::Comm& c) {
      std::vector<double> v(128, 1.0);
      c.allreduce(v, runtime::ReduceOp::kSum);
    });
  }
}
BENCHMARK(BM_AllreduceVirtualTime)->Arg(16)->Arg(64);

void BM_LogGPCalibration(benchmark::State& state) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::calibrate_loggp(topo));
  }
}
BENCHMARK(BM_LogGPCalibration);

void BM_ContentionReplay(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "LU");
  Rng rng(7);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::replay_with_contention(p.comm, p.network, m));
  }
}
BENCHMARK(BM_ContentionReplay)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace geomap

BENCHMARK_MAIN();
