// google-benchmark micro benchmarks of the library's hot kernels: cost
// evaluation, incremental deltas, the two fill engines, k-means
// grouping, Monte Carlo draws and the contention replay.
//
// --self-overhead[=reps] bypasses google-benchmark and measures the obs
// layer against itself: representative bodies run alternately with a
// collector attached and detached, min-of-reps on each side, and the
// relative slowdown is reported (and gated < 5% in CI). --overhead-out
// writes the result as JSON.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "apps/app.h"
#include "common/atomic_file.h"
#include "common/json_writer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/types.h"
#include "core/geodist_mapper.h"
#include "core/grouping.h"
#include "fault/fault_plan.h"
#include "mapping/cost.h"
#include "migrate/executor.h"
#include "migrate/soak.h"
#include "mapping/greedy_mapper.h"
#include "mapping/random_mapper.h"
#include "net/cloud.h"
#include "net/loggp.h"
#include "net/network_model.h"
#include "obs/collector.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "sim/replay.h"

namespace geomap {
namespace {

mapping::MappingProblem problem_for(int n, const char* app_name) {
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const apps::App& app = apps::app_by_name(app_name);
  mapping::MappingProblem p;
  p.comm = app.synthetic_pattern(n, app.default_config(n));
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.validate();
  return p;
}

void BM_TotalCost(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const mapping::CostEvaluator eval(p);
  Rng rng(1);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.total_cost(m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p.comm.nnz()));
}
BENCHMARK(BM_TotalCost)->Arg(64)->Arg(512)->Arg(4096);

void BM_DeltaMove(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const mapping::CostEvaluator eval(p);
  Rng rng(2);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  ProcessId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.delta_move(m, i, (m[static_cast<std::size_t>(i)] + 1) % 4));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_DeltaMove)->Arg(64)->Arg(4096);

void BM_FillNaive(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const core::Grouping g = core::group_sites(p.site_coords, 4);
  std::vector<GroupId> order;
  for (int i = 0; i < g.num_groups; ++i) order.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fill_for_order(
        p, g, order, core::GeoDistOptions::FillEngine::kNaive));
  }
}
BENCHMARK(BM_FillNaive)->Arg(64)->Arg(512)->Arg(2048);

void BM_FillHeap(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "K-means");
  const core::Grouping g = core::group_sites(p.site_coords, 4);
  std::vector<GroupId> order;
  for (int i = 0; i < g.num_groups; ++i) order.push_back(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fill_for_order(
        p, g, order, core::GeoDistOptions::FillEngine::kHeap));
  }
}
BENCHMARK(BM_FillHeap)->Arg(64)->Arg(512)->Arg(2048)->Arg(8192);

void BM_GroupSites(benchmark::State& state) {
  const net::CloudTopology topo(
      net::synthetic_profile(static_cast<int>(state.range(0)), 4, 3));
  const auto coords = topo.coordinates();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::group_sites(coords, 4));
  }
}
BENCHMARK(BM_GroupSites)->Arg(8)->Arg(64)->Arg(256);

void BM_MonteCarloDraw(benchmark::State& state) {
  const mapping::MappingProblem p = problem_for(64, "LU");
  const mapping::CostEvaluator eval(p);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.total_cost(mapping::RandomMapper::draw(p, rng)));
  }
}
BENCHMARK(BM_MonteCarloDraw);

void BM_OpTraceReplay(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(n);
  cfg.iterations = 4;
  trace::OpTraceLog ops(n);
  Mapping capture(static_cast<std::size_t>(n), 0);
  runtime::Runtime rt(model, capture, 45.0);
  rt.capture_ops(&ops);
  rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); });
  Mapping scattered(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) scattered[static_cast<std::size_t>(r)] = r % 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::replay_ops(ops, model, scattered));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.total_ops()));
}
BENCHMARK(BM_OpTraceReplay)->Arg(16)->Arg(64);

void BM_AllreduceVirtualTime(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const net::CloudTopology topo(net::aws_experiment_profile((n + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  Mapping mapping(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    mapping[static_cast<std::size_t>(r)] = r / ((n + 3) / 4);
  runtime::Runtime rt(model, mapping);
  for (auto _ : state) {
    rt.run([](runtime::Comm& c) {
      std::vector<double> v(128, 1.0);
      c.allreduce(v, runtime::ReduceOp::kSum);
    });
  }
}
BENCHMARK(BM_AllreduceVirtualTime)->Arg(16)->Arg(64);

void BM_LogGPCalibration(benchmark::State& state) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::calibrate_loggp(topo));
  }
}
BENCHMARK(BM_LogGPCalibration);

void BM_ContentionReplay(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const mapping::MappingProblem p = problem_for(n, "LU");
  Rng rng(7);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::replay_with_contention(p.comm, p.network, m));
  }
}
BENCHMARK(BM_ContentionReplay)->Arg(64)->Arg(1024);

// ---------------------------------------------------------------------------
// Self-overhead mode

struct OverheadBody {
  const char* name;
  void (*run)(obs::Collector* col);
};

void body_geodist_map(obs::Collector* col) {
  const mapping::MappingProblem p = problem_for(512, "K-means");
  core::GeoDistOptions options;
  options.collector = col;
  core::GeoDistMapper mapper(options);
  benchmark::DoNotOptimize(mapper.map(p));
}

void body_greedy_map(obs::Collector* col) {
  const mapping::MappingProblem p = problem_for(2048, "LU");
  mapping::GreedyMapper mapper;
  mapper.set_collector(col);
  benchmark::DoNotOptimize(mapper.map(p));
}

void body_contention_replay(obs::Collector* col) {
  // 1024 ranks: a few ms of single-threaded replay, long enough that the
  // per-edge instrumented delta is measured over a stable denominator.
  const mapping::MappingProblem p = problem_for(1024, "LU");
  Rng rng(7);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  benchmark::DoNotOptimize(
      sim::replay_with_contention(p.comm, p.network, m, col, "overhead"));
}

void body_migrate_soak(obs::Collector* col) {
  // One full detect -> remap -> migrate chaos-soak case with the
  // collector attached: the detector streams onset/clear verdicts into
  // the structured event log, the executor streams its protocol
  // transitions (reserve / commit / release / rollback) plus per-chunk
  // metrics and timeline points. This prices the telemetry plane over
  // the production-shaped recovery loop — app replay, detection, remap
  // and migration together — rather than a bare kernel whose simulated
  // per-chunk compute is smaller than any bookkeeping.
  migrate::SoakOptions options;
  options.ranks = 32;
  options.num_sites = 4;
  options.app_rounds = 2;
  options.migrate.collector = col;
  benchmark::DoNotOptimize(migrate::run_soak_case(11, options));
}

constexpr OverheadBody kOverheadBodies[] = {
    {"geodist_map_512", body_geodist_map},
    {"greedy_map_2048", body_greedy_map},
    {"contention_replay_1024", body_contention_replay},
    {"migrate_soak_32", body_migrate_soak},
};

/// Min wall seconds over `reps` runs; a fresh collector per instrumented
/// rep so artifact accumulation does not grow across reps. The collector
/// is configured like a continuous-observability deployment — the
/// forensic recorders (audit, critpath) off, the always-on set (metrics,
/// spans, timeline, profiler, memory) on — because the 5% gate bounds
/// what runs on every production invocation, not a forensic capture.
double min_run_seconds(const OverheadBody& body, bool instrumented, int reps) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    obs::Collector col;
    col.set_audit_enabled(false);
    col.set_critpath_enabled(false);
    Timer timer;
    body.run(instrumented ? &col : nullptr);
    best = std::min(best, timer.elapsed_seconds());
  }
  return best;
}

int run_self_overhead(int reps, const std::string& out_path) {
  struct Result {
    const char* name;
    double off_seconds;
    double on_seconds;
    double overhead_percent;
  };
  std::vector<Result> results;
  double worst = 0;
  for (const OverheadBody& body : kOverheadBodies) {
    // One untimed warmup per side, then alternating measured reps so
    // slow drift (thermal, cache) hits both sides evenly.
    min_run_seconds(body, false, 1);
    min_run_seconds(body, true, 1);
    double best_off = std::numeric_limits<double>::infinity();
    double best_on = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) {
      best_off = std::min(best_off, min_run_seconds(body, false, 1));
      best_on = std::min(best_on, min_run_seconds(body, true, 1));
    }
    const double overhead = (best_on - best_off) / best_off * 100.0;
    results.push_back(Result{body.name, best_off, best_on, overhead});
    worst = std::max(worst, overhead);
    std::cout << body.name << ": off " << best_off << " s, on " << best_on
              << " s, overhead " << overhead << " %\n";
  }
  std::cout << "max collector-on overhead: " << worst << " %\n";

  if (!out_path.empty()) {
    write_file_atomic(out_path, [&](std::ostream& os) {
      JsonWriter w(os);
      w.begin_object();
      w.field("reps", reps);
      w.key("bodies").begin_object();
      for (const Result& r : results) {
        w.key(r.name).begin_object();
        w.field("off_seconds", r.off_seconds);
        w.field("on_seconds", r.on_seconds);
        w.field("overhead_percent", r.overhead_percent);
        w.end_object();
      }
      w.end_object();
      w.field("overhead_percent", worst);
      w.end_object();
      os << "\n";
    });
  }
  return 0;
}

}  // namespace
}  // namespace geomap

int main(int argc, char** argv) {
  // The self-overhead flags are ours, not google-benchmark's; peel them
  // off before handing the rest over.
  int overhead_reps = 0;
  std::string overhead_out;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--self-overhead") == 0) {
      overhead_reps = 5;
    } else if (std::strncmp(arg, "--self-overhead=", 16) == 0) {
      overhead_reps = std::max(1, std::atoi(arg + 16));
    } else if (std::strncmp(arg, "--overhead-out=", 15) == 0) {
      overhead_out = arg + 15;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (overhead_reps > 0)
    return geomap::run_self_overhead(overhead_reps, overhead_out);

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
