// Paper Table 3: Windows Azure Standard D2 — bandwidth/latency within
// East US and from East US to West Europe / Japan East, demonstrating
// that the geo-distributed observations generalize across providers.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Table 3: Azure cross-region performance");
  cli.add_bool("csv", false, "emit CSV instead of the aligned table");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const net::CloudTopology topo(net::azure2016_profile(2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);

  SiteId east = -1;
  for (SiteId s = 0; s < topo.num_sites(); ++s)
    if (topo.site(s).name.rfind("East US", 0) == 0) east = s;

  struct Target {
    const char* prefix;
    const char* label;
    const char* distance_class;
    double paper_bw;
    double paper_lat_ms;
  };
  const Target targets[] = {
      {"East US", "East US (intra)", "Intra-Region", 62.0, 0.82},
      {"West Europe", "West Europe", "Medium", 2.9, 42.0},
      {"Japan East", "Japan East", "Long", 1.3, 77.0},
  };

  print_banner(std::cout,
               "Table 3 — Azure Standard D2 from East US: bandwidth/latency");
  Table table({"region", "distance", "bandwidth MB/s", "latency ms",
               "paper bw", "paper lat"});
  for (const Target& t : targets) {
    SiteId dst = -1;
    for (SiteId s = 0; s < topo.num_sites(); ++s)
      if (topo.site(s).name.rfind(t.prefix, 0) == 0) dst = s;
    table.row()
        .cell(t.label)
        .cell(t.distance_class)
        .cell(calib.model.bandwidth(east, dst) / 1e6, 1)
        .cell(calib.model.latency(east, dst) * 1e3, 2)
        .cell(t.paper_bw, 1)
        .cell(t.paper_lat_ms, 2);
  }
  bench::print_table(table, cli.get_bool("csv"));
  return 0;
}
