// Paper Figure 10: normalized minimal execution time of best-of-K random
// mapping as K grows — the decay is ~log(K), demonstrating random search
// needs K ~ 10^4+ draws to approach what Geo-distributed finds in one
// optimization run ("the deep point of each application").

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "core/montecarlo.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 10: best-of-K Monte Carlo vs Geo-distributed");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("samples", 200000, "Monte Carlo draws (max K)");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::int64_t samples = cli.get_int("samples");
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout,
               "Figure 10 — normalized minimal communication time of "
               "best-of-K random mappings");
  Table table({"K", "LU", "K-means", "DNN"});

  std::vector<std::int64_t> ks;
  for (std::int64_t k = 1; k <= samples; k *= 10) ks.push_back(k);
  if (ks.back() != samples) ks.push_back(samples);

  std::vector<std::vector<double>> columns;
  std::vector<double> geo_rows;
  for (const char* app_name : {"LU", "K-means", "DNN"}) {
    const apps::App& app = apps::app_by_name(app_name);
    apps::AppConfig cfg = app.default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(app, cfg, ctx.calib.model);

    Rng rng(seed);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm),
        mapping::make_random_constraints(
            ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"),
            rng));

    core::MonteCarloOptions mc_opts;
    mc_opts.samples = samples;
    mc_opts.seed = seed;
    const core::MonteCarloResult mc = core::run_monte_carlo(problem, mc_opts);

    // Normalize against the worst observed cost, as the paper's
    // "normalized minimal execution time" does.
    std::vector<double> column;
    for (const double best : mc.best_of_k(ks)) column.push_back(best / mc.worst);
    columns.push_back(std::move(column));

    core::GeoDistMapper geo;
    geo_rows.push_back(
        mapping::CostEvaluator(problem).total_cost(geo.map(problem)) /
        mc.worst);
  }

  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    table.row()
        .cell(static_cast<long long>(ks[ki]))
        .cell(columns[0][ki], 4)
        .cell(columns[1][ki], 4)
        .cell(columns[2][ki], 4);
  }
  table.row()
      .cell("Geo-distributed (1 run)")
      .cell(geo_rows[0], 4)
      .cell(geo_rows[1], 4)
      .cell(geo_rows[2], 4);
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: the best-of-K curve decays ~log(K); "
               "Geo-distributed's single run sits at or below the\ncurve's "
               "deep point, which random search only nears after K ~ 10^4 "
               "draws.\n";
  return 0;
}
