// Paper Figure 8: Geo-distributed's improvement over Greedy as the
// data-movement constraint ratio sweeps 0..100%. Expected shapes:
// concave decay for LU and K-means (small ratios barely hurt), near-
// linear decay for DNN; 100% pinned leaves no optimization space.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 8: improvement vs data-movement constraint ratio");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("trials", 5, "constraint draws averaged per ratio");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout,
               "Figure 8 — Geo-distributed improvement over Greedy (%) vs "
               "constraint ratio");
  Table table({"constraint ratio (%)", "LU", "K-means", "DNN"});

  const std::vector<double> ratios = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<std::vector<double>> results(
      ratios.size(), std::vector<double>(3, 0.0));

  int app_idx = 0;
  for (const char* app_name : {"LU", "K-means", "DNN"}) {
    const apps::App& app = apps::app_by_name(app_name);
    apps::AppConfig cfg = app.default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(app, cfg, ctx.calib.model);

    for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
      RunningStats improvement;
      for (int t = 0; t < trials; ++t) {
        Rng rng(seed + static_cast<std::uint64_t>(t) * 7919);
        mapping::MappingProblem problem = core::make_problem(
            ctx.topo, ctx.calib.model, comm,
            mapping::make_random_constraints(ranks, ctx.topo.capacities(),
                                             ratios[ri], rng));
        const mapping::CostEvaluator eval(problem);
        mapping::GreedyMapper greedy;
        core::GeoDistMapper geo;
        const double greedy_cost = eval.total_cost(greedy.map(problem));
        const double geo_cost = eval.total_cost(geo.map(problem));
        improvement.add(
            mapping::improvement_percent(greedy_cost, geo_cost));
      }
      results[ri][static_cast<std::size_t>(app_idx)] = improvement.mean();
    }
    ++app_idx;
  }

  for (std::size_t ri = 0; ri < ratios.size(); ++ri) {
    table.row()
        .cell(ratios[ri] * 100, 0)
        .cell(results[ri][0], 1)
        .cell(results[ri][1], 1)
        .cell(results[ri][2], 1);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: LU/K-means curves concave (gentle loss at "
               "small ratios); DNN near-linear; at 100%\nthe mapping is "
               "fully determined and the gap closes to ~0.\n";
  return 0;
}
