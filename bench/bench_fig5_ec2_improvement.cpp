// Paper Figure 5: overall performance improvement over Baseline for BT,
// SP, LU, K-means and DNN on the (virtualized) EC2 deployment — 4
// regions x 16 m4.xlarge, 64 processes, constraint ratio 0.2. Unlike the
// simulation benches, each mapping is evaluated by actually executing
// the application on the minimpi runtime, so computation time dilutes
// the communication gain exactly as on the paper's real cloud runs.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 5: overall improvement on EC2 (virtual execution)");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("trials", 5, "baseline random mappings averaged");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const int trials = static_cast<int>(cli.get_int("trials"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout,
               "Figure 5 — overall improvement over Baseline on EC2 (%)");
  Table table({"app", "Greedy", "MPIPP", "Geo-distributed",
               "baseline makespan (s)", "stderr"});

  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"),
        rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    auto execute = [&](const Mapping& mapping) {
      runtime::Runtime rt(ctx.calib.model, mapping,
                          ctx.topo.instance().gflops);
      rt.set_collector(obs.collector());
      return rt.run([&](runtime::Comm& c) { (void)app->run(c, cfg); })
          .makespan;
    };

    // Baseline: average total time over random mappings (the paper runs
    // each configuration 100 times; error bars are the standard error).
    RunningStats base;
    Rng base_rng(seed + 1);
    for (int t = 0; t < trials; ++t)
      base.add(execute(mapping::RandomMapper::draw(problem, base_rng)));

    const bench::AlgorithmSet algos =
        bench::paper_algorithms(ranks, 1000, obs.collector());
    std::vector<double> improvements;
    for (mapping::Mapper* mapper : algos.all()) {
      const Mapping m = mapper->map(problem);
      improvements.push_back(
          mapping::improvement_percent(base.mean(), execute(m)));
    }
    table.row()
        .cell(app->name())
        .cell(improvements[0], 1)
        .cell(improvements[1], 1)
        .cell(improvements[2], 1)
        .cell(base.mean(), 2)
        .cell(base.stderr_mean(), 3);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: Geo-distributed best on every app; Greedy "
               "strong on the near-diagonal BT/SP/LU but weak\non K-means; "
               "MPIPP uniform (10-20%); DNN gains smallest (compute-bound).\n";
  return 0;
}
