// Paper Figure 6: communication-only performance improvement in
// simulation (computation and I/O excluded), same setup as Figure 5 but
// evaluated with the alpha-beta cost model — the paper's ns-2
// experiments. Improvements are larger than Figure 5's because nothing
// dilutes the communication gain.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Figure 6: communication-only improvement (simulation)");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("trials", 20, "baseline random mappings averaged");
  cli.add_double("constraint-ratio", 0.2, "pinned process fraction");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  cli.add_bool("contention", false,
               "also report the contention-aware replay improvement");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);
  const bool with_contention = cli.get_bool("contention");

  print_banner(std::cout,
               "Figure 6 — communication improvement over Baseline (%)");
  std::vector<std::string> header = {"app", "Greedy", "MPIPP",
                                     "Geo-distributed"};
  if (with_contention) header.push_back("Geo (contention replay)");
  Table table(header);

  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(ranks);
    trace::CommMatrix comm = bench::profile_app(*app, cfg, ctx.calib.model);

    Rng rng(seed);
    ConstraintVector constraints = mapping::make_random_constraints(
        ranks, ctx.topo.capacities(), cli.get_double("constraint-ratio"),
        rng);
    const mapping::MappingProblem problem = core::make_problem(
        ctx.topo, ctx.calib.model, std::move(comm), std::move(constraints));

    const RunningStats base = bench::baseline_cost_stats(
        problem, static_cast<int>(cli.get_int("trials")), seed + 1);
    const mapping::CostEvaluator eval(problem);

    const bench::AlgorithmSet algos =
        bench::paper_algorithms(ranks, 1000, obs.collector());
    std::vector<std::string> row = {app->name()};
    Mapping geo_mapping;
    for (mapping::Mapper* mapper : algos.all()) {
      const Mapping m = mapper->map(problem);
      row.push_back(format_double(
          mapping::improvement_percent(base.mean(), eval.total_cost(m)), 1));
      geo_mapping = m;  // last = Geo-distributed
    }
    if (with_contention) {
      Rng crng(seed + 2);
      const Mapping random_map = mapping::RandomMapper::draw(problem, crng);
      const double base_mk =
          sim::replay_with_contention(problem.comm, problem.network,
                                      random_map, obs.collector())
              .makespan;
      const double geo_mk =
          sim::replay_with_contention(problem.comm, problem.network,
                                      geo_mapping, obs.collector())
              .makespan;
      row.push_back(
          format_double(mapping::improvement_percent(base_mk, geo_mk), 1));
    }
    table.add_row(std::move(row));
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nPaper shapes: Geo-distributed >60% on every app; Greedy "
               ">40% on BT/SP/LU but <10% on K-means/DNN;\nMPIPP 20-30% "
               "across the board; all improvements exceed their Figure 5 "
               "(total-time) counterparts.\n";
  return 0;
}
