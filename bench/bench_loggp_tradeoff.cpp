// The paper's Section 3.1 model choice, quantified: alpha-beta vs LogGP.
// "While more sophisticated models such as LogP and LogGP exist, they
// involve more parameters and thus have higher calibration cost." This
// bench measures both sides of that trade: the calibration budget
// (probes per site pair) and the mapping quality each model's view of
// the network produces, evaluated against the LogGP ground truth.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "net/loggp.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("alpha-beta vs LogGP: calibration cost and mapping quality");
  cli.add_int("ranks", 64, "number of processes");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const net::CloudTopology topo(net::aws_experiment_profile((ranks + 3) / 4));

  // Calibrate both models against the same deployment.
  const net::CalibrationResult ab = net::Calibrator().calibrate(topo);
  const net::LogGPCalibrationResult lg = net::calibrate_loggp(topo);

  print_banner(std::cout, "Calibration budget (probes, 4-site deployment)");
  Table budget({"model", "parameters per pair", "probes performed",
                "relative cost"});
  budget.row().cell("alpha-beta (paper)").cell(2LL).cell(static_cast<long long>(ab.measurements)).cell(
      1.0, 2);
  budget.row().cell("LogGP").cell(4LL).cell(static_cast<long long>(lg.measurements)).cell(
      static_cast<double>(lg.measurements) /
          static_cast<double>(ab.measurements),
      2);
  bench::print_table(budget, cli.get_bool("csv"));

  // Mapping quality: optimize under each model's alpha-beta projection,
  // evaluate under the LogGP ground-truth cost (Eq. 3 with LogGP terms).
  print_banner(std::cout,
               "Mapping quality under the LogGP ground-truth cost (%)");
  Table quality({"app", "optimized with alpha-beta", "optimized with LogGP"});

  const net::NetworkModel loggp_view = lg.model.to_alpha_beta();
  for (const char* app_name : {"LU", "K-means", "DNN"}) {
    const apps::App& app = apps::app_by_name(app_name);
    trace::CommMatrix comm =
        app.synthetic_pattern(ranks, app.default_config(ranks));

    auto loggp_cost = [&](const Mapping& m) {
      Seconds total = 0;
      for (const trace::CommEdge& e : comm.edges()) {
        total += lg.model.message_cost(m[static_cast<std::size_t>(e.src)],
                                       m[static_cast<std::size_t>(e.dst)],
                                       e.count, e.volume);
      }
      return total;
    };

    double improvements[2] = {0, 0};
    int idx = 0;
    for (const net::NetworkModel* view : {&ab.model, &loggp_view}) {
      mapping::MappingProblem problem;
      problem.comm = comm;
      problem.network = *view;
      problem.capacities = topo.capacities();
      problem.site_coords = topo.coordinates();
      problem.validate();

      core::GeoDistMapper geo;
      const Mapping mapped = geo.map(problem);
      Rng rng(seed);
      RunningStats base;
      for (int t = 0; t < 20; ++t)
        base.add(loggp_cost(mapping::RandomMapper::draw(problem, rng)));
      improvements[idx++] =
          mapping::improvement_percent(base.mean(), loggp_cost(mapped));
    }
    quality.row()
        .cell(app_name)
        .cell(improvements[0], 1)
        .cell(improvements[1], 1);
  }
  bench::print_table(quality, cli.get_bool("csv"));
  std::cout << "\nReading: LogGP costs 3x the probes for four parameters "
               "per pair, and the mappings it produces are\nno better than "
               "alpha-beta's — the paper's Section 3.1 judgement, "
               "quantified.\n";
  return 0;
}
