// Paper Table 2: average bandwidth (MB/s) and latency of c3.8xlarge
// instances between US East and three regions at increasing geographic
// distance (US West / Ireland / Singapore) — Observation 2: cross-region
// performance tracks distance.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Table 2: EC2 cross-region performance vs distance");
  cli.add_bool("csv", false, "emit CSV instead of the aligned table");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const net::CloudTopology topo(net::aws2016_profile("c3.8xlarge", 2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);

  SiteId east = -1;
  struct Target {
    const char* prefix;
    const char* label;
    const char* distance_class;
    double paper_bw;
    double paper_lat_ms;
  };
  const Target targets[] = {
      {"us-west-1", "US West", "Short", 21.0, 0.16},
      {"eu-west-1", "Ireland", "Medium", 19.0, 0.17},
      {"ap-southeast-1", "Singapore", "Long", 6.6, 0.35},
  };
  for (SiteId s = 0; s < topo.num_sites(); ++s)
    if (topo.site(s).name.rfind("us-east-1", 0) == 0) east = s;

  print_banner(std::cout,
               "Table 2 — c3.8xlarge from US East: bandwidth/latency vs "
               "distance");
  Table table({"region", "distance", "km", "bandwidth MB/s", "latency ms",
               "paper bw", "paper lat"});
  for (const Target& t : targets) {
    SiteId dst = -1;
    for (SiteId s = 0; s < topo.num_sites(); ++s)
      if (topo.site(s).name.rfind(t.prefix, 0) == 0) dst = s;
    table.row()
        .cell(t.label)
        .cell(t.distance_class)
        .cell(topo.distance_km(east, dst), 0)
        .cell(calib.model.bandwidth(east, dst) / 1e6, 1)
        .cell(calib.model.latency(east, dst) * 1e3, 2)
        .cell(t.paper_bw, 1)
        .cell(t.paper_lat_ms, 2);
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout
      << "\nNote: the paper prints sub-millisecond cross-continental "
         "latencies (0.16-0.35 ms), which are\nphysically implausible; our "
         "model uses distance-proportional latency (~1 ms per 150 km).\n"
         "The bandwidth ordering and ratios — the inputs that drive the "
         "mapping algorithms — match.\n";
  return 0;
}
