// Ablation (ours, motivated by paper Section 3.1): the alpha-beta cost
// model against its crippled variants — latency-only (alpha) and
// bandwidth-only (beta) — plus the heap vs naive fill engines' identical
// quality at different speeds. Shows both cost terms matter and that the
// heap acceleration is a free speedup.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"

using namespace geomap;

namespace {

/// A network model with one of the alpha-beta terms neutralized.
net::NetworkModel strip_model(const net::NetworkModel& model, bool keep_alpha,
                              bool keep_beta) {
  const auto m = static_cast<std::size_t>(model.num_sites());
  Matrix lat = Matrix::square(m);
  Matrix bw = Matrix::square(m);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t l = 0; l < m; ++l) {
      lat(k, l) = keep_alpha
                      ? model.latency(static_cast<SiteId>(k),
                                      static_cast<SiteId>(l))
                      : 0.0;
      bw(k, l) = keep_beta ? model.bandwidth(static_cast<SiteId>(k),
                                             static_cast<SiteId>(l))
                           : 1e18;  // effectively infinite
    }
  }
  return net::NetworkModel(std::move(lat), std::move(bw));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Ablation: cost-model terms and fill engines");
  cli.add_int("ranks", 128, "number of processes");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const bench::Ec2Context ctx((ranks + 3) / 4);

  print_banner(std::cout, "Ablation A — optimizing under crippled cost models");
  Table model_table(
      {"app", "optimized under", "true-model improvement (%)"});

  for (const char* app_name : {"LU", "K-means"}) {
    const apps::App& app = apps::app_by_name(app_name);
    mapping::MappingProblem truth;
    truth.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
    truth.network = ctx.calib.model;
    truth.capacities = ctx.topo.capacities();
    truth.site_coords = ctx.topo.coordinates();
    truth.validate();

    const RunningStats base = bench::baseline_cost_stats(truth, 20, seed);
    const mapping::CostEvaluator true_eval(truth);

    struct Variant {
      const char* label;
      bool alpha, beta;
    };
    for (const Variant v : {Variant{"alpha-beta (paper)", true, true},
                            Variant{"latency only (alpha)", true, false},
                            Variant{"bandwidth only (beta)", false, true}}) {
      mapping::MappingProblem crippled = truth;
      crippled.network = strip_model(ctx.calib.model, v.alpha, v.beta);
      core::GeoDistMapper geo;
      const Mapping m = geo.map(crippled);  // optimized under variant
      model_table.row()
          .cell(app_name)
          .cell(v.label)
          .cell(mapping::improvement_percent(base.mean(),
                                             true_eval.total_cost(m)),
                1);
    }
  }
  bench::print_table(model_table, cli.get_bool("csv"));
  std::cout << "\n(On a distance-monotone cloud the variants coincide: "
               "latency and bandwidth rank the site orders\nidentically, and "
               "Algorithm 1's fill is volume-driven — the cost model only "
               "selects the group order.)\n";

  // On an adversarial topology where the high-bandwidth pairs are the
  // high-latency ones (satellite-like links), alpha-only and beta-only
  // order selection disagree and the full model wins.
  print_banner(std::cout,
               "Ablation A' — crippled cost models on a latency-inverted "
               "topology");
  Table inv_table({"app", "optimized under", "true-model improvement (%)"});
  {
    // Invert the latency ranking of the calibrated model.
    const int m = ctx.calib.model.num_sites();
    double lat_min = 1e30, lat_max = 0;
    for (SiteId k = 0; k < m; ++k)
      for (SiteId l = 0; l < m; ++l) {
        if (k == l) continue;
        lat_min = std::min(lat_min, ctx.calib.model.latency(k, l));
        lat_max = std::max(lat_max, ctx.calib.model.latency(k, l));
      }
    Matrix lat = Matrix::square(static_cast<std::size_t>(m));
    Matrix bw = Matrix::square(static_cast<std::size_t>(m));
    for (std::size_t k = 0; k < static_cast<std::size_t>(m); ++k)
      for (std::size_t l = 0; l < static_cast<std::size_t>(m); ++l) {
        const auto sk = static_cast<SiteId>(k);
        const auto sl = static_cast<SiteId>(l);
        bw(k, l) = ctx.calib.model.bandwidth(sk, sl);
        lat(k, l) = k == l ? ctx.calib.model.latency(sk, sl)
                           : (lat_min + lat_max) * 20.0 -
                                 20.0 * ctx.calib.model.latency(sk, sl);
      }
    const net::NetworkModel inverted(std::move(lat), std::move(bw));

    const apps::App& app = apps::app_by_name("DNN");  // latency-sensitive
    mapping::MappingProblem truth;
    truth.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
    truth.network = inverted;
    truth.capacities = ctx.topo.capacities();
    truth.site_coords = ctx.topo.coordinates();
    truth.validate();
    const RunningStats base = bench::baseline_cost_stats(truth, 20, seed);
    const mapping::CostEvaluator true_eval(truth);

    struct Variant {
      const char* label;
      bool alpha, beta;
    };
    for (const Variant v : {Variant{"alpha-beta (paper)", true, true},
                            Variant{"latency only (alpha)", true, false},
                            Variant{"bandwidth only (beta)", false, true}}) {
      mapping::MappingProblem crippled = truth;
      crippled.network = strip_model(inverted, v.alpha, v.beta);
      core::GeoDistMapper geo;
      const Mapping mapped = geo.map(crippled);
      inv_table.row()
          .cell("DNN")
          .cell(v.label)
          .cell(mapping::improvement_percent(base.mean(),
                                             true_eval.total_cost(mapped)),
                1);
    }
  }
  bench::print_table(inv_table, cli.get_bool("csv"));

  print_banner(std::cout, "Ablation B — naive vs heap fill engine");
  Table fill_table({"processes", "naive (ms)", "heap (ms)", "speedup",
                    "identical mapping"});
  for (const int n : {64, 256, 1024, 4096}) {
    const net::CloudTopology topo(net::aws_experiment_profile(n / 4));
    const apps::App& app = apps::app_by_name("K-means");
    mapping::MappingProblem problem;
    problem.comm = app.synthetic_pattern(n, app.default_config(n));
    problem.network = net::NetworkModel::from_ground_truth(topo);
    problem.capacities = topo.capacities();
    problem.site_coords = topo.coordinates();
    problem.validate();

    core::GeoDistOptions naive_opts, heap_opts;
    naive_opts.fill = core::GeoDistOptions::FillEngine::kNaive;
    naive_opts.parallel_orders = false;
    heap_opts.fill = core::GeoDistOptions::FillEngine::kHeap;
    heap_opts.parallel_orders = false;
    core::GeoDistMapper naive(naive_opts), heap(heap_opts);

    Timer t1;
    const Mapping m_naive = naive.map(problem);
    const double naive_ms = t1.elapsed_ms();
    Timer t2;
    const Mapping m_heap = heap.map(problem);
    const double heap_ms = t2.elapsed_ms();

    fill_table.row()
        .cell(static_cast<long long>(n))
        .cell(naive_ms, 1)
        .cell(heap_ms, 1)
        .cell(naive_ms / heap_ms, 1)
        .cell(m_naive == m_heap ? "yes" : "NO");
  }
  bench::print_table(fill_table, cli.get_bool("csv"));
  std::cout << "\nReading: dropping either cost term degrades the mapping "
               "the paper's full model finds; the heap engine\nreturns "
               "bit-identical mappings with an asymptotically growing "
               "speedup.\n";
  return 0;
}
