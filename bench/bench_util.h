#pragma once
// Shared scaffolding for the experiment harnesses. Every bench binary
// reproduces one paper table or figure: it prints the same rows/series
// the paper reports, using this module's common setup (the 4-region EC2
// deployment, calibrated network model, app profiling and the
// Baseline/Greedy/MPIPP/Geo-distributed comparison set).

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/metrics.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "trace/profile.h"

namespace geomap::bench {

/// The paper's EC2 deployment: 4 regions x `nodes_per_site` m4.xlarge.
struct Ec2Context {
  net::CloudTopology topo;
  net::CalibrationResult calib;

  explicit Ec2Context(int nodes_per_site)
      : topo(net::aws_experiment_profile(nodes_per_site)),
        calib(net::Calibrator().calibrate(topo)) {}
};

/// Profile `app` with the tracer attached (one execution under a trivial
/// mapping; the pattern is mapping-independent for these apps).
inline trace::CommMatrix profile_app(const apps::App& app,
                                     const apps::AppConfig& cfg,
                                     const net::NetworkModel& model) {
  trace::ApplicationProfile profile(cfg.num_ranks);
  Mapping trivial(static_cast<std::size_t>(cfg.num_ranks), 0);
  runtime::Runtime rt(model, trivial, 50.0, &profile);
  rt.run([&](runtime::Comm& comm) { (void)app.run(comm, cfg); });
  return profile.build_comm_matrix();
}

/// The paper's comparison set (Section 5.1), in presentation order.
/// MPIPP is omitted above `mpipp_limit` processes — the paper notes it is
/// "very inefficient" beyond ~1000 processes.
struct AlgorithmSet {
  std::unique_ptr<mapping::Mapper> greedy;
  std::unique_ptr<mapping::Mapper> mpipp;  // may be null at large N
  std::unique_ptr<mapping::Mapper> geo;

  std::vector<mapping::Mapper*> all() const {
    std::vector<mapping::Mapper*> out = {greedy.get()};
    if (mpipp) out.push_back(mpipp.get());
    out.push_back(geo.get());
    return out;
  }
};

inline AlgorithmSet paper_algorithms(int num_processes,
                                     int mpipp_limit = 1000) {
  AlgorithmSet set;
  set.greedy = std::make_unique<mapping::GreedyMapper>();
  if (num_processes <= mpipp_limit)
    set.mpipp = std::make_unique<mapping::MpippMapper>();
  set.geo = std::make_unique<core::GeoDistMapper>();
  return set;
}

/// Mean cost of `trials` random (Baseline) mappings — the paper
/// normalizes all improvements against the Baseline average.
inline RunningStats baseline_cost_stats(const mapping::MappingProblem& p,
                                        int trials, std::uint64_t seed) {
  const mapping::CostEvaluator eval(p);
  Rng rng(seed);
  RunningStats stats;
  for (int t = 0; t < trials; ++t)
    stats.add(eval.total_cost(mapping::RandomMapper::draw(p, rng)));
  return stats;
}

/// Parse the standard bench flags shared by all harnesses.
struct BenchFlags {
  int trials = 5;
  std::uint64_t seed = 2017;
  bool csv = false;
};

inline void print_table(const Table& table, bool csv) {
  if (csv) table.print_csv(std::cout);
  else table.print(std::cout);
}

}  // namespace geomap::bench
