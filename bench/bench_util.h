#pragma once
// Shared scaffolding for the experiment harnesses. Every bench binary
// reproduces one paper table or figure: it prints the same rows/series
// the paper reports, using this module's common setup (the 4-region EC2
// deployment, calibrated network model, app profiling and the
// Baseline/Greedy/MPIPP/Geo-distributed comparison set).

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "common/atomic_file.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "obs/collector.h"
#include "obs/openmetrics.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/metrics.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "trace/profile.h"

namespace geomap::bench {

/// The paper's EC2 deployment: 4 regions x `nodes_per_site` m4.xlarge.
struct Ec2Context {
  net::CloudTopology topo;
  net::CalibrationResult calib;

  explicit Ec2Context(int nodes_per_site)
      : topo(net::aws_experiment_profile(nodes_per_site)),
        calib(net::Calibrator().calibrate(topo)) {}
};

/// Profile `app` with the tracer attached (one execution under a trivial
/// mapping; the pattern is mapping-independent for these apps).
inline trace::CommMatrix profile_app(const apps::App& app,
                                     const apps::AppConfig& cfg,
                                     const net::NetworkModel& model) {
  trace::ApplicationProfile profile(cfg.num_ranks);
  Mapping trivial(static_cast<std::size_t>(cfg.num_ranks), 0);
  runtime::Runtime rt(model, trivial, 50.0, &profile);
  rt.run([&](runtime::Comm& comm) { (void)app.run(comm, cfg); });
  return profile.build_comm_matrix();
}

/// The paper's comparison set (Section 5.1), in presentation order.
/// MPIPP is omitted above `mpipp_limit` processes — the paper notes it is
/// "very inefficient" beyond ~1000 processes.
struct AlgorithmSet {
  std::unique_ptr<mapping::Mapper> greedy;
  std::unique_ptr<mapping::Mapper> mpipp;  // may be null at large N
  std::unique_ptr<mapping::Mapper> geo;

  std::vector<mapping::Mapper*> all() const {
    std::vector<mapping::Mapper*> out = {greedy.get()};
    if (mpipp) out.push_back(mpipp.get());
    out.push_back(geo.get());
    return out;
  }
};

inline AlgorithmSet paper_algorithms(int num_processes, int mpipp_limit = 1000,
                                     obs::Collector* collector = nullptr) {
  AlgorithmSet set;
  set.greedy = std::make_unique<mapping::GreedyMapper>();
  if (num_processes <= mpipp_limit)
    set.mpipp = std::make_unique<mapping::MpippMapper>();
  core::GeoDistOptions geo_options;
  geo_options.collector = collector;
  set.geo = std::make_unique<core::GeoDistMapper>(geo_options);
  for (mapping::Mapper* m : set.all()) m->set_collector(collector);
  return set;
}

/// Mean cost of `trials` random (Baseline) mappings — the paper
/// normalizes all improvements against the Baseline average.
inline RunningStats baseline_cost_stats(const mapping::MappingProblem& p,
                                        int trials, std::uint64_t seed) {
  const mapping::CostEvaluator eval(p);
  Rng rng(seed);
  RunningStats stats;
  for (int t = 0; t < trials; ++t)
    stats.add(eval.total_cost(mapping::RandomMapper::draw(p, rng)));
  return stats;
}

/// Parse the standard bench flags shared by all harnesses.
struct BenchFlags {
  int trials = 5;
  std::uint64_t seed = 2017;
  bool csv = false;
};

inline void print_table(const Table& table, bool csv) {
  if (csv) table.print_csv(std::cout);
  else table.print(std::cout);
}

/// True when GEOMAP_PROFILE_DETERMINISTIC asks for byte-identical
/// output. Benches must zero every wall-clock field they emit under
/// this flag — the same contract the profiler's clocks follow — so a
/// rerun with the same seed cmp's clean.
inline bool deterministic_output() {
  const char* v = std::getenv("GEOMAP_PROFILE_DETERMINISTIC");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// `ms` as-is normally, 0 under GEOMAP_PROFILE_DETERMINISTIC.
inline double masked_ms(double ms) { return deterministic_output() ? 0.0 : ms; }

/// Collector wired from the shared observability flags (--obs-dir plus
/// the per-artifact --*-out overrides). One call to add_flags() in every
/// bench registers the full set; parse() (or the constructor) reads them
/// back. collector() is nullptr when every flag is empty, so benches
/// stay on the exact uninstrumented path unless asked; flush() (also run
/// at destruction) writes whichever files were requested, each stamped
/// with the run-metadata header (bench name from argv[0], the bench's
/// --seed when it has one, geomap version, git describe, timestamp).
/// checkpoint() writes the same set mid-run — atomically, via tmp+rename
/// — so `geomap-obsctl watch` can follow a live --obs-dir without ever
/// reading a half-written artifact.
class ObsSink {
 public:
  /// Register the shared observability flags. Empty path = exporter off.
  static void add_flags(CliParser& cli) {
    cli.add_string("metrics-out", "",
                   "write a metrics-registry JSON snapshot to this file");
    cli.add_string("trace-out", "",
                   "write a Chrome trace-event JSON file (Perfetto-loadable)");
    cli.add_string("audit-out", "",
                   "write the mapper decision audit trail JSON to this file");
    cli.add_string("critpath-out", "",
                   "write the causal critical-path JSON (geomap-obsctl input) "
                   "to this file");
    cli.add_string("timeline-out", "",
                   "write the windowed time-series + detection timeline JSON "
                   "(geomap-obsctl timeline input) to this file");
    cli.add_string("profile-out", "",
                   "write the hierarchical phase profile JSON (geomap-obsctl "
                   "profile input) to this file");
    cli.add_string("collapse-out", "",
                   "write collapsed-stack lines (flamegraph.pl / speedscope "
                   "input) to this file");
    cli.add_string("events-out", "",
                   "write the structured event stream as JSON lines "
                   "(geomap-obsctl events input) to this file");
    cli.add_string("openmetrics-out", "",
                   "write the metrics registry as OpenMetrics/Prometheus "
                   "text exposition to this file");
    cli.add_string("incidents-out", "",
                   "write the causal incident reconstruction JSON "
                   "(geomap-obsctl incidents/explain input) to this file");
    cli.add_string("obs-dir", "",
                   "write all observability artifacts into this directory "
                   "as metrics.json, trace.json, audit.json, critpath.json, "
                   "timeline.json, profile.json, profile.collapsed, "
                   "events.jsonl, metrics.prom, incidents.json "
                   "(per-artifact --*-out flags override individual paths)");
  }

  /// Read the flags add_flags() registered back into a sink.
  static ObsSink parse(const CliParser& cli) { return ObsSink(cli); }

  explicit ObsSink(const CliParser& cli)
      : metrics_path_(cli.get_string("metrics-out")),
        trace_path_(cli.get_string("trace-out")),
        audit_path_(cli.get_string("audit-out")),
        critpath_path_(cli.get_string("critpath-out")),
        timeline_path_(cli.get_string("timeline-out")),
        profile_path_(cli.get_string("profile-out")),
        collapse_path_(cli.get_string("collapse-out")),
        events_path_(cli.get_string("events-out")),
        openmetrics_path_(cli.get_string("openmetrics-out")),
        incidents_path_(cli.get_string("incidents-out")) {
    const std::string dir = cli.get_string("obs-dir");
    if (!dir.empty()) {
      std::filesystem::create_directories(dir);
      if (metrics_path_.empty()) metrics_path_ = dir + "/metrics.json";
      if (trace_path_.empty()) trace_path_ = dir + "/trace.json";
      if (audit_path_.empty()) audit_path_ = dir + "/audit.json";
      if (critpath_path_.empty()) critpath_path_ = dir + "/critpath.json";
      if (timeline_path_.empty()) timeline_path_ = dir + "/timeline.json";
      if (profile_path_.empty()) profile_path_ = dir + "/profile.json";
      if (collapse_path_.empty()) collapse_path_ = dir + "/profile.collapsed";
      if (events_path_.empty()) events_path_ = dir + "/events.jsonl";
      if (openmetrics_path_.empty()) openmetrics_path_ = dir + "/metrics.prom";
      if (incidents_path_.empty()) incidents_path_ = dir + "/incidents.json";
    }
    if (!metrics_path_.empty() || !trace_path_.empty() ||
        !audit_path_.empty() || !critpath_path_.empty() ||
        !timeline_path_.empty() || !profile_path_.empty() ||
        !collapse_path_.empty() || !events_path_.empty() ||
        !openmetrics_path_.empty() || !incidents_path_.empty()) {
      collector_ = std::make_unique<obs::Collector>();
      // Pay for the forensic recorders only when their artifact was
      // asked for; the always-on set stays under the CI overhead gate.
      collector_->set_audit_enabled(!audit_path_.empty());
      collector_->set_critpath_enabled(!critpath_path_.empty());
      const bool has_seed = cli.has("seed");
      collector_->set_meta(obs::make_run_meta(
          cli.program_name(),
          has_seed ? static_cast<std::uint64_t>(cli.get_int("seed")) : 0,
          has_seed));
    }
  }

  ObsSink(const ObsSink&) = delete;
  ObsSink& operator=(const ObsSink&) = delete;
  ObsSink(ObsSink&&) = default;
  ~ObsSink() { flush(); }

  obs::Collector* collector() { return collector_.get(); }

  /// Final export: writes every requested artifact once (latched; the
  /// destructor is a no-op afterwards).
  void flush() {
    if (collector_ == nullptr || flushed_) return;
    flushed_ = true;
    write_all();
  }

  /// Mid-run export for live watching: writes every requested artifact
  /// *now* without latching, so a later checkpoint() or the final
  /// flush() overwrites it with fresher state. Each file lands via
  /// tmp + rename, so a concurrent reader (obsctl watch, tail -f on the
  /// directory) never sees a torn artifact.
  void checkpoint() {
    if (collector_ == nullptr || flushed_) return;
    write_all();
  }

 private:
  void write_all() {
    write(metrics_path_, [&](std::ostream& os) {
      collector_->write_metrics_json(os);
    });
    write(trace_path_, [&](std::ostream& os) {
      collector_->write_trace_json(os);
    });
    write(audit_path_, [&](std::ostream& os) {
      collector_->write_audit_json(os);
    });
    write(critpath_path_, [&](std::ostream& os) {
      collector_->write_critpath_json(os);
    });
    write(timeline_path_, [&](std::ostream& os) {
      collector_->write_timeline_json(os);
    });
    write(events_path_, [&](std::ostream& os) {
      collector_->write_events_jsonl(os);
    });
    write(incidents_path_, [&](std::ostream& os) {
      collector_->write_incidents_json(os);
    });
    write(openmetrics_path_, [&](std::ostream& os) {
      obs::write_openmetrics(os, obs::snapshot_metrics(collector_->metrics()),
                             &collector_->meta());
    });
    // Fold the OS view in right before export so profile.json's memory
    // section can be sanity-checked against the instrumented accounts
    // (no-op in deterministic mode).
    collector_->mem().sample_rss();
    write(profile_path_, [&](std::ostream& os) {
      collector_->write_profile_json(os);
    });
    write(collapse_path_, [&](std::ostream& os) {
      collector_->write_profile_collapsed(os);
    });
  }

  template <typename WriteFn>
  void write(const std::string& path, WriteFn&& fn) {
    if (path.empty()) return;
    // Write-then-rename keeps every published artifact whole even while
    // a watcher polls the directory mid-run.
    write_file_atomic(path, std::forward<WriteFn>(fn));
  }

  std::string metrics_path_;
  std::string trace_path_;
  std::string audit_path_;
  std::string critpath_path_;
  std::string timeline_path_;
  std::string profile_path_;
  std::string collapse_path_;
  std::string events_path_;
  std::string openmetrics_path_;
  std::string incidents_path_;
  std::unique_ptr<obs::Collector> collector_;
  bool flushed_ = false;
};

}  // namespace geomap::bench
