// Ablation (ours, motivated by paper Section 4.2): what the grouping
// optimization and the kappa! order search each contribute. Sweeps kappa
// on an 11-region deployment and toggles the order search, reporting
// solution quality (improvement over Baseline) and optimization
// overhead. Without grouping, the order search over M! = 11! site
// orders would be infeasible — exactly the blow-up grouping prevents.

#include <iostream>

#include "bench_util.h"
#include "common/cli.h"
#include "common/timer.h"

using namespace geomap;

int main(int argc, char** argv) {
  CliParser cli("Ablation: grouping optimization and order search");
  cli.add_int("ranks", 88, "number of processes (11 regions x 8)");
  cli.add_int("seed", 2017, "random seed");
  cli.add_bool("csv", false, "emit CSV");
  bench::ObsSink::add_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::ObsSink obs = bench::ObsSink::parse(cli);

  const int ranks = static_cast<int>(cli.get_int("ranks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // All 11 AWS regions — a site count where grouping actually matters.
  const net::CloudTopology topo(
      net::aws2016_profile("m4.xlarge", ranks / 11));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);

  const apps::App& app = apps::app_by_name("K-means");
  Rng rng(seed);
  mapping::MappingProblem problem;
  problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  problem.network = calib.model;
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  problem.constraints =
      mapping::make_random_constraints(ranks, problem.capacities, 0.2, rng);
  problem.validate();

  const RunningStats base = bench::baseline_cost_stats(problem, 20, seed + 1);
  const mapping::CostEvaluator eval(problem);

  print_banner(std::cout,
               "Ablation — grouping (kappa sweep) and order search, 11 "
               "regions / K-means");
  Table table({"configuration", "orders evaluated", "improvement (%)",
               "optimize (ms)"});

  auto run_config = [&](const std::string& label, core::GeoDistOptions opts) {
    opts.collector = obs.collector();
    core::GeoDistMapper mapper(opts);
    Timer timer;
    const Mapping m = mapper.map(problem);
    const double ms = timer.elapsed_ms();
    const int orders = mapper.last_orders_evaluated();
    table.row()
        .cell(label)
        .cell(orders > 0 ? std::to_string(orders)
                         : std::string("multi-level"))
        .cell(mapping::improvement_percent(base.mean(), eval.total_cost(m)),
              1)
        .cell(ms, 2);
  };

  for (const int kappa : {1, 2, 3, 4, 5}) {
    core::GeoDistOptions opts;
    opts.kappa = kappa;
    run_config("grouping kappa=" + std::to_string(kappa), opts);
  }
  {
    core::GeoDistOptions opts;
    opts.kappa = 4;
    opts.search_orders = false;
    run_config("kappa=4, order search OFF", opts);
  }
  {
    core::GeoDistOptions opts;
    opts.kappa = 4;
    opts.hierarchical = true;
    run_config("kappa=4, hierarchical recursion", opts);
  }
  {
    // No grouping: 11! is infeasible; show the guard triggers.
    core::GeoDistOptions opts;
    opts.use_grouping = false;
    core::GeoDistMapper mapper(opts);
    try {
      (void)mapper.map(problem);
      table.row().cell("no grouping (11! orders)").cell("-").cell("-").cell(
          "-");
    } catch (const Error&) {
      table.row()
          .cell("no grouping (11! = 39916800 orders)")
          .cell("refused")
          .cell("-")
          .cell("-");
    }
  }
  bench::print_table(table, cli.get_bool("csv"));
  std::cout << "\nReading: quality saturates by kappa ~4 (the paper picks "
               "kappa < 5) while overhead grows kappa!;\nthe order search "
               "adds several points of improvement over a single fixed "
               "order.\n";
  return 0;
}
