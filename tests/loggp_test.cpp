// Tests for the LogGP model: parameter semantics, calibration accuracy,
// the alpha-beta projection, and the calibration-budget accounting that
// motivates the paper's model choice.

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "net/loggp.h"

namespace geomap::net {
namespace {

LogGPModel tiny_model() {
  Matrix lat = Matrix::square(2, 1e-3);
  Matrix ovh = Matrix::square(2, 1e-6);
  Matrix gap = Matrix::square(2, 5e-6);
  Matrix gpb = Matrix::square(2, 1e-8);  // 100 MB/s
  lat(0, 1) = 0.05;
  gpb(0, 1) = 1e-6;  // 1 MB/s
  return LogGPModel(std::move(lat), std::move(ovh), std::move(gap),
                    std::move(gpb));
}

TEST(LogGP, TransferTimeFollowsTheModel) {
  const LogGPModel m = tiny_model();
  // 2o + L + (n-1) G.
  EXPECT_NEAR(m.transfer_time(0, 1, 1001), 2e-6 + 0.05 + 1000 * 1e-6, 1e-12);
  EXPECT_NEAR(m.transfer_time(0, 0, 1), 2e-6 + 1e-3, 1e-12);
}

TEST(LogGP, MessageCostAddsGapBetweenMessages) {
  const LogGPModel m = tiny_model();
  // count (2o+L) + (count-1) g + volume G.
  EXPECT_NEAR(m.message_cost(0, 0, 10, 1e4),
              10 * (2e-6 + 1e-3) + 9 * 5e-6 + 1e4 * 1e-8, 1e-12);
  EXPECT_DOUBLE_EQ(m.message_cost(0, 1, 0, 0), 0.0);
}

TEST(LogGP, AlphaBetaProjection) {
  const NetworkModel ab = tiny_model().to_alpha_beta();
  EXPECT_NEAR(ab.latency(0, 1), 0.05 + 2e-6, 1e-12);
  EXPECT_NEAR(ab.bandwidth(0, 1), 1e6, 1e-3);
  EXPECT_NEAR(ab.bandwidth(0, 0), 1e8, 1.0);
}

TEST(LogGP, ValidatesParameters) {
  Matrix ok = Matrix::square(2, 1e-6);
  Matrix bad_g = Matrix::square(2, 0.0);  // G must be positive
  EXPECT_THROW(LogGPModel(ok, ok, ok, bad_g), Error);
  Matrix mismatched = Matrix::square(3, 1e-6);
  EXPECT_THROW(LogGPModel(mismatched, ok, ok, ok), Error);
}

TEST(LogGP, CalibrationRecoversGroundTruthShape) {
  const CloudTopology topo(aws_experiment_profile(4));
  LogGPCalibrationOptions opts;
  opts.rounds = 8;
  const LogGPCalibrationResult result = calibrate_loggp(topo, opts);
  ASSERT_EQ(result.model.num_sites(), 4);

  for (SiteId k = 0; k < 4; ++k) {
    for (SiteId l = 0; l < 4; ++l) {
      // G tracks 1/bandwidth within the probe noise.
      const double g_true = 1.0 / topo.true_bandwidth(k, l);
      EXPECT_NEAR(result.model.gap_per_byte(k, l) / g_true, 1.0, 0.12)
          << k << "," << l;
      // Parameters are sane: o <= pingpong/2, g >= 2o.
      EXPECT_GT(result.model.overhead(k, l), 0.0);
      EXPECT_GE(result.model.gap(k, l), result.model.overhead(k, l));
    }
  }
  // The projection reproduces the alpha-beta calibrator's view closely.
  const NetworkModel projected = result.model.to_alpha_beta();
  const CalibrationResult ab = Calibrator().calibrate(topo);
  for (SiteId k = 0; k < 4; ++k) {
    for (SiteId l = 0; l < 4; ++l) {
      EXPECT_NEAR(projected.bandwidth(k, l) / ab.model.bandwidth(k, l), 1.0,
                  0.15);
    }
  }
}

TEST(LogGP, CalibrationBudgetIsLarger) {
  const CloudTopology topo(aws_experiment_profile(2));
  const CalibrationResult ab = Calibrator().calibrate(topo);
  const LogGPCalibrationResult lg = calibrate_loggp(topo);
  // Three probes per pair-round vs one: the paper's "higher calibration
  // cost" for the more sophisticated model.
  EXPECT_EQ(lg.measurements, 3 * ab.measurements);
}

TEST(LogGP, DeterministicInSeed) {
  const CloudTopology topo(aws_experiment_profile(2));
  const LogGPCalibrationResult a = calibrate_loggp(topo);
  const LogGPCalibrationResult b = calibrate_loggp(topo);
  EXPECT_DOUBLE_EQ(a.model.gap(0, 1), b.model.gap(0, 1));
}

}  // namespace
}  // namespace geomap::net
