// Tests for the trace substrate: CommMatrix CSR invariants, the
// CYPRESS-like loop-compressing recorder, and profile building.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "trace/comm_matrix.h"
#include "trace/profile.h"
#include "trace/recorder.h"

namespace geomap::trace {
namespace {

CommMatrix small_matrix() {
  CommMatrix::Builder b(4);
  b.add_message(0, 1, 100);
  b.add_message(0, 1, 50);   // coalesces with the first
  b.add_message(1, 0, 30);
  b.add_message(2, 3, 8, 2.0);
  return b.build();
}

TEST(CommMatrix, CoalescesDuplicateEdges) {
  const CommMatrix m = small_matrix();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 150.0);
  EXPECT_DOUBLE_EQ(m.count(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.volume(2, 3), 8.0);
  EXPECT_DOUBLE_EQ(m.count(2, 3), 2.0);
  EXPECT_DOUBLE_EQ(m.volume(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.total_volume(), 188.0);
}

TEST(CommMatrix, SelfMessagesDropped) {
  CommMatrix::Builder b(2);
  b.add_message(1, 1, 1000);
  b.add_message(0, 1, 10);
  const CommMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.total_volume(), 10.0);
}

TEST(CommMatrix, RowAndInRowAreTransposes) {
  const CommMatrix m = small_matrix();
  const CommMatrix::Row out0 = m.row(0);
  ASSERT_EQ(out0.size(), 1u);
  EXPECT_EQ(out0.dst[0], 1);
  const CommMatrix::Row in1 = m.in_row(1);
  ASSERT_EQ(in1.size(), 1u);
  EXPECT_EQ(in1.dst[0], 0);  // source process
  EXPECT_DOUBLE_EQ(in1.volume[0], 150.0);
}

TEST(CommMatrix, UndirectedRowMergesBothDirections) {
  const CommMatrix m = small_matrix();
  const CommMatrix::Row u0 = m.undirected_row(0);
  ASSERT_EQ(u0.size(), 1u);
  EXPECT_EQ(u0.dst[0], 1);
  EXPECT_DOUBLE_EQ(u0.volume[0], 180.0);  // 150 + 30
  const CommMatrix::Row u1 = m.undirected_row(1);
  ASSERT_EQ(u1.size(), 1u);
  EXPECT_DOUBLE_EQ(u1.volume[0], 180.0);
}

TEST(CommMatrix, ProcessTrafficIsUndirectedRowSum) {
  const CommMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.process_traffic(0), 180.0);
  EXPECT_DOUBLE_EQ(m.process_traffic(1), 180.0);
  EXPECT_DOUBLE_EQ(m.process_traffic(2), 8.0);
  EXPECT_DOUBLE_EQ(m.process_traffic(3), 8.0);
}

TEST(CommMatrix, TextRoundTrip) {
  const CommMatrix m = small_matrix();
  const CommMatrix back = CommMatrix::from_text(m.to_text());
  EXPECT_EQ(back.num_processes(), m.num_processes());
  EXPECT_EQ(back.nnz(), m.nnz());
  EXPECT_DOUBLE_EQ(back.volume(0, 1), 150.0);
  EXPECT_DOUBLE_EQ(back.count(2, 3), 2.0);
}

TEST(CommMatrix, RejectsBadInput) {
  EXPECT_THROW(CommMatrix::Builder(0), Error);
  CommMatrix::Builder b(2);
  EXPECT_THROW(b.add_message(-1, 0, 1), Error);
  EXPECT_THROW(b.add_message(0, 2, 1), Error);
  EXPECT_THROW(b.add_message(0, 1, -5), Error);
  EXPECT_THROW(CommMatrix::from_text("garbage 2 1"), Error);
}

TEST(CommMatrix, RandomizedCsrInvariants) {
  Rng rng(71);
  CommMatrix::Builder b(50);
  double expected_volume = 0;
  for (int e = 0; e < 2000; ++e) {
    const auto i = static_cast<ProcessId>(rng.uniform_index(50));
    const auto j = static_cast<ProcessId>(rng.uniform_index(50));
    const double bytes = rng.uniform(1, 1000);
    if (i != j) expected_volume += bytes;
    b.add_message(i, j, bytes);
  }
  const CommMatrix m = b.build();
  EXPECT_NEAR(m.total_volume(), expected_volume, 1e-6);
  // Row destinations strictly ascending; volumes positive.
  double row_total = 0;
  for (ProcessId i = 0; i < 50; ++i) {
    const CommMatrix::Row row = m.row(i);
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (k > 0) EXPECT_LT(row.dst[k - 1], row.dst[k]);
      EXPECT_GT(row.volume[k], 0);
      row_total += row.volume[k];
    }
  }
  EXPECT_NEAR(row_total, expected_volume, 1e-6);
  // Undirected degree sum equals 2x directed pair count.
  double undirected_total = 0;
  for (ProcessId i = 0; i < 50; ++i) {
    const CommMatrix::Row u = m.undirected_row(i);
    for (std::size_t k = 0; k < u.size(); ++k) undirected_total += u.volume[k];
  }
  EXPECT_NEAR(undirected_total, 2 * expected_volume, 1e-6);
}

TEST(Recorder, CompressionRoundTripsExactly) {
  Recorder rec;
  Rng rng(5);
  // A loopy trace: 50 iterations of a fixed 4-message pattern with
  // occasional irregular messages.
  for (int iter = 0; iter < 50; ++iter) {
    rec.record_send(1, 1024);
    rec.record_send(2, 2048);
    rec.record_send(1, 1024);
    rec.record_send(3, 512);
    if (iter % 10 == 0)
      rec.record_send(static_cast<ProcessId>(rng.uniform_index(8)), 64);
  }
  const CompressedTrace t = rec.compress();
  EXPECT_EQ(t.expand(), rec.raw());
  EXPECT_EQ(t.expanded_size(), rec.size());
}

TEST(Recorder, PureLoopCompressesWell) {
  Recorder rec;
  for (int iter = 0; iter < 100; ++iter) {
    rec.record_send(1, 43 * 1024);
    rec.record_send(8, 83 * 1024);
  }
  const CompressedTrace t = rec.compress();
  EXPECT_EQ(t.expand(), rec.raw());
  EXPECT_GE(t.compression_ratio(), 50.0);
  EXPECT_LE(t.segments.size(), 2u);
}

TEST(Recorder, IncompressibleTraceStaysLiteral) {
  Recorder rec;
  for (int i = 0; i < 64; ++i)
    rec.record_send(i % 7, 100.0 * i + 1);  // all distinct
  const CompressedTrace t = rec.compress();
  EXPECT_EQ(t.expand(), rec.raw());
  EXPECT_DOUBLE_EQ(t.compression_ratio(), 1.0);
}

TEST(Recorder, EmptyTrace) {
  Recorder rec;
  const CompressedTrace t = rec.compress();
  EXPECT_EQ(t.expanded_size(), 0u);
  EXPECT_TRUE(t.expand().empty());
}

TEST(Profile, BuildsCommMatrixFromRecords) {
  ApplicationProfile profile(3);
  profile.recorder(0).record_send(1, 100);
  profile.recorder(0).record_send(1, 100);
  profile.recorder(1).record_send(2, 50);
  const CommMatrix m = profile.build_comm_matrix();
  EXPECT_EQ(m.num_processes(), 3);
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 200.0);
  EXPECT_DOUBLE_EQ(m.count(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.volume(1, 2), 50.0);
  EXPECT_EQ(profile.total_records(), 3u);
}

TEST(Profile, AggregateCompressionRatio) {
  ApplicationProfile profile(2);
  for (int i = 0; i < 40; ++i) profile.recorder(0).record_send(1, 8);
  EXPECT_GE(profile.aggregate_compression_ratio(), 20.0);
}

}  // namespace
}  // namespace geomap::trace
