// Tests for the fault-injection substrate: FaultPlan query semantics,
// the time-varying DegradedNetworkModel, runtime retry/degradation
// accounting and its determinism, the fault-aware contention replay, and
// the remap-on-outage recovery policy.

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "core/geodist_mapper.h"
#include "core/remap.h"
#include "fault/degraded_network.h"
#include "fault/fault_plan.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "test_util.h"
#include "trace/comm_matrix.h"

namespace geomap::fault {
namespace {

/// Two-site model with checkable numbers: intra 1 ms / 100 MB/s, inter
/// 100 ms / 1 MB/s (symmetric) — mirrors the runtime test fixture.
net::NetworkModel simple_model() {
  Matrix lat = Matrix::square(2, 1e-3);
  lat(0, 1) = lat(1, 0) = 0.1;
  Matrix bw = Matrix::square(2, 100e6);
  bw(0, 1) = bw(1, 0) = 1e6;
  return net::NetworkModel(std::move(lat), std::move(bw));
}

TEST(FaultPlan, SiteOutageWindowsAreHalfOpen) {
  FaultPlan plan;
  plan.add_site_outage(1, 10.0, 20.0);
  EXPECT_FALSE(plan.site_down(1, 9.999));
  EXPECT_TRUE(plan.site_down(1, 10.0));
  EXPECT_TRUE(plan.site_down(1, 19.999));
  EXPECT_FALSE(plan.site_down(1, 20.0));
  EXPECT_FALSE(plan.site_down(0, 15.0));
  EXPECT_DOUBLE_EQ(plan.outage_start(1), 10.0);
  EXPECT_EQ(plan.outage_start(0), kNoEnd);
}

TEST(FaultPlan, NextSiteUpChasesOverlappingOutages) {
  FaultPlan plan;
  plan.add_site_outage(0, 5.0, 10.0);
  plan.add_site_outage(0, 8.0, 15.0);
  EXPECT_DOUBLE_EQ(plan.next_site_up(0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(plan.next_site_up(0, 6.0), 15.0);
  plan.add_site_outage(0, 30.0);  // permanent
  EXPECT_EQ(plan.next_site_up(0, 31.0), kNoEnd);
}

TEST(FaultPlan, LinkConditionComposesAndMatches) {
  FaultPlan plan;
  plan.add_link_degradation(0, 1, 0.0, 100.0, 0.5, 2.0);
  plan.add_link_degradation(0, 1, 50.0, 100.0, 0.5);  // overlaps second half

  LinkCondition early = plan.link_condition(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(early.bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(early.latency_factor, 2.0);
  LinkCondition late = plan.link_condition(0, 1, 60.0);
  EXPECT_DOUBLE_EQ(late.bandwidth_factor, 0.25);  // multiplicative

  // Ordered pair: the reverse link is healthy.
  EXPECT_FALSE(plan.link_condition(1, 0, 10.0).degraded());
  // Outside every window: identity.
  EXPECT_FALSE(plan.link_condition(0, 1, 100.0).degraded());
}

TEST(FaultPlan, SiteDegradationHitsEveryTouchingLink) {
  FaultPlan plan;
  plan.add_site_degradation(2, 0.0, kNoEnd, 0.1);
  EXPECT_DOUBLE_EQ(plan.link_condition(2, 0, 1.0).bandwidth_factor, 0.1);
  EXPECT_DOUBLE_EQ(plan.link_condition(1, 2, 1.0).bandwidth_factor, 0.1);
  EXPECT_DOUBLE_EQ(plan.link_condition(0, 1, 1.0).bandwidth_factor, 1.0);
}

TEST(FaultPlan, OutageMarksLinksDown) {
  FaultPlan plan;
  plan.add_site_outage(1, 0.0, 5.0);
  EXPECT_TRUE(plan.link_condition(0, 1, 1.0).down);
  EXPECT_TRUE(plan.link_condition(1, 0, 1.0).down);
  EXPECT_FALSE(plan.link_condition(0, 2, 1.0).down);
  EXPECT_FALSE(plan.link_condition(0, 1, 6.0).down);
}

TEST(FaultPlan, MessageLossIsDeterministicInSeedAndArguments) {
  FaultPlan a(42), b(42), other(43);
  for (FaultPlan* p : {&a, &b, &other})
    p->add_message_loss(0, 1, 0.0, kNoEnd, 0.5);

  int differs = 0;
  for (std::uint64_t stream = 0; stream < 200; ++stream) {
    const bool la = a.message_lost(0, 1, 1.0, stream, 0);
    EXPECT_EQ(la, b.message_lost(0, 1, 1.0, stream, 0));
    if (la != other.message_lost(0, 1, 1.0, stream, 0)) ++differs;
  }
  EXPECT_GT(differs, 20);  // different seeds give a different stream

  // No loss event active => never lost; p = 1 => always lost.
  EXPECT_FALSE(a.message_lost(1, 0, 1.0, 7, 0));
  FaultPlan certain(1);
  certain.add_message_loss(0, 1, 0.0, kNoEnd, 1.0);
  EXPECT_TRUE(certain.message_lost(0, 1, 1.0, 7, 3));
}

TEST(FaultPlan, RejectsMalformedEvents) {
  FaultPlan plan;
  EXPECT_THROW(plan.add_site_outage(-1, 0.0), Error);
  EXPECT_THROW(plan.add_site_outage(0, 5.0, 5.0), Error);  // empty window
  EXPECT_THROW(plan.add_link_degradation(0, 1, 0.0, 1.0, 0.0), Error);
  EXPECT_THROW(plan.add_link_degradation(0, 1, 0.0, 1.0, 1.5), Error);
  EXPECT_THROW(plan.add_link_degradation(0, 1, 0.0, 1.0, 0.5, 0.5), Error);
  EXPECT_THROW(plan.add_message_loss(0, 1, 0.0, 1.0, 1.5), Error);
  // Endpoints below the -1 wildcard would silently match every link.
  EXPECT_THROW(plan.add_link_degradation(-5, 1, 0.0, 1.0, 0.5), Error);
  EXPECT_THROW(plan.add_link_degradation(0, -2, 0.0, 1.0, 0.5), Error);
  EXPECT_THROW(plan.add_message_loss(-5, 1, 0.0, 1.0, 0.5), Error);
  EXPECT_THROW(plan.add_message_loss(0, -2, 0.0, 1.0, 0.5), Error);
}

TEST(DegradedNetwork, PassthroughIsExactOutsideEventWindows) {
  const net::NetworkModel base = simple_model();
  FaultPlan plan;
  plan.add_link_degradation(1, 0, 5.0, 10.0, 0.5);  // reverse link only
  const DegradedNetworkModel degraded(base, plan);

  // Different link and different time: bit-identical to the base model.
  EXPECT_EQ(degraded.latency(0, 1, 7.0), base.latency(0, 1));
  EXPECT_EQ(degraded.bandwidth(0, 1, 7.0), base.bandwidth(0, 1));
  EXPECT_EQ(degraded.transfer_time(0, 1, 8000.0, 7.0),
            base.transfer_time(0, 1, 8000.0));
  EXPECT_EQ(degraded.transfer_time(1, 0, 8000.0, 20.0),
            base.transfer_time(1, 0, 8000.0));
}

TEST(DegradedNetwork, AppliesFactorsInsideWindow) {
  const net::NetworkModel base = simple_model();
  FaultPlan plan;
  plan.add_link_degradation(0, 1, 5.0, 10.0, 0.5, 2.0);
  const DegradedNetworkModel degraded(base, plan);

  EXPECT_DOUBLE_EQ(degraded.latency(0, 1, 6.0), 0.2);
  EXPECT_DOUBLE_EQ(degraded.bandwidth(0, 1, 6.0), 0.5e6);
  EXPECT_DOUBLE_EQ(degraded.transfer_time(0, 1, 8000.0, 6.0),
                   0.2 + 8000.0 / 0.5e6);
  EXPECT_DOUBLE_EQ(degraded.message_cost(0, 1, 3.0, 8000.0, 6.0),
                   3 * 0.2 + 8000.0 / 0.5e6);

  const net::NetworkModel snap = degraded.snapshot(6.0);
  EXPECT_DOUBLE_EQ(snap.latency(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(snap.bandwidth(0, 1), 0.5e6);
  EXPECT_EQ(snap.latency(1, 0), base.latency(1, 0));

  EXPECT_TRUE(degraded.available(0, 1, 6.0));
  plan.add_site_outage(1, 20.0, 30.0);
  EXPECT_FALSE(degraded.available(0, 1, 25.0));
}

// -- Runtime integration --

TEST(RuntimeFaults, DegradedLinkPaysInflatedAlphaBetaCost) {
  FaultPlan plan;
  plan.add_link_degradation(0, 1, 0.0, kNoEnd, 0.5, 2.0);
  runtime::Runtime rt(simple_model(), {0, 1});
  rt.set_fault_plan(&plan);
  const runtime::RunResult r = rt.run([](runtime::Comm& comm) {
    std::vector<double> payload(1000, 1.0);  // 8000 bytes
    if (comm.rank() == 0) comm.send(1, 1, payload);
    else (void)comm.recv(0, 1);
  });
  const double healthy = 0.1 + 8000.0 / 1e6;
  const double degraded = 0.2 + 8000.0 / 0.5e6;
  EXPECT_NEAR(r.makespan, degraded, 1e-12);
  EXPECT_EQ(r.total_retries, 0u);
  EXPECT_NEAR(r.total_fault_seconds, degraded - healthy, 1e-12);
}

TEST(RuntimeFaults, InertPlanReproducesFaultFreeRunExactly) {
  // Events whose windows the run never reaches (the job lasts well under
  // a second) must leave the execution bit-identical to a detached
  // runtime.
  FaultPlan plan;
  plan.add_link_degradation(1, 0, 1e6, 1e7, 0.25);
  plan.add_message_loss(1, 0, 1e6, 1e7, 0.9);
  plan.add_site_outage(0, 1e6, 1e7);
  auto body = [](runtime::Comm& comm) {
    std::vector<double> v(64, 1.0);
    comm.allreduce(v, runtime::ReduceOp::kSum);
    comm.barrier();
  };
  runtime::Runtime with(simple_model(), {0, 0, 0, 1});
  with.set_fault_plan(&plan);
  runtime::Runtime without(simple_model(), {0, 0, 0, 1});
  const runtime::RunResult a = with.run(body);
  const runtime::RunResult b = without.run(body);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_retries, 0u);
  EXPECT_EQ(a.total_timeouts, 0u);
  EXPECT_EQ(a.total_fault_seconds, 0.0);
  for (std::size_t r = 0; r < a.ranks.size(); ++r)
    EXPECT_EQ(a.ranks[r].finish_time, b.ranks[r].finish_time);
}

TEST(RuntimeFaults, LostMessagesRetryWithBackoffInVirtualTime) {
  FaultPlan plan(7);
  plan.add_message_loss(0, 1, 0.0, 0.5, 1.0);  // certain loss before 0.5
  RetryPolicy policy;
  policy.detect_timeout = 0.2;
  policy.backoff_base = 0.05;
  policy.backoff_multiplier = 2.0;
  policy.max_retries = 8;
  runtime::Runtime rt(simple_model(), {0, 1});
  rt.set_fault_plan(&plan, policy);
  const runtime::RunResult r = rt.run([](runtime::Comm& comm) {
    std::vector<double> payload(1000, 1.0);
    if (comm.rank() == 0) comm.send(1, 1, payload);
    else (void)comm.recv(0, 1);
  });
  // Attempt 0 at t=0 lost (0.25 delay), attempt 1 at 0.25 lost (0.3
  // delay), attempt 2 at 0.55 is past the loss window and goes through.
  EXPECT_EQ(r.total_retries, 2u);
  EXPECT_EQ(r.total_timeouts, 0u);
  EXPECT_NEAR(r.makespan, 0.55 + 0.108, 1e-12);
  EXPECT_NEAR(r.total_fault_seconds, 0.55, 1e-12);
}

TEST(RuntimeFaults, ExhaustedRetriesCountAsTimeoutAndTerminate) {
  FaultPlan plan(7);
  plan.add_message_loss(0, 1, 0.0, kNoEnd, 1.0);
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.detect_timeout = 0.1;
  policy.backoff_base = 0.1;
  runtime::Runtime rt(simple_model(), {0, 1});
  rt.set_fault_plan(&plan, policy);
  const runtime::RunResult r = rt.run([](runtime::Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, std::vector<double>{1.0});
    else (void)comm.recv(0, 1);
  });
  EXPECT_EQ(r.total_retries, 2u);
  EXPECT_EQ(r.total_timeouts, 1u);
  EXPECT_GT(r.total_fault_seconds, 0.0);
}

TEST(RuntimeFaults, OutageStallsTransfersUntilSiteReturns) {
  FaultPlan plan;
  plan.add_site_outage(1, 0.0, 0.5);
  RetryPolicy policy;  // 0.2 detect + 0.05/0.1/... backoff
  runtime::Runtime rt(simple_model(), {0, 1});
  rt.set_fault_plan(&plan, policy);
  const runtime::RunResult r = rt.run([](runtime::Comm& comm) {
    std::vector<double> payload(1000, 1.0);
    if (comm.rank() == 0) comm.send(1, 1, payload);
    else (void)comm.recv(0, 1);
  });
  // Attempts at 0 and 0.25 hit the outage; 0.55 is past it.
  EXPECT_EQ(r.total_retries, 2u);
  EXPECT_NEAR(r.makespan, 0.55 + 0.108, 1e-12);
}

TEST(RuntimeFaults, SeededLossIsBitIdenticalAcrossRuns) {
  FaultPlan plan(2026);
  plan.add_message_loss(0, 1, 0.0, kNoEnd, 0.4);
  plan.add_message_loss(1, 0, 0.0, kNoEnd, 0.4);
  // Sequential ping-pong: one transfer in flight at a time, so virtual
  // time is contention-free deterministic.
  auto body = [](runtime::Comm& comm) {
    std::vector<double> v(256, 1.0);
    for (int round = 0; round < 16; ++round) {
      if (comm.rank() == 0) {
        comm.send(1, round, v);
        v = comm.recv(1, round);
      } else {
        v = comm.recv(0, round);
        comm.send(0, round, v);
      }
    }
  };
  runtime::Runtime rt1(simple_model(), {0, 1}), rt2(simple_model(), {0, 1});
  rt1.set_fault_plan(&plan);
  rt2.set_fault_plan(&plan);
  const runtime::RunResult a = rt1.run(body);
  const runtime::RunResult b = rt2.run(body);
  EXPECT_GT(a.total_retries, 0u);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_timeouts, b.total_timeouts);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_fault_seconds, b.total_fault_seconds);
}

// -- Fault-aware contention replay --

trace::CommMatrix two_proc_pattern(int messages) {
  trace::CommMatrix::Builder b(2);
  for (int k = 0; k < messages; ++k) b.add_message(0, 1, 8000.0);
  return b.build();
}

TEST(FaultReplay, EmptyPlanMatchesFaultFreeReplayBitForBit) {
  Rng rng(5);
  const trace::CommMatrix comm = testutil::random_comm(16, 4, rng);
  const net::NetworkModel model = simple_model();
  Mapping mapping(16);
  for (int i = 0; i < 16; ++i) mapping[static_cast<std::size_t>(i)] = i % 2;

  const FaultPlan empty;
  const DegradedNetworkModel degraded(model, empty);
  const sim::ContentionResult base =
      sim::replay_with_contention(comm, model, mapping);
  const sim::ContentionResult faulty =
      sim::replay_with_contention(comm, degraded, mapping);
  EXPECT_EQ(base.makespan, faulty.makespan);
  EXPECT_EQ(base.busiest_link_seconds, faulty.busiest_link_seconds);
  EXPECT_EQ(base.total_transfer_seconds, faulty.total_transfer_seconds);
}

TEST(FaultReplay, DegradationWindowInflatesMakespan) {
  const net::NetworkModel model = simple_model();
  const trace::CommMatrix comm = two_proc_pattern(8);
  const Mapping mapping = {0, 1};

  FaultPlan plan;
  plan.add_link_degradation(0, 1, 0.0, kNoEnd, 0.5, 2.0);
  const DegradedNetworkModel degraded(model, plan);
  const double healthy =
      sim::replay_with_contention(comm, model, mapping).makespan;
  const double slowed =
      sim::replay_with_contention(comm, degraded, mapping).makespan;
  EXPECT_NEAR(slowed, 8 * (0.2 + 8000.0 / 0.5e6), 1e-9);
  EXPECT_GT(slowed, healthy);
}

TEST(FaultReplay, TransientOutageStallsAndStartTimeShiftsSchedule) {
  const net::NetworkModel model = simple_model();
  const trace::CommMatrix comm = two_proc_pattern(1);
  const Mapping mapping = {0, 1};

  FaultPlan plan;
  plan.add_site_outage(1, 0.0, 2.0);
  const DegradedNetworkModel degraded(model, plan);
  // Issued at t=0 into the outage: stalls until t=2.
  const sim::ContentionResult stalled =
      sim::replay_with_contention(comm, degraded, mapping);
  EXPECT_NEAR(stalled.makespan, 2.0 + 0.108, 1e-9);
  // Replay offset past the outage: no stall (makespan is a duration).
  const sim::ContentionResult after =
      sim::replay_with_contention(comm, degraded, mapping, 5.0);
  EXPECT_NEAR(after.makespan, 0.108, 1e-9);
}

TEST(FaultReplay, PermanentOutageThrows) {
  const net::NetworkModel model = simple_model();
  const trace::CommMatrix comm = two_proc_pattern(1);
  FaultPlan plan;
  plan.add_site_outage(1, 0.0);  // never ends
  const DegradedNetworkModel degraded(model, plan);
  EXPECT_THROW(sim::replay_with_contention(comm, degraded, {0, 1}), Error);
}

// -- Remap-on-outage --

TEST(RemapOnOutage, ProducesFeasibleMappingAvoidingTheDeadSite) {
  // Capacity headroom so one site's loss is survivable: 4 sites x 16
  // nodes for 32 processes.
  const mapping::MappingProblem problem =
      testutil::random_problem(32, 0.25, 11, 4, /*slack=*/8);
  const Mapping current = core::GeoDistMapper().map(problem);

  // Fail the site hosting process 0 so some processes are stranded.
  const SiteId failed = current[0];
  FaultPlan plan(3);
  plan.add_site_degradation(failed, 5.0, kNoEnd, 0.25, 2.0);
  plan.add_site_outage(failed, 10.0);

  const core::RemapResult r =
      core::remap_on_outage(problem, current, plan, failed, 10.0);

  // Feasible under the rebuilt problem, dead site unused.
  EXPECT_NO_THROW(mapping::validate_mapping(r.problem, r.mapping));
  EXPECT_EQ(r.problem.capacities[static_cast<std::size_t>(failed)], 0);
  for (const SiteId s : r.mapping) EXPECT_NE(s, failed);

  // Surviving pins are honoured; pins to the dead site were released.
  for (std::size_t i = 0; i < problem.constraints.size(); ++i) {
    const SiteId pin = problem.constraints[i];
    if (pin != kUnconstrained && pin != failed) {
      EXPECT_EQ(r.mapping[i], pin);
    }
  }

  // Every process stranded on the dead site moved and was billed.
  int stranded = 0;
  for (const SiteId s : current) stranded += (s == failed);
  EXPECT_GT(stranded, 0);
  EXPECT_GE(r.processes_moved, stranded);
  EXPECT_DOUBLE_EQ(r.bytes_moved, r.processes_moved * 64.0 * kMiB);
  EXPECT_GT(r.migration_seconds, 0.0);

  // Brownout made the old mapping more expensive; the remap recovers some
  // of that under the degraded network.
  EXPECT_GT(r.degraded_cost, r.pre_fault_cost);
  EXPECT_GT(r.post_remap_cost, 0.0);
  EXPECT_LT(r.post_remap_cost, r.degraded_cost);
}

TEST(RemapOnOutage, IsDeterministic) {
  const mapping::MappingProblem problem =
      testutil::random_problem(24, 0.2, 5, 4, /*slack=*/6);
  const Mapping current = core::GeoDistMapper().map(problem);
  FaultPlan plan(9);
  plan.add_site_outage(1, 4.0);
  const core::RemapResult a =
      core::remap_on_outage(problem, current, plan, 1, 4.0);
  const core::RemapResult b =
      core::remap_on_outage(problem, current, plan, 1, 4.0);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.post_remap_cost, b.post_remap_cost);
  EXPECT_EQ(a.migration_seconds, b.migration_seconds);
}

TEST(RemapOnOutage, ThrowsTypedRemapInfeasibleWhenSurvivorsLackCapacity) {
  // Exact-fit capacities: losing any site is unsurvivable. The error is
  // the typed RemapInfeasible (not a generic InvalidArgument), so
  // callers can distinguish "no headroom" from "malformed input".
  const mapping::MappingProblem problem = testutil::random_problem(32, 0.0, 3);
  const Mapping current = core::GeoDistMapper().map(problem);
  FaultPlan plan;
  plan.add_site_outage(0, 1.0);
  try {
    core::remap_on_outage(problem, current, plan, 0, 1.0);
    FAIL() << "expected RemapInfeasible";
  } catch (const core::RemapInfeasible& e) {
    EXPECT_NE(std::string(e.what()).find("cannot survive"), std::string::npos);
  }
  // Malformed input still reports its own typed error, not infeasibility.
  Mapping short_mapping(current.begin(), current.begin() + 4);
  EXPECT_THROW(core::remap_on_outage(problem, short_mapping, plan, 0, 1.0),
               ConstraintViolation);
}

// -- Detection-driven remap: site voting --

namespace votes {

obs::DegradationEvent down(SiteId src, SiteId dst, Seconds detect) {
  obs::DegradationEvent e;
  e.src = src;
  e.dst = dst;
  e.kind = obs::DegradationKind::kDown;
  e.onset_vtime = detect;
  e.detect_vtime = detect;
  e.end_vtime = kNoEnd;
  return e;
}

/// Run the voting end to end on a real survivable problem; the empty
/// plan makes evaluation trivial, so the test isolates the vote.
SiteId suspect(const std::vector<obs::DegradationEvent>& events) {
  const mapping::MappingProblem problem =
      testutil::random_problem(12, 0.0, 17, 3, /*slack=*/4);
  const Mapping current = core::GeoDistMapper().map(problem);
  const FaultPlan plan;
  return core::remap_on_detection(problem, current, events, plan)
      .suspected_site;
}

}  // namespace votes

TEST(RemapOnDetection, VotesForTheSiteWithMostDistinctDownLinks) {
  // A dead site shows trouble on all of its links: site 2 is implicated
  // over three distinct links, every other site over exactly one.
  EXPECT_EQ(votes::suspect({votes::down(2, 0, 5.0), votes::down(2, 1, 6.0),
                            votes::down(2, 3, 7.0)}),
            2);
}

TEST(RemapOnDetection, LinkTieBreaksByDownEventCount) {
  // Disjoint pairs so every site has exactly one implicated link. The
  // (2, 3) link produced two episodes to (0, 1)'s one: repeated trouble
  // outranks a single blip. Sites 2 and 3 stay tied on every remaining
  // criterion, so the smaller id (2) is accused.
  EXPECT_EQ(votes::suspect({votes::down(0, 1, 5.0), votes::down(2, 3, 6.0),
                            votes::down(2, 3, 9.0)}),
            2);
}

TEST(RemapOnDetection, FullTieBreaksByEarliestDetectionThenSmallerId) {
  // Equal links and event counts; the (2, 3) trouble was detected first,
  // and within that pair the smaller id wins.
  EXPECT_EQ(votes::suspect({votes::down(0, 1, 5.0), votes::down(2, 3, 4.0)}),
            2);
  // Identical on every criterion (one shared link implicates both
  // endpoints with the same events): the smaller id wins.
  EXPECT_EQ(votes::suspect({votes::down(2, 1, 5.0)}), 1);
}

TEST(RemapOnDetection, ThrowsTypedRemapInfeasibleWithoutHeadroom) {
  const mapping::MappingProblem problem = testutil::random_problem(32, 0.0, 3);
  const Mapping current = core::GeoDistMapper().map(problem);
  const FaultPlan plan;
  EXPECT_THROW(core::remap_on_detection(problem, current,
                                        {votes::down(0, 1, 2.0)}, plan),
               core::RemapInfeasible);
}

}  // namespace
}  // namespace geomap::fault
