// Tests for the paper's algorithm: k-means grouping, Algorithm 1 fill
// engines (naive == heap property), order search, Monte Carlo sampling
// and the end-to-end pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.h"
#include "core/geodist_mapper.h"
#include "core/grouping.h"
#include "core/montecarlo.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/random_mapper.h"
#include "test_util.h"

namespace geomap::core {
namespace {

using testutil::random_problem;

TEST(Grouping, SingletonWhenKappaCoversAllSites) {
  const std::vector<net::GeoCoordinate> coords = {
      {0, 0}, {10, 10}, {20, 20}};
  const Grouping g = group_sites(coords, 5);
  EXPECT_EQ(g.num_groups, 3);
  for (int s = 0; s < 3; ++s)
    EXPECT_EQ(g.members[static_cast<std::size_t>(g.group_of_site[static_cast<std::size_t>(s)])][0], s);
}

TEST(Grouping, MembersPartitionTheSites) {
  const net::CloudTopology topo(net::aws2016_profile());
  const Grouping g = group_sites(topo.coordinates(), 4);
  EXPECT_LE(g.num_groups, 4);
  std::set<SiteId> seen;
  for (const auto& members : g.members) {
    EXPECT_FALSE(members.empty());
    for (const SiteId s : members) {
      EXPECT_TRUE(seen.insert(s).second) << "site in two groups";
      EXPECT_EQ(g.group_of_site[static_cast<std::size_t>(s)],
                g.group_of_site[static_cast<std::size_t>(members[0])]);
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(topo.num_sites()));
}

TEST(Grouping, ClustersGeographicNeighbours) {
  // Two US coasts, Europe, Asia: with kappa=2 the two US regions must
  // land in the same group (they are far closer to each other than to
  // Singapore or Ireland).
  const net::CloudTopology topo(net::aws_experiment_profile());
  const auto coords = topo.coordinates();
  const Grouping g = group_sites(coords, 2);
  ASSERT_EQ(g.num_groups, 2);
  EXPECT_EQ(g.group_of_site[0], g.group_of_site[1]);  // us-east, us-west
}

TEST(Grouping, DeterministicInSeed) {
  const net::CloudTopology topo(net::aws2016_profile());
  const Grouping a = group_sites(topo.coordinates(), 4);
  const Grouping b = group_sites(topo.coordinates(), 4);
  EXPECT_EQ(a.group_of_site, b.group_of_site);
}

TEST(Grouping, RejectsBadInput) {
  EXPECT_THROW(group_sites({}, 2), Error);
  EXPECT_THROW(group_sites({{0, 0}}, 0), Error);
}

// The central implementation property: the heap-accelerated fill engine
// reproduces the paper's naive O(N^2) loop pick-for-pick.
class FillEngineEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FillEngineEquivalence, HeapMatchesNaiveExactly) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (const double ratio : {0.0, 0.3}) {
    const mapping::MappingProblem p = random_problem(24, ratio, seed, 5);
    const Grouping g = group_sites(p.site_coords, 2);
    // Try every order of the groups.
    std::vector<GroupId> order(static_cast<std::size_t>(g.num_groups));
    for (int i = 0; i < g.num_groups; ++i) order[static_cast<std::size_t>(i)] = i;
    do {
      const Mapping naive = fill_for_order(
          p, g, order, GeoDistOptions::FillEngine::kNaive);
      const Mapping heap =
          fill_for_order(p, g, order, GeoDistOptions::FillEngine::kHeap);
      EXPECT_EQ(naive, heap);
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FillEngineEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(FillEngines, AgreeUnderAllowedSiteSets) {
  for (const std::uint64_t seed : {4ULL, 9ULL, 14ULL}) {
    mapping::MappingProblem p = random_problem(20, 0.0, seed, 4);
    Rng rng(seed * 31);
    p.allowed_sites.assign(20, {});
    for (ProcessId i = 0; i < 20; ++i) {
      if (rng.uniform() < 0.5) continue;
      std::vector<SiteId> list;
      for (SiteId s = 0; s < 4; ++s)
        if (rng.uniform() < 0.6) list.push_back(s);
      if (list.empty()) list.push_back(static_cast<SiteId>(rng.uniform_index(4)));
      p.allowed_sites[static_cast<std::size_t>(i)] = std::move(list);
    }
    p.validate();
    const Grouping g = group_sites(p.site_coords, 2);
    std::vector<GroupId> order(static_cast<std::size_t>(g.num_groups));
    std::iota(order.begin(), order.end(), 0);
    do {
      const Mapping naive =
          fill_for_order(p, g, order, GeoDistOptions::FillEngine::kNaive);
      const Mapping heap =
          fill_for_order(p, g, order, GeoDistOptions::FillEngine::kHeap);
      EXPECT_EQ(naive, heap) << "seed " << seed;
      EXPECT_NO_THROW(mapping::validate_mapping(p, naive));
    } while (std::next_permutation(order.begin(), order.end()));
  }
}

TEST(GeoDist, RespectsConstraintsAndCapacities) {
  const mapping::MappingProblem p = random_problem(32, 0.4, 77);
  GeoDistMapper mapper;
  const Mapping m = mapper.map(p);
  EXPECT_NO_THROW(mapping::validate_mapping(p, m));
}

TEST(GeoDist, EvaluatesKappaFactorialOrders) {
  const mapping::MappingProblem p = random_problem(16, 0.0, 5);
  GeoDistOptions opts;
  opts.kappa = 3;
  GeoDistMapper mapper(opts);
  (void)mapper.map(p);
  const int kappa = mapper.last_grouping().num_groups;
  int expected = 1;
  for (int i = 2; i <= kappa; ++i) expected *= i;
  EXPECT_EQ(mapper.last_orders_evaluated(), expected);
}

TEST(GeoDist, SingleOrderWhenSearchDisabled) {
  const mapping::MappingProblem p = random_problem(16, 0.0, 5);
  GeoDistOptions opts;
  opts.search_orders = false;
  GeoDistMapper mapper(opts);
  (void)mapper.map(p);
  EXPECT_EQ(mapper.last_orders_evaluated(), 1);
}

TEST(GeoDist, OrderSearchNeverHurts) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const mapping::MappingProblem p = random_problem(24, 0.2, seed);
    GeoDistOptions search;
    GeoDistOptions no_search;
    no_search.search_orders = false;
    GeoDistMapper with(search), without(no_search);
    const mapping::CostEvaluator eval(p);
    EXPECT_LE(eval.total_cost(with.map(p)), eval.total_cost(without.map(p)));
  }
}

TEST(GeoDist, ParallelOrdersMatchesSerial) {
  const mapping::MappingProblem p = random_problem(24, 0.2, 55);
  GeoDistOptions par, ser;
  par.parallel_orders = true;
  ser.parallel_orders = false;
  GeoDistMapper a(par), b(ser);
  EXPECT_EQ(a.map(p), b.map(p));
}

TEST(GeoDist, BeatsRandomBaselineOnAverage) {
  double geo_total = 0, base_total = 0;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const mapping::MappingProblem p = random_problem(24, 0.2, seed);
    const mapping::CostEvaluator eval(p);
    GeoDistMapper geo;
    mapping::RandomMapper baseline(seed);
    geo_total += eval.total_cost(geo.map(p));
    base_total += eval.total_cost(baseline.map(p));
  }
  EXPECT_LT(geo_total, base_total * 0.8);
}

TEST(GeoDist, GroupingSourceSelection) {
  mapping::MappingProblem p = random_problem(16, 0.0, 5);
  p.site_coords.clear();
  GeoDistOptions opts;
  opts.kappa = 2;  // < M, so grouping is active
  // Explicit coordinates grouping without coordinates: hard error.
  opts.grouping_source = GeoDistOptions::GroupingSource::kCoordinates;
  GeoDistMapper strict(opts);
  EXPECT_THROW(strict.map(p), Error);
  // Auto falls back to latency-based k-medoids.
  opts.grouping_source = GeoDistOptions::GroupingSource::kAuto;
  GeoDistMapper fallback(opts);
  EXPECT_NO_THROW(fallback.map(p));
  EXPECT_EQ(fallback.last_grouping().num_groups, 2);
  // With kappa >= M no clustering is needed at all.
  opts.kappa = 4;
  GeoDistMapper no_cluster(opts);
  EXPECT_NO_THROW(no_cluster.map(p));
}

TEST(Grouping, LatencyMedoidsClusterNearbySites) {
  // On the 4-region cloud, the two US coasts have far lower mutual
  // latency than either has to Ireland or Singapore.
  const net::CloudTopology topo(net::aws_experiment_profile());
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const Grouping g = group_sites_by_latency(model, 2);
  ASSERT_EQ(g.num_groups, 2);
  EXPECT_EQ(g.group_of_site[0], g.group_of_site[1]);  // us-east, us-west
  // Partition invariants.
  std::size_t total = 0;
  for (const auto& members : g.members) total += members.size();
  EXPECT_EQ(total, 4u);
}

TEST(Grouping, LatencyMedoidsSingletonWhenKappaCoversAll) {
  const net::CloudTopology topo(net::aws_experiment_profile());
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  EXPECT_EQ(group_sites_by_latency(model, 9).num_groups, 4);
}

TEST(GeoDist, GuardsFactorialExplosion) {
  Rng rng(5);
  const net::CloudTopology topo(net::synthetic_profile(10, 2, 7));
  mapping::MappingProblem p;
  p.comm = testutil::random_comm(20, 3, rng);
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  GeoDistOptions opts;
  opts.use_grouping = false;  // 10! orders
  opts.max_orders = 5040;
  GeoDistMapper mapper(opts);
  EXPECT_THROW(mapper.map(p), Error);
}

TEST(MonteCarlo, DeterministicAndParallelConsistent) {
  const mapping::MappingProblem p = random_problem(16, 0.2, 9);
  MonteCarloOptions opts;
  opts.samples = 4000;
  opts.parallel = true;
  const MonteCarloResult a = run_monte_carlo(p, opts);
  opts.parallel = false;
  const MonteCarloResult b = run_monte_carlo(p, opts);
  EXPECT_EQ(a.costs, b.costs);
  EXPECT_LE(a.best, a.mean);
  EXPECT_LE(a.mean, a.worst);
}

TEST(MonteCarlo, FractionBelowAndBestOfK) {
  const mapping::MappingProblem p = random_problem(16, 0.0, 19);
  MonteCarloOptions opts;
  opts.samples = 2000;
  const MonteCarloResult result = run_monte_carlo(p, opts);
  EXPECT_DOUBLE_EQ(result.fraction_below(result.best), 0.0);
  EXPECT_DOUBLE_EQ(result.fraction_below(result.worst * 1.01), 1.0);
  const auto curve = result.best_of_k({1, 10, 100, 2000});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i], curve[i - 1]);
  EXPECT_DOUBLE_EQ(curve.back(), result.best);
  EXPECT_THROW(result.best_of_k({0}), Error);
  EXPECT_THROW(result.best_of_k({99999}), Error);
}

TEST(MonteCarlo, GeoDistLandsInTheBestTail) {
  const mapping::MappingProblem p = random_problem(24, 0.2, 4, 5);
  MonteCarloOptions opts;
  opts.samples = 5000;
  const MonteCarloResult mc = run_monte_carlo(p, opts);
  GeoDistMapper geo;
  const double geo_cost =
      mapping::CostEvaluator(p).total_cost(geo.map(p));
  // The paper reports <1% of random mappings beat the algorithm.
  EXPECT_LT(mc.fraction_below(geo_cost), 0.05);
}

TEST(Pipeline, EndToEndProducesValidatedRun) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  Rng rng(8);
  trace::CommMatrix comm = testutil::random_comm(16, 4, rng);
  ConstraintVector constraints = mapping::make_random_constraints(
      16, topo.capacities(), 0.2, rng);

  Pipeline pipeline;
  const PipelineResult result = pipeline.execute(topo, std::move(comm),
                                                 std::move(constraints));
  EXPECT_EQ(result.run.mapper, "Geo-distributed");
  EXPECT_GT(result.run.cost, 0.0);
  // 16 ordered site pairs x 5 default calibration rounds.
  EXPECT_EQ(result.calibration.measurements, 80);
  EXPECT_EQ(static_cast<int>(result.run.mapping.size()), 16);
}

TEST(Pipeline, MakeProblemWiresTopologyFields) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  Rng rng(8);
  const mapping::MappingProblem p = make_problem(
      topo, net::NetworkModel::from_ground_truth(topo),
      testutil::random_comm(16, 4, rng));
  EXPECT_EQ(p.num_sites(), 4);
  EXPECT_EQ(p.capacities, topo.capacities());
  EXPECT_EQ(p.site_coords.size(), 4u);
  EXPECT_TRUE(p.constraints.empty());
}

}  // namespace
}  // namespace geomap::core
