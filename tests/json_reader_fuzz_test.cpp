// Corpus-driven robustness tests for common/json_reader: every mutation
// of a valid artifact — truncation, random byte flips, hostile nesting,
// bad escapes, overflowing numbers — must either parse or throw a typed
// JsonParseError. Nothing may crash, hang, or read past the buffer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "common/json_reader.h"
#include "common/rng.h"

namespace geomap {
namespace {

/// Baseline corpus shaped like the repo's real artifacts (metrics
/// exports, bench baselines, critpath runs).
std::vector<std::string> corpus() {
  return {
      R"({"schema":"geomap.metrics.v1","counters":{"comm.messages":1284,)"
      R"("comm.bytes":9.5e6},"histograms":[{"name":"rank.finish","count":16,)"
      R"("sum":42.25,"min":1.5,"max":4.75}]})",
      R"({"bench":"fault_recovery","cells":[{"name":"n64","makespan":12.5,)"
      R"("retries":7,"detected":true},{"name":"n128","makespan":30.125,)"
      R"("retries":0,"detected":false}]})",
      R"([1,-2.5,0.0,1e-9,"text with \"quotes\" and \\ slashes",null,true,)"
      R"([{"nested":{"deep":[1,2,3]}}]])",
      R"({"spans":[{"name":"migrate/copy","t0":0.5,"t1":1.25,)"
      R"("meta":"{\"src\":0}"},{"name":"migrate/cutover","t0":1.25,)"
      R"("t1":1.3125,"meta":null}],"unicode":"éA✓"})",
  };
}

/// The contract under test: parse or throw JsonParseError — never
/// anything else, never a crash.
void parse_or_typed_throw(const std::string& text) {
  try {
    (void)parse_json(text);
  } catch (const JsonParseError& e) {
    EXPECT_LE(e.offset(), text.size());
    EXPECT_GE(e.line(), 1);
    EXPECT_GE(e.column(), 1);
  }
  // Any other exception type escapes and fails the test.
}

TEST(JsonReaderFuzzTest, CorpusParsesCleanly) {
  for (const std::string& doc : corpus()) {
    EXPECT_NO_THROW((void)parse_json(doc)) << doc;
  }
}

TEST(JsonReaderFuzzTest, EveryPrefixTruncationIsHandled) {
  for (const std::string& doc : corpus()) {
    for (std::size_t len = 0; len < doc.size(); ++len) {
      parse_or_typed_throw(doc.substr(0, len));
    }
  }
}

TEST(JsonReaderFuzzTest, SeededByteMutationsAreHandled) {
  Rng rng(20260806);
  for (const std::string& doc : corpus()) {
    for (int round = 0; round < 400; ++round) {
      std::string mutated = doc;
      const int edits = 1 + static_cast<int>(rng.uniform_index(3));
      for (int e = 0; e < edits; ++e) {
        const std::size_t at = rng.uniform_index(mutated.size());
        switch (rng.uniform_index(3)) {
          case 0:  // flip to an arbitrary byte (including NUL / high bit)
            mutated[at] = static_cast<char>(rng.uniform_index(256));
            break;
          case 1:  // delete
            mutated.erase(at, 1);
            break;
          default:  // duplicate a structural character
            mutated.insert(at, 1, "{}[],:\"\\0"[rng.uniform_index(9)]);
            break;
        }
        if (mutated.empty()) break;
      }
      parse_or_typed_throw(mutated);
    }
  }
}

TEST(JsonReaderFuzzTest, DeepNestingIsRejectedNotOverflowed) {
  // Far past the cap: without the depth limit this is a stack bomb.
  const int depth = 200000;
  std::string bomb(static_cast<std::size_t>(depth), '[');
  EXPECT_THROW((void)parse_json(bomb), JsonParseError);
  std::string closed = bomb + std::string(static_cast<std::size_t>(depth), ']');
  EXPECT_THROW((void)parse_json(closed), JsonParseError);
  std::string objects;
  for (int i = 0; i < depth; ++i) objects += R"({"k":)";
  EXPECT_THROW((void)parse_json(objects), JsonParseError);

  // At or under the cap parses fine.
  const int ok_depth = kJsonMaxDepth;
  std::string nested(static_cast<std::size_t>(ok_depth), '[');
  nested += "1";
  nested += std::string(static_cast<std::size_t>(ok_depth), ']');
  EXPECT_NO_THROW((void)parse_json(nested));
}

TEST(JsonReaderFuzzTest, InvalidEscapesThrowTyped) {
  const std::vector<std::string> bad = {
      R"("\q")",      R"("\u12")",   R"("\u12zz")", R"("\)",
      R"("\u")",      R"("unterminated)", R"("tail\)",
  };
  for (const std::string& doc : bad) {
    EXPECT_THROW((void)parse_json(doc), JsonParseError) << doc;
  }
  // Valid escapes still round-trip.
  EXPECT_EQ(parse_json(R"("a\tbA")").as_string(), "a\tbA");
}

TEST(JsonReaderFuzzTest, NonFiniteNumbersAreRejected) {
  EXPECT_THROW((void)parse_json("1e999"), JsonParseError);
  EXPECT_THROW((void)parse_json("-1e999"), JsonParseError);
  EXPECT_THROW((void)parse_json(R"({"v":[1,2,1e999]})"), JsonParseError);
  EXPECT_NO_THROW((void)parse_json("1e308"));
  EXPECT_NO_THROW((void)parse_json("-0.0"));
}

TEST(JsonReaderFuzzTest, ErrorsCarryPosition) {
  try {
    (void)parse_json("{\"a\": 1,\n \"b\": }");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 1);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonReaderFuzzTest, MissingFileThrowsInvalidArgumentNotParseError) {
  try {
    (void)parse_json_file("/nonexistent/geomap-artifact.json");
    FAIL() << "expected InvalidArgument";
  } catch (const JsonParseError&) {
    FAIL() << "missing file misreported as a parse error";
  } catch (const InvalidArgument&) {
    // Expected: distinct from unparseable (obsctl maps these to
    // different exit codes).
  }
}

}  // namespace
}  // namespace geomap
