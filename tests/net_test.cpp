// Tests for the network substrate: geography, instance catalogs, cloud
// ground truth reproducing the paper's Tables 1-3 shapes, and the
// simulated SKaMPI calibration.

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "net/geo.h"
#include "net/instance.h"
#include "net/network_model.h"

namespace geomap::net {
namespace {

SiteId find_site(const CloudTopology& topo, const std::string& prefix) {
  for (SiteId s = 0; s < topo.num_sites(); ++s) {
    if (topo.site(s).name.rfind(prefix, 0) == 0) return s;
  }
  throw InvalidArgument("no site with prefix " + prefix);
}

TEST(Geo, HaversineKnownDistances) {
  const GeoCoordinate nyc{40.7, -74.0};
  const GeoCoordinate london{51.5, -0.1};
  EXPECT_NEAR(haversine_km(nyc, london), 5570, 60);
  EXPECT_DOUBLE_EQ(haversine_km(nyc, nyc), 0.0);
}

TEST(Geo, HaversineSymmetric) {
  const GeoCoordinate a{1.35, 103.8};
  const GeoCoordinate b{38.9, -77.4};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(Geo, EuclideanWrapsAntimeridian) {
  const GeoCoordinate tokyo{35.6, 139.7};
  const GeoCoordinate oregon{45.9, -119.3};
  // Through the antimeridian the longitude gap is ~101 degrees, not 259.
  EXPECT_LT(euclidean_deg_sq(tokyo, oregon), 102.0 * 102.0 + 11.0 * 11.0);
}

TEST(Instance, CatalogHasPaperTypes) {
  EXPECT_EQ(ec2_instance_types().size(), 6u);
  EXPECT_DOUBLE_EQ(ec2_instance("m1.small").intra_bandwidth_mbps, 15.0);
  EXPECT_DOUBLE_EQ(ec2_instance("c3.8xlarge").intra_bandwidth_mbps, 148.0);
  EXPECT_THROW(ec2_instance("t2.nano"), InvalidArgument);
}

TEST(Cloud, Aws2016HasElevenRegions) {
  const CloudTopology topo(aws2016_profile());
  EXPECT_EQ(topo.num_sites(), 11);
  EXPECT_EQ(topo.total_nodes(), 11 * 16);
}

TEST(Cloud, ExperimentProfileIsTheFourPaperRegions) {
  const CloudTopology topo(aws_experiment_profile(16));
  EXPECT_EQ(topo.num_sites(), 4);
  EXPECT_EQ(topo.instance().name, "m4.xlarge");
  for (const char* prefix :
       {"us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1"}) {
    EXPECT_NO_THROW(find_site(topo, prefix)) << prefix;
  }
}

// Paper Observation 1: intra-region bandwidth >> cross-region bandwidth.
TEST(Cloud, IntraBandwidthDominatesCrossRegion) {
  const CloudTopology topo(aws2016_profile("c3.8xlarge"));
  for (SiteId k = 0; k < topo.num_sites(); ++k) {
    for (SiteId l = 0; l < topo.num_sites(); ++l) {
      if (k == l) continue;
      EXPECT_GT(topo.true_bandwidth(k, k), 3.0 * topo.true_bandwidth(k, l))
          << topo.site(k).name << " -> " << topo.site(l).name;
    }
  }
}

// Paper Observation 2 / Table 2: bandwidth decays and latency grows with
// geographic distance (US East -> US West vs Ireland vs Singapore).
TEST(Cloud, Table2ShapeBandwidthDecaysWithDistance) {
  const CloudTopology topo(aws2016_profile("c3.8xlarge"));
  const SiteId east = find_site(topo, "us-east-1");
  const SiteId west = find_site(topo, "us-west-1");
  const SiteId ireland = find_site(topo, "eu-west-1");
  const SiteId singapore = find_site(topo, "ap-southeast-1");

  const double bw_west = topo.true_bandwidth(east, west) / 1e6;
  const double bw_ire = topo.true_bandwidth(east, ireland) / 1e6;
  const double bw_sgp = topo.true_bandwidth(east, singapore) / 1e6;
  EXPECT_GT(bw_west, bw_ire);
  EXPECT_GT(bw_ire, bw_sgp);
  // Close to the paper's measured 21 / 19 / 6.6 MB/s (power-law fit).
  EXPECT_NEAR(bw_west, 21.0, 5.0);
  EXPECT_NEAR(bw_ire, 19.0, 5.0);
  EXPECT_NEAR(bw_sgp, 6.6, 1.5);

  EXPECT_LT(topo.true_latency(east, west), topo.true_latency(east, ireland));
  EXPECT_LT(topo.true_latency(east, ireland),
            topo.true_latency(east, singapore));
}

// Paper Table 3 shape for Azure Standard D2.
TEST(Cloud, Table3ShapeAzure) {
  const CloudTopology topo(azure2016_profile());
  const SiteId east_us = find_site(topo, "East US");
  const SiteId west_eu = find_site(topo, "West Europe");
  const SiteId japan = find_site(topo, "Japan East");

  EXPECT_NEAR(topo.true_bandwidth(east_us, east_us) / 1e6, 62.0, 1.0);
  EXPECT_NEAR(topo.true_bandwidth(east_us, west_eu) / 1e6, 2.9, 1.0);
  EXPECT_NEAR(topo.true_bandwidth(east_us, japan) / 1e6, 1.3, 0.6);
  // Latencies ~0.82 / ~42 / ~77 ms.
  EXPECT_NEAR(topo.true_latency(east_us, east_us) * 1e3, 0.82, 0.1);
  EXPECT_NEAR(topo.true_latency(east_us, west_eu) * 1e3, 42.0, 10.0);
  EXPECT_NEAR(topo.true_latency(east_us, japan) * 1e3, 77.0, 12.0);
}

TEST(Cloud, GroundTruthIsAsymmetric) {
  const CloudTopology topo(aws_experiment_profile());
  bool any_asymmetric = false;
  for (SiteId k = 0; k < topo.num_sites(); ++k)
    for (SiteId l = 0; l < topo.num_sites(); ++l)
      if (k != l && topo.true_bandwidth(k, l) != topo.true_bandwidth(l, k))
        any_asymmetric = true;
  EXPECT_TRUE(any_asymmetric);
}

TEST(Cloud, SyntheticProfileDeterministicInSeed) {
  const CloudProfile a = synthetic_profile(6, 8, 99);
  const CloudProfile b = synthetic_profile(6, 8, 99);
  const CloudProfile c = synthetic_profile(6, 8, 100);
  ASSERT_EQ(a.sites.size(), 6u);
  EXPECT_DOUBLE_EQ(a.sites[3].coord.latitude_deg, b.sites[3].coord.latitude_deg);
  EXPECT_NE(a.sites[3].coord.latitude_deg, c.sites[3].coord.latitude_deg);
}

TEST(NetworkModel, ValidatesInputs) {
  Matrix lat = Matrix::square(2, 0.001);
  Matrix bw = Matrix::square(2, 1e6);
  EXPECT_NO_THROW(NetworkModel(lat, bw));
  bw(0, 1) = 0.0;
  EXPECT_THROW(NetworkModel(lat, bw), Error);
  Matrix lat3 = Matrix::square(3, 0.001);
  EXPECT_THROW(NetworkModel(lat3, Matrix::square(2, 1e6)), Error);
}

TEST(NetworkModel, AlphaBetaTransferTime) {
  Matrix lat = Matrix::square(2, 0.0);
  lat(0, 1) = 0.05;
  Matrix bw = Matrix::square(2, 1e6);
  bw(0, 1) = 2e6;
  const NetworkModel model(lat, bw);
  EXPECT_DOUBLE_EQ(model.transfer_time(0, 1, 4e6), 0.05 + 2.0);
  EXPECT_DOUBLE_EQ(model.message_cost(0, 1, 10, 4e6), 0.5 + 2.0);
}

TEST(Calibration, RecoverGroundTruthWithinNoise) {
  const CloudTopology topo(aws_experiment_profile());
  CalibrationOptions opts;
  opts.rounds = 10;
  opts.samples_per_round = 8;
  const CalibrationResult result = Calibrator(opts).calibrate(topo);
  for (SiteId k = 0; k < topo.num_sites(); ++k) {
    for (SiteId l = 0; l < topo.num_sites(); ++l) {
      const double true_bw = topo.true_bandwidth(k, l);
      const double measured_bw = result.model.bandwidth(k, l);
      EXPECT_NEAR(measured_bw / true_bw, 1.0, 0.05) << k << "," << l;
      const double true_lat = topo.true_latency(k, l);
      EXPECT_NEAR(result.model.latency(k, l) / true_lat, 1.0, 0.08)
          << k << "," << l;
    }
  }
}

TEST(Calibration, DeterministicInSeed) {
  const CloudTopology topo(aws_experiment_profile());
  const CalibrationResult a = Calibrator().calibrate(topo);
  const CalibrationResult b = Calibrator().calibrate(topo);
  EXPECT_EQ(a.model.bandwidth(0, 1), b.model.bandwidth(0, 1));
}

// The paper's Section 4.2 overhead claim: site-pair calibration is
// O(M^2), all-node-pairs is O(N^2) — 4 sites with 128 nodes each need
// 16 site pairs instead of 130816 node pairs.
TEST(Calibration, MeasurementBudgetClaim) {
  EXPECT_EQ(Calibrator::site_pair_measurements(4), 16);
  EXPECT_EQ(Calibrator::node_pair_measurements(4 * 128), 130816);
  const CloudTopology topo(aws_experiment_profile());
  CalibrationOptions opts;
  opts.rounds = 1;
  const CalibrationResult result = Calibrator(opts).calibrate(topo);
  EXPECT_EQ(result.measurements, 16);
  // Critical path ~ minutes (the paper quotes 12 minutes for 4 sites).
  EXPECT_LE(result.modeled_overhead_seconds, 15 * 60.0);
}

}  // namespace
}  // namespace geomap::net
