// Migration executor (src/migrate/executor.h): two-phase protocol
// states, rollback and replan under faults, idempotent commit,
// collector bit-identity, and the chaos soak harness end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"
#include "migrate/executor.h"
#include "migrate/soak.h"
#include "obs/collector.h"
#include "test_util.h"

namespace geomap::migrate {
namespace {

/// World for the protocol tests: 6 processes over the 4-region AWS
/// experiment cloud with two spare nodes per site, no pins.
mapping::MappingProblem protocol_problem() {
  return testutil::random_problem(6, 0.0, /*seed=*/7, /*degree=*/3,
                                  /*slack=*/2);
}

const Mapping kCurrent{0, 0, 1, 1, 2, 2};

MigrationOptions small_options() {
  MigrationOptions o;
  o.bytes_per_process = 10.0 * kMiB;
  o.chunk_bytes = 1.0 * kMiB;
  return o;
}

/// Certify a report's journal with the invariant checker, using the
/// executor's true worst-case attempt bound.
std::vector<fault::InvariantViolation> certify(
    const MigrationReport& report, const Mapping& initial,
    const mapping::MappingProblem& problem, const fault::FaultPlan& plan,
    const MigrationOptions& options) {
  fault::MigrationInvariantOptions inv;
  inv.planned_bytes_per_process = options.bytes_per_process;
  inv.chunk_bytes = options.chunk_bytes;
  inv.max_retries = options.retry.max_retries;
  inv.max_copy_attempts = options.max_copy_attempts + options.max_replans +
                          options.max_emergency_attempts;
  inv.horizon = report.finish_time;
  return fault::check_migration_invariants(report.events, initial,
                                           problem.capacities, plan, inv);
}

int commit_count(const MigrationReport& report, ProcessId p) {
  int count = 0;
  for (const fault::MigrationEvent& e : report.events) {
    if (e.kind == fault::MigrationEventKind::kCommit && e.process == p) ++count;
  }
  return count;
}

TEST(MigrateExecutorTest, HealthyMigrationCommitsEverything) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 3, 1, 1, 2, 2};
  const fault::FaultPlan plan;
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, small_options());

  EXPECT_EQ(report.final_mapping, target);
  EXPECT_EQ(report.processes_planned, 2);
  EXPECT_EQ(report.processes_committed, 2);
  EXPECT_EQ(report.rollbacks, 0);
  EXPECT_EQ(report.replans, 0);
  EXPECT_TRUE(report.complete);
  EXPECT_DOUBLE_EQ(report.bytes_sent, report.bytes_planned);
  EXPECT_GT(report.migration_seconds, 0.0);
  EXPECT_GT(report.max_downtime, 0.0);
  for (ProcessId p : {0, 1}) {
    const ProcessMigrationRecord& rec = report.processes[static_cast<std::size_t>(p)];
    EXPECT_EQ(rec.outcome, ProcessOutcome::kCommitted);
    EXPECT_GE(rec.prepare_time, 0.0);
    EXPECT_GT(rec.commit_time, rec.prepare_time);
    EXPECT_EQ(commit_count(report, p), 1);
  }
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, small_options()).empty());
}

TEST(MigrateExecutorTest, NoOpPlanMovesNothing) {
  const mapping::MappingProblem problem = protocol_problem();
  const fault::FaultPlan plan;
  const MigrationReport report = execute_migration(problem, kCurrent, kCurrent,
                                                   plan, 0.0, small_options());
  EXPECT_EQ(report.processes_planned, 0);
  EXPECT_EQ(report.bytes_sent, 0.0);
  EXPECT_EQ(report.migration_seconds, 0.0);
  EXPECT_EQ(report.final_mapping, kCurrent);
  EXPECT_TRUE(report.events.empty());
  // The application still replays (and defines finish_time).
  EXPECT_GT(report.app_makespan, 0.0);
}

TEST(MigrateExecutorTest, DeterministicAndCollectorBitIdentical) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 3, 1, 1, 2, 2};
  fault::FaultPlan plan(11);
  plan.add_site_degradation(1, 0.0, 5.0, 0.5, 2.0);
  plan.add_message_loss(0, 3, 0.0, fault::kNoEnd, 0.3);

  const MigrationReport a =
      execute_migration(problem, kCurrent, target, plan, 0.0, small_options());
  const MigrationReport b =
      execute_migration(problem, kCurrent, target, plan, 0.0, small_options());
  obs::Collector collector;
  MigrationOptions instrumented = small_options();
  instrumented.collector = &collector;
  const MigrationReport c =
      execute_migration(problem, kCurrent, target, plan, 0.0, instrumented);

  for (const MigrationReport* other : {&b, &c}) {
    EXPECT_EQ(a.final_mapping, other->final_mapping);
    EXPECT_EQ(a.bytes_sent, other->bytes_sent);
    EXPECT_EQ(a.chunk_retries, other->chunk_retries);
    EXPECT_EQ(a.rollbacks, other->rollbacks);
    EXPECT_EQ(a.finish_time, other->finish_time);
    EXPECT_EQ(a.app_makespan, other->app_makespan);
    ASSERT_EQ(a.events.size(), other->events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].kind, other->events[i].kind);
      EXPECT_EQ(a.events[i].t, other->events[i].t);
      EXPECT_EQ(a.events[i].process, other->events[i].process);
      EXPECT_EQ(a.events[i].bytes, other->events[i].bytes);
    }
  }
  // The instrumented run exported migration.* metrics.
  EXPECT_EQ(collector.metrics().counter("migration.commits").value(), 2u);
  EXPECT_GT(collector.metrics().counter("migration.bytes_sent").value(), 0u);
}

TEST(MigrateExecutorTest, TransientDestinationOutageMidCopyRollsBackThenCommits) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 0, 1, 1, 2, 2};  // only p0 moves
  const MigrationOptions options = small_options();

  // Calibrate: where is the copy in a fault-free run?
  const fault::FaultPlan healthy;
  const MigrationReport calibration =
      execute_migration(problem, kCurrent, target, healthy, 0.0, options);
  const ProcessMigrationRecord& c0 = calibration.processes[0];
  ASSERT_EQ(c0.outcome, ProcessOutcome::kCommitted);
  const Seconds mid = 0.5 * (c0.prepare_time + c0.commit_time);

  // Kill the destination transiently across the middle of that copy.
  fault::FaultPlan plan(3);
  plan.add_site_outage(3, mid, c0.commit_time + 2.0);
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);

  const ProcessMigrationRecord& rec = report.processes[0];
  EXPECT_GE(rec.rollbacks, 1);
  EXPECT_EQ(rec.outcome, ProcessOutcome::kCommitted);
  EXPECT_EQ(report.final_mapping[0], 3);
  EXPECT_EQ(commit_count(report, 0), 1);
  EXPECT_GT(rec.commit_time, c0.commit_time);  // paid the outage
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, PermanentDestinationOutageMidCopyReplans) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 0, 1, 1, 2, 2};
  const MigrationOptions options = small_options();

  const fault::FaultPlan healthy;
  const MigrationReport calibration =
      execute_migration(problem, kCurrent, target, healthy, 0.0, options);
  const ProcessMigrationRecord& c0 = calibration.processes[0];
  const Seconds mid = 0.5 * (c0.prepare_time + c0.commit_time);

  fault::FaultPlan plan(4);
  plan.add_site_outage(3, mid);  // permanent
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);

  EXPECT_GE(report.replans, 1);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.processes_abandoned, 0);
  EXPECT_NE(report.final_mapping[0], 3);
  for (ProcessId p = 0; p < 6; ++p) {
    const SiteId s = report.final_mapping[static_cast<std::size_t>(p)];
    const bool dead = plan.site_down(s, report.finish_time) &&
                      plan.next_site_up(s, report.finish_time) == fault::kNoEnd;
    EXPECT_FALSE(dead) << "process " << p << " ended on the dead site";
  }
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, WatchReplansWhenACommittedSiteDies) {
  const mapping::MappingProblem problem = protocol_problem();
  const MigrationOptions options = small_options();
  // No planned moves at all: the only trigger is the outage watch.
  fault::FaultPlan plan(5);
  plan.add_site_outage(0, 1.0);  // permanent; p0 and p1 live there

  const MigrationReport report =
      execute_migration(problem, kCurrent, kCurrent, plan, 0.0, options);

  EXPECT_GE(report.replans, 1);
  EXPECT_TRUE(report.complete);
  EXPECT_NE(report.final_mapping[0], 0);
  EXPECT_NE(report.final_mapping[1], 0);
  EXPECT_EQ(report.processes_committed, 2);
  // Relocations off a dead source fetch state from a surviving replica,
  // never from the dead site itself.
  for (const fault::MigrationEvent& e : report.events) {
    if (e.kind == fault::MigrationEventKind::kChunk) EXPECT_NE(e.site_from, 0);
  }
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, CommitControlLossForcesIdempotentCutover) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 0, 1, 1, 2, 2};
  const MigrationOptions options = small_options();

  const fault::FaultPlan healthy;
  const MigrationReport calibration =
      execute_migration(problem, kCurrent, target, healthy, 0.0, options);
  const ProcessMigrationRecord& c0 = calibration.processes[0];
  const Seconds last_chunk_start = c0.commit_time - c0.downtime;

  // Certain loss from just after the final chunk's loss decision: every
  // commit-control attempt is lost, the cutover is forced through, and
  // it still applies exactly once.
  fault::FaultPlan plan(6);
  plan.add_message_loss(0, 3, last_chunk_start + 1e-9, fault::kNoEnd, 1.0);
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);

  const ProcessMigrationRecord& rec = report.processes[0];
  EXPECT_EQ(rec.outcome, ProcessOutcome::kCommitted);
  EXPECT_TRUE(rec.commit_forced);
  EXPECT_EQ(rec.commit_retries, options.retry.max_retries + 1);
  EXPECT_EQ(commit_count(report, 0), 1);
  EXPECT_EQ(report.final_mapping[0], 3);
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, CopyBudgetExhaustionSettlesAtLiveSource) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 0, 1, 1, 2, 2};
  MigrationOptions options = small_options();
  options.max_copy_attempts = 1;

  const fault::FaultPlan healthy;
  const MigrationReport calibration =
      execute_migration(problem, kCurrent, target, healthy, 0.0, options);
  const ProcessMigrationRecord& c0 = calibration.processes[0];
  const Seconds mid = 0.5 * (c0.prepare_time + c0.commit_time);

  fault::FaultPlan plan(8);
  plan.add_site_outage(3, mid, mid + 500.0);  // long transient outage
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);

  const ProcessMigrationRecord& rec = report.processes[0];
  EXPECT_EQ(rec.rollbacks, 1);
  EXPECT_EQ(rec.outcome, ProcessOutcome::kRolledBack);
  EXPECT_EQ(report.final_mapping[0], 0);  // stayed home
  EXPECT_EQ(commit_count(report, 0), 0);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, LossyChunksRetryWithinByteBudget) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 0, 1, 1, 2, 2};
  const MigrationOptions options = small_options();
  fault::FaultPlan plan(9);
  plan.add_message_loss(0, 3, 0.0, fault::kNoEnd, 0.4);

  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);
  EXPECT_GT(report.chunk_retries, 0);
  EXPECT_GT(report.bytes_sent, report.bytes_planned);
  EXPECT_EQ(report.processes_committed, 1);
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, StatelessProcessesCommitWithoutChunks) {
  const mapping::MappingProblem problem = protocol_problem();
  const Mapping target{3, 3, 1, 1, 2, 2};
  MigrationOptions options = small_options();
  options.bytes_per_process = 0;
  const fault::FaultPlan plan;
  const MigrationReport report =
      execute_migration(problem, kCurrent, target, plan, 0.0, options);
  EXPECT_EQ(report.processes_committed, 2);
  EXPECT_EQ(report.bytes_sent, 0.0);
  EXPECT_EQ(report.final_mapping, target);
  EXPECT_TRUE(certify(report, kCurrent, problem, plan, options).empty());
}

TEST(MigrateExecutorTest, ValidatesInputs) {
  const mapping::MappingProblem problem = protocol_problem();
  const fault::FaultPlan plan;
  Mapping short_target{0, 0, 1};
  EXPECT_THROW(execute_migration(problem, kCurrent, short_target, plan, 0.0),
               Error);
  Mapping bad_site = kCurrent;
  bad_site[0] = 9;
  EXPECT_THROW(execute_migration(problem, kCurrent, bad_site, plan, 0.0),
               Error);
  MigrationOptions bad = small_options();
  bad.chunk_bytes = 0;
  EXPECT_THROW(execute_migration(problem, kCurrent, kCurrent, plan, 0.0, bad),
               Error);
}

// ---------------------------------------------------------------------------
// Chaos soak: the full observe → detect → remap → migrate loop across
// seeded fault plans, certified case by case. Small here; the CI smoke
// and bench --chaos run the wide version.

TEST(ChaosSoakTest, SmallSoakHasNoInvariantViolations) {
  SoakOptions options;
  options.ranks = 8;
  options.app_rounds = 12;
  const SoakReport report = run_chaos_soak({1, 2, 3, 4, 5}, options);
  ASSERT_EQ(report.cases.size(), 5u);
  EXPECT_EQ(report.detected_cases + report.fallback_cases, 5);
  for (const SoakCase& c : report.cases) {
    EXPECT_TRUE(c.violations.empty())
        << "seed " << c.seed << ": " << c.violations.front().message;
    // Every case must end with no process on the dead site.
    for (SiteId s : c.report.final_mapping) EXPECT_NE(s, c.primary_site);
  }
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.total_committed, 0);
}

}  // namespace
}  // namespace geomap::migrate
