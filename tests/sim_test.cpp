// Tests for the simulator: analytic alpha-beta cost agreement with the
// CostEvaluator, contention replay invariants, and the perf model.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mapping/cost.h"
#include "mapping/random_mapper.h"
#include "sim/netsim.h"
#include "sim/perf_model.h"
#include "test_util.h"

namespace geomap::sim {
namespace {

using testutil::random_problem;

TEST(NetSim, AlphaBetaCostEqualsCostEvaluator) {
  const mapping::MappingProblem p = random_problem(20, 0.2, 3);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping m = mapping::RandomMapper::draw(p, rng);
    EXPECT_DOUBLE_EQ(alpha_beta_cost(p.comm, p.network, m),
                     mapping::CostEvaluator(p).total_cost(m));
  }
}

TEST(NetSim, ReplayTotalTransferEqualsAnalyticCost) {
  const mapping::MappingProblem p = random_problem(20, 0.2, 7);
  Rng rng(9);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  const ContentionResult r = replay_with_contention(p.comm, p.network, m);
  EXPECT_NEAR(r.total_transfer_seconds, alpha_beta_cost(p.comm, p.network, m),
              1e-9);
}

TEST(NetSim, ReplayMakespanBounds) {
  const mapping::MappingProblem p = random_problem(24, 0.0, 11);
  Rng rng(13);
  const Mapping m = mapping::RandomMapper::draw(p, rng);
  const ContentionResult r = replay_with_contention(p.comm, p.network, m);
  // Makespan at least the busiest link's serialized work, at most the
  // total serialized work.
  EXPECT_GE(r.makespan, r.busiest_link_seconds * (1 - 1e-12));
  EXPECT_LE(r.makespan, r.total_transfer_seconds * (1 + 1e-12));
  EXPECT_GT(r.makespan, 0.0);
}

TEST(NetSim, ContentionSerializesSharedLink) {
  // Two processes on site 0 each send 1 MB to two processes on site 1:
  // both flows share link (0,1) and must serialize; with the flows on
  // disjoint site pairs they run concurrently.
  trace::CommMatrix::Builder b(4);
  b.add_message(0, 1, 1e6, 1);
  b.add_message(2, 3, 1e6, 1);
  const trace::CommMatrix comm = b.build();

  Matrix lat = Matrix::square(3, 0.0);
  Matrix bw = Matrix::square(3, 1e6);
  const net::NetworkModel model(lat, bw);

  const ContentionResult shared =
      replay_with_contention(comm, model, {0, 1, 0, 1});
  const ContentionResult disjoint =
      replay_with_contention(comm, model, {0, 1, 2, 1});
  EXPECT_NEAR(shared.makespan, 2.0, 1e-9);    // serialized
  EXPECT_NEAR(disjoint.makespan, 1.0, 1e-9);  // parallel links
}

TEST(NetSim, IntraSiteTrafficNeverQueues) {
  trace::CommMatrix::Builder b(4);
  b.add_message(0, 1, 1e6, 1);
  b.add_message(2, 3, 1e6, 1);
  const trace::CommMatrix comm = b.build();
  Matrix lat = Matrix::square(1, 0.0);
  Matrix bw = Matrix::square(1, 1e6);
  const net::NetworkModel model(lat, bw);
  const ContentionResult r =
      replay_with_contention(comm, model, {0, 0, 0, 0});
  EXPECT_NEAR(r.makespan, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.busiest_link_seconds, 0.0);
}

TEST(NetSim, ImprovementPercent) {
  const mapping::MappingProblem p = random_problem(16, 0.0, 21);
  Rng rng(23);
  const Mapping base = mapping::RandomMapper::draw(p, rng);
  EXPECT_DOUBLE_EQ(comm_improvement_percent(p.comm, p.network, base, base),
                   0.0);
}

TEST(PerfModel, TotalImprovementDilutedByComputeShare) {
  // 10 s comm + 30 s compute; halving comm saves 5/40 = 12.5% total.
  const PerfBreakdown base{10.0, 30.0, 0.0};
  EXPECT_DOUBLE_EQ(total_improvement_percent(base, 5.0), 12.5);
  // Pure communication job: the full 50%.
  const PerfBreakdown pure{10.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(total_improvement_percent(pure, 5.0), 50.0);
  EXPECT_THROW(total_improvement_percent(PerfBreakdown{}, 1.0), Error);
}

}  // namespace
}  // namespace geomap::sim
