// Regression-gate engine tests (obs/regress, the core of `geomap-obsctl
// diff/check`): dotted-key flattening, glob matching, and the comparison
// semantics the CI bench-regress job relies on — a >10% watched increase
// fails, improvements and unwatched drift never do, and a watched key
// that vanishes from the current artifact fails loudly.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/json_reader.h"
#include "obs/regress.h"

namespace geomap {
namespace {

TEST(Glob, LiteralAndWildcardMatching) {
  EXPECT_TRUE(obs::glob_match("abc", "abc"));
  EXPECT_FALSE(obs::glob_match("abc", "abd"));
  EXPECT_FALSE(obs::glob_match("abc", "abcd"));
  EXPECT_TRUE(obs::glob_match("*", ""));
  EXPECT_TRUE(obs::glob_match("*", "anything.at.all"));
  // `*` crosses dots: one pattern covers a whole subtree of keys.
  EXPECT_TRUE(obs::glob_match("runs.*.analysis.makespan_seconds",
                              "runs.0.analysis.makespan_seconds"));
  EXPECT_TRUE(obs::glob_match("runs.*.analysis.components.*",
                              "runs.2.analysis.components.alpha_seconds"));
  EXPECT_FALSE(obs::glob_match("runs.*.analysis.makespan_seconds",
                               "runs.0.analysis.path_seconds"));
  // `?` is exactly one byte.
  EXPECT_TRUE(obs::glob_match("run?", "runs"));
  EXPECT_FALSE(obs::glob_match("run?", "run"));
  EXPECT_FALSE(obs::glob_match("run?", "runss"));
  // Multiple stars require backtracking.
  EXPECT_TRUE(obs::glob_match("a*b*c", "a.x.b.y.b.z.c"));
  EXPECT_FALSE(obs::glob_match("a*b*c", "a.x.c"));
  EXPECT_TRUE(obs::glob_match("*seconds", "total.alpha_seconds"));
}

TEST(Flatten, NumericLeavesGetDottedSortedKeys) {
  const JsonValue doc = parse_json(R"({
    "meta": {"seed": 7, "bench": "x"},
    "b": {"inner": 2.5, "skipped": "string", "flag": true},
    "a": [1.0, {"deep": 4.0}],
    "z": null
  })");
  const std::vector<std::pair<std::string, double>> leaves =
      obs::flatten_numeric(doc);
  ASSERT_EQ(leaves.size(), 3u);  // meta skipped; strings/bools/null too
  EXPECT_EQ(leaves[0].first, "a.0");
  EXPECT_DOUBLE_EQ(leaves[0].second, 1.0);
  EXPECT_EQ(leaves[1].first, "a.1.deep");
  EXPECT_DOUBLE_EQ(leaves[1].second, 4.0);
  EXPECT_EQ(leaves[2].first, "b.inner");
  EXPECT_DOUBLE_EQ(leaves[2].second, 2.5);

  // Asked to keep meta, its numeric leaves appear too.
  const std::vector<std::pair<std::string, double>> with_meta =
      obs::flatten_numeric(doc, /*skip_meta=*/false);
  ASSERT_EQ(with_meta.size(), 4u);
  EXPECT_EQ(with_meta[3].first, "meta.seed");
}

JsonValue critpath_like(double makespan, double alpha) {
  std::string text = R"({
    "meta": {"timestamp": "2026-01-01T00:00:00Z"},
    "runs": [{
      "run": 0,
      "analysis": {
        "makespan_seconds": )" + std::to_string(makespan) + R"(,
        "components": {"alpha_seconds": )" + std::to_string(alpha) + R"(},
        "unwatched_extra": 1.0
      }
    }]
  })";
  return parse_json(text);
}

obs::RegressOptions watch_makespan() {
  obs::RegressOptions options;
  options.watch = {"runs.*.analysis.makespan_seconds",
                   "runs.*.analysis.components.*"};
  return options;
}

TEST(Regress, TwentyPercentSlowdownFailsDefaultThreshold) {
  const JsonValue baseline = critpath_like(10.0, 2.0);
  const JsonValue current = critpath_like(12.0, 2.0);  // +20%
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, watch_makespan());
  EXPECT_TRUE(report.failed);
  bool found = false;
  for (const obs::RegressRow& row : report.rows) {
    if (row.key == "runs.0.analysis.makespan_seconds") {
      found = true;
      EXPECT_TRUE(row.watched);
      EXPECT_TRUE(row.regressed);
      EXPECT_DOUBLE_EQ(row.delta, 2.0);
      EXPECT_NEAR(row.delta_pct, 20.0, 1e-9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Regress, SmallDriftAndImprovementsPass) {
  const JsonValue baseline = critpath_like(10.0, 2.0);
  // +5% makespan, improved alpha: both under the 10% gate.
  const obs::RegressReport drift = obs::compare_artifacts(
      baseline, critpath_like(10.5, 1.5), watch_makespan());
  EXPECT_FALSE(drift.failed);
  // A large *improvement* never fails — lower is better repo-wide.
  const obs::RegressReport better = obs::compare_artifacts(
      baseline, critpath_like(5.0, 0.5), watch_makespan());
  EXPECT_FALSE(better.failed);
  for (const obs::RegressRow& row : better.rows) {
    EXPECT_FALSE(row.regressed);
  }
}

TEST(Regress, UnwatchedLeavesCannotFailTheGate) {
  JsonValue baseline = parse_json(
      R"({"runs": [{"analysis": {"makespan_seconds": 10.0,
          "unrelated": 1.0}}]})");
  JsonValue current = parse_json(
      R"({"runs": [{"analysis": {"makespan_seconds": 10.0,
          "unrelated": 100.0}}]})");
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, watch_makespan());
  EXPECT_FALSE(report.failed);
  bool saw_unrelated = false;
  for (const obs::RegressRow& row : report.rows) {
    if (row.key == "runs.0.analysis.unrelated") {
      saw_unrelated = true;  // still reported for context
      EXPECT_FALSE(row.watched);
      EXPECT_FALSE(row.regressed);
    }
  }
  EXPECT_TRUE(saw_unrelated);
}

TEST(Regress, EmptyWatchListWatchesEveryLeaf) {
  const JsonValue baseline = parse_json(R"({"anything": {"x": 1.0}})");
  const JsonValue current = parse_json(R"({"anything": {"x": 2.0}})");
  obs::RegressOptions options;  // watch empty
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, options);
  EXPECT_TRUE(report.failed);
}

TEST(Regress, WatchedKeyMissingFromCurrentFails) {
  const JsonValue baseline = critpath_like(10.0, 2.0);
  const JsonValue current = parse_json(R"({"runs": []})");
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, watch_makespan());
  EXPECT_TRUE(report.failed);
  EXPECT_FALSE(report.missing.empty());
}

TEST(Regress, UnwatchedMissingAndAddedKeysAreReportedNotFatal) {
  const JsonValue baseline = parse_json(R"({"gone": 1.0, "same": 2.0})");
  const JsonValue current = parse_json(R"({"same": 2.0, "fresh": 3.0})");
  obs::RegressOptions options;
  options.watch = {"same"};  // neither gone nor fresh is watched
  const obs::RegressReport report =
      obs::compare_artifacts(baseline, current, options);
  EXPECT_FALSE(report.failed);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "gone");
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0], "fresh");
}

TEST(Regress, NearZeroBaselinesCompareAbsolutelyAgainstFloor) {
  // A zero baseline has no meaningful relative delta: the floor decides.
  const JsonValue baseline = parse_json(R"({"stall": 0.0})");
  obs::RegressOptions options;  // floor 1e-9, everything watched
  {
    const obs::RegressReport report = obs::compare_artifacts(
        baseline, parse_json(R"({"stall": 5e-10})"), options);
    EXPECT_FALSE(report.failed);  // below the floor: noise
  }
  {
    const obs::RegressReport report = obs::compare_artifacts(
        baseline, parse_json(R"({"stall": 2e-9})"), options);
    EXPECT_TRUE(report.failed);  // a real appearance of stall time
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(report.rows[0].delta_pct, 0.0);  // not relative
  }
}

TEST(Regress, HigherIsBetterPatternsFailOnDecrease) {
  const JsonValue baseline =
      parse_json(R"({"detection": {"precision": 1.0, "recall": 1.0}})");
  obs::RegressOptions options;
  options.watch = {"-detection.*"};
  // A 20% drop in a '-'-watched quality score fails the default 10% gate.
  {
    const obs::RegressReport report = obs::compare_artifacts(
        baseline,
        parse_json(R"({"detection": {"precision": 0.8, "recall": 1.0}})"),
        options);
    EXPECT_TRUE(report.failed);
    bool found = false;
    for (const obs::RegressRow& row : report.rows) {
      if (row.key == "detection.precision") {
        found = true;
        EXPECT_TRUE(row.watched);
        EXPECT_TRUE(row.regressed);
      }
      if (row.key == "detection.recall") EXPECT_FALSE(row.regressed);
    }
    EXPECT_TRUE(found);
  }
  // An increase in a higher-is-better leaf never fails.
  {
    const JsonValue low =
        parse_json(R"({"detection": {"precision": 0.5, "recall": 0.5}})");
    EXPECT_FALSE(obs::compare_artifacts(low, baseline, options).failed);
  }
  // Small drops inside the threshold pass.
  {
    const obs::RegressReport report = obs::compare_artifacts(
        baseline,
        parse_json(R"({"detection": {"precision": 0.95, "recall": 0.95}})"),
        options);
    EXPECT_FALSE(report.failed);
  }
}

TEST(Regress, MixedDirectionWatchListsKeepBothSemantics) {
  const JsonValue baseline =
      parse_json(R"({"makespan": 10.0, "recall": 1.0})");
  obs::RegressOptions options;
  options.watch = {"makespan", "-recall"};
  // Makespan up + recall down: both fail, each in its own direction.
  const obs::RegressReport both = obs::compare_artifacts(
      baseline, parse_json(R"({"makespan": 12.0, "recall": 0.8})"), options);
  EXPECT_TRUE(both.failed);
  int regressed = 0;
  for (const obs::RegressRow& row : both.rows) regressed += row.regressed;
  EXPECT_EQ(regressed, 2);
  // Makespan down + recall up: both improvements, nothing fails.
  const obs::RegressReport better = obs::compare_artifacts(
      parse_json(R"({"makespan": 10.0, "recall": 0.8})"),
      parse_json(R"({"makespan": 8.0, "recall": 1.0})"), options);
  EXPECT_FALSE(better.failed);
}

TEST(Regress, HigherIsBetterWatchedMissingStillFails) {
  const JsonValue baseline = parse_json(R"({"recall": 1.0})");
  const JsonValue current = parse_json(R"({"other": 1.0})");
  obs::RegressOptions options;
  options.watch = {"-recall"};
  EXPECT_TRUE(obs::compare_artifacts(baseline, current, options).failed);
}

TEST(Regress, ThresholdIsConfigurable) {
  const JsonValue baseline = critpath_like(10.0, 2.0);
  const JsonValue current = critpath_like(12.0, 2.0);  // +20%
  obs::RegressOptions options = watch_makespan();
  options.threshold = 0.25;  // loosened past the slowdown
  EXPECT_FALSE(obs::compare_artifacts(baseline, current, options).failed);
  options.threshold = 0.15;
  EXPECT_TRUE(obs::compare_artifacts(baseline, current, options).failed);
}

}  // namespace
}  // namespace geomap
