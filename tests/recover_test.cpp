// Crash-consistent control plane: WAL format and durability model,
// payload codec round-trips against the live emitters, crash-point
// injection, recovery replay, the requeue-timer-fires-once guarantee,
// and the exhaustive kill-at-every-point matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/crash.h"
#include "fault/fault_plan.h"
#include "migrate/executor.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/eventlog.h"
#include "recover/driver.h"
#include "recover/records.h"
#include "recover/recovery.h"
#include "recover/wal.h"
#include "tenancy/scheduler.h"
#include "tenancy/substrate.h"
#include "test_util.h"

namespace geomap::recover {
namespace {

using fault::CrashInjector;
using fault::CrashTriggered;

constexpr double kMiB = 1024.0 * 1024.0;

/// Fresh temp directory per test, wiped on both ends.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

WalOptions nofsync() {
  WalOptions o;
  o.fsync = false;
  return o;
}

RunBeginRecord small_run() {
  RunBeginRecord rb;
  rb.seed = 9;
  rb.tenants = 4;
  rb.sites = 3;
  rb.policy = "fifo";
  return rb;
}

SchedRequestRecord request_record(int tenant, Seconds t, double severity) {
  SchedRequestRecord r;
  r.tenant = tenant;
  r.request_time = t;
  r.severity = severity;
  return r;
}

int wal_files(const std::string& dir) {
  int n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) n += 1;
  }
  return n;
}

bool any_contains(const std::vector<std::string>& lines,
                  const std::string& needle) {
  for (const std::string& l : lines) {
    if (l.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// WAL format + durability model

TEST(WalTest, AppendSyncRoundTripAndUnsyncedLoss) {
  TempDir dir("geomap-recover-roundtrip");
  {
    Wal wal(dir.str(), nofsync());
    wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
    wal.append(WalRecordType::kSchedRequest, 1.5,
               encode_sched_request(request_record(3, 1.5, 0.25)));
    wal.sync();
    // Buffered but never synced: dies with the process.
    wal.append(WalRecordType::kRunEnd, 2.0, "{}");
  }
  const WalRecovery rec = read_wal(dir.str());
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.dropped_torn, 0);
  EXPECT_EQ(rec.records[0].type, WalRecordType::kRunBegin);
  EXPECT_EQ(rec.records[0].lsn, 1u);
  EXPECT_EQ(rec.records[1].type, WalRecordType::kSchedRequest);
  EXPECT_EQ(rec.records[1].lsn, 2u);
  EXPECT_EQ(rec.records[1].t, 1.5);
  const RunBeginRecord rb = decode_run_begin(rec.records[0].payload);
  EXPECT_EQ(rb.seed, 9u);
  EXPECT_EQ(rb.tenants, 4);
  EXPECT_EQ(rb.sites, 3);
  EXPECT_EQ(rb.policy, "fifo");
  const SchedRequestRecord rq = decode_sched_request(rec.records[1].payload);
  EXPECT_EQ(rq.tenant, 3);
  EXPECT_EQ(rq.request_time, 1.5);
  EXPECT_EQ(rq.severity, 0.25);
  EXPECT_EQ(rec.next_lsn, 3u);
}

TEST(WalTest, NewGenerationStartsFreshSegmentWithMonotonicLsns) {
  TempDir dir("geomap-recover-generations");
  {
    Wal wal(dir.str(), nofsync());
    wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
    wal.sync();
  }
  {
    Wal wal(dir.str(), nofsync());
    wal.append(WalRecordType::kSchedRequest, 1.0,
               encode_sched_request(request_record(0, 1.0, 1.0)));
    wal.sync();
  }
  const WalRecovery rec = read_wal(dir.str());
  EXPECT_EQ(rec.segments_read, 2);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_LT(rec.records[0].lsn, rec.records[1].lsn);
}

TEST(WalTest, TruncatedTailIsDroppedAndPrefixRecovered) {
  TempDir dir("geomap-recover-torn-tail");
  {
    Wal wal(dir.str(), nofsync());
    wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
    wal.append(WalRecordType::kSchedRequest, 1.0,
               encode_sched_request(request_record(0, 1.0, 1.0)));
    wal.append(WalRecordType::kSchedRequest, 2.0,
               encode_sched_request(request_record(1, 2.0, 0.5)));
    wal.sync();
  }
  // Chop the last record in half, as a kill mid-write would.
  const std::filesystem::path seg = dir.path / "wal-000001.log";
  std::string contents;
  {
    std::ifstream is(seg, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    contents = os.str();
  }
  ASSERT_FALSE(contents.empty());
  contents.resize(contents.size() - 20);
  {
    std::ofstream os(seg, std::ios::binary | std::ios::trunc);
    os << contents;
  }
  const WalRecovery rec = read_wal(dir.str());
  EXPECT_EQ(rec.dropped_torn, 1);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(decode_sched_request(rec.records[1].payload).tenant, 0);
}

TEST(WalTest, MidFileCorruptionIsLoud) {
  TempDir dir("geomap-recover-corrupt");
  {
    Wal wal(dir.str(), nofsync());
    wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
    wal.append(WalRecordType::kSchedRequest, 1.0,
               encode_sched_request(request_record(0, 1.0, 1.0)));
    wal.append(WalRecordType::kSchedRequest, 2.0,
               encode_sched_request(request_record(1, 2.0, 0.5)));
    wal.sync();
  }
  const std::filesystem::path seg = dir.path / "wal-000001.log";
  std::string contents;
  {
    std::ifstream is(seg, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    contents = os.str();
  }
  // Flip one payload byte of the FIRST record: a bad checksum anywhere
  // but a segment's last line must throw, never silently drop.
  const std::size_t eol = contents.find('\n');
  ASSERT_NE(eol, std::string::npos);
  const std::size_t at = eol - 2;
  contents[at] = contents[at] == 'X' ? 'Y' : 'X';
  {
    std::ofstream os(seg, std::ios::binary | std::ios::trunc);
    os << contents;
  }
  EXPECT_THROW(read_wal(dir.str()), WalCorrupt);
}

TEST(WalTest, TornSyncCrashLosesOnlyTheLastBufferedRecord) {
  TempDir dir("geomap-recover-torn-sync");
  Wal wal(dir.str(), nofsync());
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
  wal.sync();
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  wal.append(WalRecordType::kSchedRequest, 2.0,
             encode_sched_request(request_record(1, 2.0, 0.5)));
  CrashInjector::instance().arm("wal.sync.torn");
  EXPECT_THROW(wal.sync(), CrashTriggered);
  EXPECT_FALSE(CrashInjector::instance().armed());

  const WalRecovery rec = read_wal(dir.str());
  EXPECT_EQ(rec.dropped_torn, 1);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(decode_sched_request(rec.records[1].payload).tenant, 0);
}

TEST(WalTest, SnapshotCompactsSegmentsAndReplayFoldsIt) {
  TempDir dir("geomap-recover-snapshot");
  Wal wal(dir.str(), nofsync());
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  wal.sync();
  SnapshotStateRecord st;
  st.watermark = 7;
  wal.snapshot(2.0, encode_snapshot_state(st));
  EXPECT_EQ(wal_files(dir.str()), 1);  // old segment deleted
  wal.append(WalRecordType::kSchedRequest, 3.0,
             encode_sched_request(request_record(1, 3.0, 0.5)));
  wal.sync();

  const WalRecovery rec = read_wal(dir.str());
  const RecoveredControlPlane rcp = replay_wal(rec.records);
  EXPECT_TRUE(rcp.has_run);
  EXPECT_EQ(rcp.run.seed, 9u);
  EXPECT_EQ(rcp.watermark, 7u);
  ASSERT_EQ(rcp.requests.size(), 2u);
  EXPECT_EQ(rcp.requests[0].tenant, 0);
  EXPECT_EQ(rcp.requests[1].tenant, 1);
}

TEST(WalTest, CrashBeforeCompactionLeavesAConsistentLog) {
  TempDir dir("geomap-recover-compact-crash");
  Wal wal(dir.str(), nofsync());
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  wal.sync();
  SnapshotStateRecord st;
  st.watermark = 5;
  CrashInjector::instance().arm("wal.compact.before");
  EXPECT_THROW(wal.snapshot(2.0, encode_snapshot_state(st)), CrashTriggered);
  // The snapshot is durable, the redundant old segment survived — replay
  // must fold to the same state either way.
  EXPECT_EQ(wal_files(dir.str()), 2);
  const RecoveredControlPlane rcp = replay_wal(read_wal(dir.str()).records);
  EXPECT_TRUE(rcp.has_run);
  EXPECT_EQ(rcp.watermark, 5u);
  ASSERT_EQ(rcp.requests.size(), 1u);
  EXPECT_EQ(rcp.requests[0].tenant, 0);
}

// ---------------------------------------------------------------------------
// Crash injector semantics

TEST(CrashInjectorTest, OneShotArmWithSkipFiresOnExactOrdinal) {
  CrashInjector& inj = CrashInjector::instance();
  inj.reset_counts();
  inj.arm("test.point", /*skip=*/1);
  inj.hit("test.point");  // skipped
  EXPECT_TRUE(inj.armed());
  EXPECT_THROW(inj.hit("test.point"), CrashTriggered);
  EXPECT_FALSE(inj.armed());  // fired => disarmed
  inj.hit("test.point");      // harmless now
  EXPECT_EQ(inj.hits("test.point"), 3u);
  const std::vector<std::string> seen = inj.points_seen();
  EXPECT_TRUE(std::find(seen.begin(), seen.end(), "test.point") != seen.end());
}

// ---------------------------------------------------------------------------
// Producer payloads round-trip through the codecs (pins the local
// encoders in detector.cpp / executor.cpp to the decoders)

TEST(RecoverCodecTest, DetectorWalRecordsMatchItsEpisodes) {
  TempDir dir("geomap-recover-detector-codec");
  Wal wal(dir.str(), nofsync());
  obs::DegradationDetector d;
  d.set_wal(&wal);
  for (int i = 0; i < 4; ++i) {
    d.observe_latency_ratio(0, 1, static_cast<Seconds>(i), 3.0);
  }
  for (int i = 4; i < 30; ++i) {
    d.observe_latency_ratio(0, 1, static_cast<Seconds>(i), 1.0);
  }
  d.observe_timeout(2, 3, 5.0);

  const std::vector<obs::DegradationEvent> episodes = d.events();
  ASSERT_GE(episodes.size(), 2u);

  const WalRecovery rec = read_wal(dir.str());
  std::vector<obs::DegradationEvent> onsets;
  std::vector<obs::DegradationEvent> clears;
  for (const WalRecord& r : rec.records) {
    if (r.type == WalRecordType::kDetectorOnset) {
      onsets.push_back(decode_detector_episode(r.payload).event);
    } else if (r.type == WalRecordType::kDetectorClear) {
      clears.push_back(decode_detector_episode(r.payload).event);
    }
  }
  ASSERT_EQ(onsets.size(), episodes.size());
  for (const obs::DegradationEvent& e : episodes) {
    const auto match = [&e](const obs::DegradationEvent& o) {
      return o.src == e.src && o.dst == e.dst && o.kind == e.kind &&
             o.onset_vtime == e.onset_vtime &&
             o.detect_vtime == e.detect_vtime;
    };
    EXPECT_TRUE(std::any_of(onsets.begin(), onsets.end(), match))
        << "no onset record for episode " << e.src << "->" << e.dst;
    const bool closed = std::isfinite(e.end_vtime);
    const auto closed_match = [&e](const obs::DegradationEvent& c) {
      return c.src == e.src && c.dst == e.dst && c.kind == e.kind &&
             c.end_vtime == e.end_vtime;
    };
    EXPECT_EQ(std::any_of(clears.begin(), clears.end(), closed_match), closed);
  }
}

TEST(RecoverCodecTest, DetectorCheckpointSplitFeedIsEquivalent) {
  std::vector<obs::LinkSample> samples;
  for (int i = 0; i < 4; ++i) {
    samples.push_back({0, 1, 0, static_cast<Seconds>(i), 3.0});
  }
  for (int i = 4; i < 30; ++i) {
    samples.push_back({0, 1, 0, static_cast<Seconds>(i), 1.0});
  }
  samples.push_back({2, 3, 2, 5.0, 0.0});
  samples.push_back({1, 2, 1, 6.0, 2.0});

  obs::DegradationDetector full;
  for (const obs::LinkSample& s : samples) obs::feed_sample(full, s);
  const std::vector<obs::DegradationEvent> expected = full.events();

  for (const std::size_t split : {std::size_t{0}, std::size_t{5},
                                  std::size_t{13}, std::size_t{27},
                                  samples.size()}) {
    obs::DegradationDetector a;
    for (std::size_t i = 0; i < split; ++i) obs::feed_sample(a, samples[i]);
    obs::DegradationDetector b;
    b.restore(a.checkpoint());
    for (std::size_t i = split; i < samples.size(); ++i) {
      obs::feed_sample(b, samples[i]);
    }
    const std::vector<obs::DegradationEvent> got = b.events();
    ASSERT_EQ(got.size(), expected.size()) << "split at " << split;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].src, expected[i].src);
      EXPECT_EQ(got[i].dst, expected[i].dst);
      EXPECT_EQ(got[i].kind, expected[i].kind);
      EXPECT_EQ(got[i].onset_vtime, expected[i].onset_vtime);
      EXPECT_EQ(got[i].detect_vtime, expected[i].detect_vtime);
      EXPECT_EQ(got[i].end_vtime, expected[i].end_vtime);
      EXPECT_EQ(got[i].severity, expected[i].severity);
      EXPECT_EQ(got[i].confidence, expected[i].confidence);
    }
  }
}

TEST(RecoverCodecTest, ExecutorWalJournalRoundTripsAndRebuilds) {
  const mapping::MappingProblem problem =
      testutil::random_problem(6, 0.0, /*seed=*/7, /*degree=*/3, /*slack=*/2);
  const Mapping current{0, 0, 1, 1, 2, 2};
  const Mapping target{3, 3, 1, 1, 2, 2};
  const fault::FaultPlan plan;

  TempDir dir("geomap-recover-executor-codec");
  Wal wal(dir.str(), nofsync());
  migrate::MigrationOptions options;
  options.bytes_per_process = 10.0 * kMiB;
  options.chunk_bytes = 1.0 * kMiB;
  options.record_events = true;
  options.wal = &wal;
  options.wal_tenant = 5;
  const migrate::MigrationReport report =
      migrate::execute_migration(problem, current, target, plan, 0.0, options);
  ASSERT_FALSE(report.events.empty());

  std::vector<MigRecord> migs;
  for (const WalRecord& r : read_wal(dir.str()).records) {
    if (r.type == WalRecordType::kMigReserve ||
        r.type == WalRecordType::kMigRelease ||
        r.type == WalRecordType::kMigChunk ||
        r.type == WalRecordType::kMigCommit ||
        r.type == WalRecordType::kMigRollback ||
        r.type == WalRecordType::kMigReplan) {
      MigRecord m = decode_mig(r.type, r.payload);
      m.event.t = r.t;
      migs.push_back(std::move(m));
    }
  }
  ASSERT_EQ(migs.size(), report.events.size());
  // The WAL journals in emission order; the report is time-sorted
  // (stable) on finish. Same stable sort on the records recovers the
  // exact report order.
  std::stable_sort(migs.begin(), migs.end(),
                   [](const MigRecord& a, const MigRecord& b) {
                     return a.event.t < b.event.t;
                   });
  for (std::size_t i = 0; i < migs.size(); ++i) {
    EXPECT_EQ(migs[i].tenant, 5);
    EXPECT_EQ(migs[i].event.kind, report.events[i].kind);
    EXPECT_EQ(migs[i].event.t, report.events[i].t);
    EXPECT_EQ(migs[i].event.process, report.events[i].process);
    EXPECT_EQ(migs[i].event.site_from, report.events[i].site_from);
    EXPECT_EQ(migs[i].event.site_to, report.events[i].site_to);
    EXPECT_EQ(migs[i].event.bytes, report.events[i].bytes);
  }

  const migrate::MigrationReport rebuilt = rebuild_migration_report(
      migs, current, target, 0.0, report.finish_time);
  EXPECT_EQ(rebuilt.final_mapping, report.final_mapping);
  EXPECT_EQ(rebuilt.processes_committed, report.processes_committed);
  EXPECT_EQ(rebuilt.rollbacks, report.rollbacks);
  EXPECT_EQ(rebuilt.replans, report.replans);
  EXPECT_EQ(rebuilt.bytes_sent, report.bytes_sent);
  EXPECT_EQ(rebuilt.max_downtime, report.max_downtime);
  EXPECT_EQ(rebuilt.total_downtime, report.total_downtime);
}

// ---------------------------------------------------------------------------
// The requeue-timer guarantee (a backoff timer pending at the crash
// fires exactly once after recovery)

TEST(RecoverStormTest, RequeuedRetryTimerFiresExactlyOnceAfterRecovery) {
  tenancy::SubstrateOptions sub;
  sub.num_sites = 4;
  sub.num_tenants = 6;
  const auto doctored = [&sub]() {
    tenancy::Substrate s = tenancy::make_substrate(17, sub);
    // No free slot anywhere: every remap attempt is infeasible forever.
    s.site_capacities = s.residents();
    return s;
  };
  tenancy::Substrate probe = doctored();
  const std::vector<int> residents = probe.residents();
  const SiteId failed = static_cast<SiteId>(std::distance(
      residents.begin(),
      std::max_element(residents.begin(), residents.end())));
  fault::FaultPlan plan;
  plan.add_site_outage(failed, 1.0);

  std::vector<tenancy::RemapRequest> requests;
  for (const tenancy::Tenant& t : probe.tenants) {
    int stranded = 0;
    for (const SiteId s : t.mapping) {
      if (s == failed) stranded += 1;
    }
    if (stranded == 0) continue;
    tenancy::RemapRequest r;
    r.tenant = t.id;
    r.request_time = 1.0;
    r.severity = static_cast<double>(stranded) /
                 static_cast<double>(t.mapping.size());
    requests.push_back(r);
  }
  ASSERT_FALSE(requests.empty());
  requests.resize(1);

  tenancy::SchedulerOptions options;
  options.migrate.bytes_per_process = 2.0 * kMiB;
  options.migrate.chunk_bytes = 512.0 * 1024;
  options.remap.bytes_per_process = 2.0 * kMiB;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 0.5;

  // Uninterrupted baseline: 3 attempts, 2 requeues, then give-up.
  tenancy::Substrate base_sub = doctored();
  const tenancy::StormReport baseline =
      tenancy::run_remap_storm(base_sub, plan, failed, requests, options);
  ASSERT_EQ(baseline.recoveries.size(), 1u);
  ASSERT_EQ(baseline.recoveries[0].attempts, 3);
  ASSERT_EQ(baseline.requeues, 2);

  // Kill the scheduler at the give-up append: both requeues (and their
  // backoff timers) are durable, the give-up is not.
  TempDir dir("geomap-recover-requeue-timer");
  {
    tenancy::Substrate crash_sub = doctored();
    Wal wal(dir.str(), nofsync());
    tenancy::SchedulerOptions crashing = options;
    crashing.wal = &wal;
    CrashInjector::instance().arm("wal.append.sched_give_up.before");
    EXPECT_THROW(tenancy::run_remap_storm(crash_sub, plan, failed, requests,
                                          crashing),
                 CrashTriggered);
  }

  const RecoveredControlPlane rcp = replay_wal(read_wal(dir.str()).records);
  ASSERT_EQ(rcp.requests.size(), 1u);
  ASSERT_EQ(rcp.requeues.size(), 2u);
  EXPECT_TRUE(rcp.give_ups.empty());
  EXPECT_TRUE(rcp.grants.empty());
  EXPECT_FALSE(rcp.has_interrupted);

  const tenancy::StormResume resume = build_storm_resume(rcp, requests);
  ASSERT_EQ(resume.pending.size(), 1u);
  EXPECT_EQ(resume.pending[0].attempts, 2);
  EXPECT_FALSE(resume.pending[0].done);
  // The pending backoff timer survives at its recorded instant...
  EXPECT_EQ(resume.pending[0].next_eligible, rcp.requeues[1].next_eligible);

  // ...and fires exactly once: the resumed storm consumes attempt 3 and
  // gives up with the baseline's exact counters. A re-fired timer would
  // show up as extra attempts/requeues; a lost one as a hung request.
  tenancy::Substrate resumed_sub = doctored();
  const tenancy::StormReport resumed = tenancy::run_remap_storm(
      resumed_sub, plan, failed, requests, options, &resume);
  ASSERT_EQ(resumed.recoveries.size(), 1u);
  EXPECT_EQ(resumed.recoveries[0].attempts, 3);
  EXPECT_TRUE(resumed.recoveries[0].gave_up);
  EXPECT_FALSE(resumed.recoveries[0].granted);
  EXPECT_EQ(resumed.requeues, 2);
  EXPECT_EQ(resumed.gave_up, 1);
  EXPECT_EQ(resumed.storm_drain_seconds, baseline.storm_drain_seconds);
}

// ---------------------------------------------------------------------------
// Recoverable soak driver + crash matrix

RecoverableSoakOptions small_recoverable(const std::string& wal_dir,
                                         obs::Collector* collector) {
  RecoverableSoakOptions o;
  o.soak.substrate.num_sites = 4;
  o.soak.substrate.num_tenants = 8;
  o.soak.collector = collector;
  o.wal_dir = wal_dir;
  o.wal.fsync = false;
  o.snapshot_every_samples = 16;
  return o;
}

TEST(RecoverDriverTest, FreshCaseIsCleanDeterministicAndIdempotent) {
  TempDir dir("geomap-recover-driver-fresh");
  obs::Collector c1;
  const RecoverableCaseResult r1 =
      run_recoverable_case(17, small_recoverable(dir.str(), &c1));
  EXPECT_FALSE(r1.resumed);
  EXPECT_EQ(r1.recoveries, 0);
  EXPECT_TRUE(r1.recovery_violations.empty())
      << r1.recovery_violations.front();
  EXPECT_GE(r1.soak_case.requests, 1);
  EXPECT_TRUE(r1.soak_case.violations.empty());

  // Same seed, wiped WAL: bit-identical outcome digest.
  std::filesystem::remove_all(dir.path);
  obs::Collector c2;
  const RecoverableCaseResult r2 =
      run_recoverable_case(17, small_recoverable(dir.str(), &c2));
  EXPECT_EQ(r2.digest, r1.digest);

  // Restarting on a COMPLETED WAL (killed after run_end) replays the
  // sealed run and reproduces the digest without re-running anything.
  obs::Collector c3;
  const RecoverableCaseResult r3 =
      run_recoverable_case(17, small_recoverable(dir.str(), &c3));
  EXPECT_TRUE(r3.resumed);
  EXPECT_GE(r3.recoveries, 1);
  EXPECT_TRUE(r3.recovery_violations.empty())
      << r3.recovery_violations.front();
  EXPECT_EQ(r3.digest, r1.digest);
}

TEST(RecoverDriverTest, TargetedCrashPointsRecoverWithIdenticalDigest) {
  TempDir dir("geomap-recover-driver-targeted");
  CrashMatrixOptions mo;
  mo.base = small_recoverable(dir.str(), nullptr);
  mo.seed = 17;
  mo.points = {
      "wal.append.detect_decision.before",
      "wal.append.sched_grant.after",
      "wal.append.mig_commit.before",
      "wal.sync.torn",
      "wal.compact.after",
  };
  const CrashMatrixReport report = run_crash_matrix(mo);
  ASSERT_EQ(report.cases.size(), mo.points.size());
  EXPECT_TRUE(report.all_clean);
  EXPECT_EQ(report.points_clean, static_cast<int>(mo.points.size()));
  for (const CrashMatrixCase& c : report.cases) {
    EXPECT_TRUE(c.fired) << c.point << " never fired";
    EXPECT_TRUE(c.completed) << c.point;
    EXPECT_TRUE(c.digest_match)
        << c.point << ": digest " << c.digest << " != baseline "
        << report.baseline_digest;
    EXPECT_TRUE(c.recovery_violations.empty())
        << c.point << ": " << c.recovery_violations.front();
    EXPECT_GE(c.recoveries, 1) << c.point;
  }
}

TEST(RecoverDriverTest, ExhaustiveCrashMatrixIsClean) {
  TempDir dir("geomap-recover-driver-matrix");
  CrashMatrixOptions mo;
  mo.base = small_recoverable(dir.str(), nullptr);
  mo.seed = 17;  // full catalog (mo.points empty)
  const CrashMatrixReport report = run_crash_matrix(mo);
  EXPECT_EQ(report.cases.size(), crash_point_catalog().size());
  EXPECT_TRUE(report.all_clean);
  for (const CrashMatrixCase& c : report.cases) {
    EXPECT_TRUE(c.completed) << c.point;
    EXPECT_TRUE(c.digest_match) << c.point;
    EXPECT_TRUE(c.recovery_violations.empty())
        << c.point << ": " << c.recovery_violations.front();
  }
  // The storm-phase points must actually fire on this workload.
  for (const CrashMatrixCase& c : report.cases) {
    if (c.point == "wal.append.sched_grant.before" ||
        c.point == "wal.append.sched_finish.after" ||
        c.point == "wal.append.run_end.before" || c.point == "wal.sync.torn") {
      EXPECT_TRUE(c.fired) << c.point;
    }
  }
}

TEST(RecoverDriverTest, DeterministicEventStreamSurvivesACrash) {
  ::setenv("GEOMAP_PROFILE_DETERMINISTIC", "1", 1);
  TempDir base_dir("geomap-recover-driver-det-base");
  obs::Collector cb;
  run_recoverable_case(17, small_recoverable(base_dir.str(), &cb));
  std::ostringstream baseline;
  cb.events().write_jsonl(baseline);

  TempDir crash_dir("geomap-recover-driver-det-crash");
  {
    obs::Collector dead;
    CrashInjector::instance().arm("wal.append.sched_finish.before");
    EXPECT_THROW(
        run_recoverable_case(17, small_recoverable(crash_dir.str(), &dead)),
        CrashTriggered);
  }
  obs::Collector recovered;
  const RecoverableCaseResult r =
      run_recoverable_case(17, small_recoverable(crash_dir.str(), &recovered));
  EXPECT_TRUE(r.resumed);
  std::ostringstream resumed;
  recovered.events().write_jsonl(resumed);
  EXPECT_EQ(resumed.str(), baseline.str());
  ::unsetenv("GEOMAP_PROFILE_DETERMINISTIC");
}

// ---------------------------------------------------------------------------
// The post-hoc auditor rejects doctored logs

TEST(RecoverAuditTest, FlagsDoubleCommitInTheDurablePrefix) {
  TempDir dir("geomap-recover-audit-double-commit");
  Wal wal(dir.str(), nofsync());
  RunBeginRecord rb = small_run();
  rb.tenants = 2;
  rb.sites = 2;
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(rb));
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  SchedGrantRecord g;
  g.tenant = 0;
  g.granted_at = 1.0;
  g.attempts = 1;
  g.current = {0, 0};
  g.target = {1, 1};
  g.view_capacities = {2.0, 2.0};
  wal.append(WalRecordType::kSchedGrant, 1.0, encode_sched_grant(g));
  MigRecord m;
  m.tenant = 0;
  m.event.kind = fault::MigrationEventKind::kCommit;
  m.event.t = 1.5;
  m.event.process = 0;
  m.event.site_from = 0;
  m.event.site_to = 1;
  m.downtime = 0.1;
  wal.append(WalRecordType::kMigCommit, 1.5, encode_mig(m));
  m.event.t = 1.6;
  wal.append(WalRecordType::kMigCommit, 1.6, encode_mig(m));
  wal.sync();

  const std::vector<std::string> violations =
      check_recovery_invariants(read_wal(dir.str()).records);
  EXPECT_TRUE(any_contains(violations, "double commit"))
      << "violations: " << violations.size();
}

TEST(RecoverAuditTest, FlagsJournalRecordsOutsideAnyGrant) {
  TempDir dir("geomap-recover-audit-orphan-mig");
  Wal wal(dir.str(), nofsync());
  RunBeginRecord rb = small_run();
  rb.tenants = 2;
  rb.sites = 2;
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(rb));
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  MigRecord m;
  m.tenant = 0;
  m.event.kind = fault::MigrationEventKind::kCommit;
  m.event.t = 1.5;
  m.event.process = 0;
  m.event.site_from = 0;
  m.event.site_to = 1;
  wal.append(WalRecordType::kMigCommit, 1.5, encode_mig(m));
  wal.sync();

  const std::vector<std::string> violations =
      check_recovery_invariants(read_wal(dir.str()).records);
  EXPECT_TRUE(any_contains(violations, "outside any open grant"))
      << "violations: " << violations.size();
}

TEST(RecoverAuditTest, FlagsNonIncreasingAttemptsAndEmptyLogs) {
  EXPECT_FALSE(check_recovery_invariants({}).empty());

  TempDir dir("geomap-recover-audit-attempts");
  Wal wal(dir.str(), nofsync());
  wal.append(WalRecordType::kRunBegin, 0, encode_run_begin(small_run()));
  wal.append(WalRecordType::kSchedRequest, 1.0,
             encode_sched_request(request_record(0, 1.0, 1.0)));
  SchedRequeueRecord rq;
  rq.tenant = 0;
  rq.t = 1.5;
  rq.attempts = 2;
  rq.next_eligible = 2.0;
  wal.append(WalRecordType::kSchedRequeue, 1.5, encode_sched_requeue(rq));
  rq.t = 2.5;  // attempts did not advance: a twice-fired timer's signature
  wal.append(WalRecordType::kSchedRequeue, 2.5, encode_sched_requeue(rq));
  wal.sync();
  EXPECT_FALSE(check_recovery_invariants(read_wal(dir.str()).records).empty());
}

}  // namespace
}  // namespace geomap::recover
