// Tests for operation-level trace capture and the deterministic replay
// engine: hand-built traces with known timings, capture-vs-runtime
// agreement, mapping re-evaluation, and malformed-trace detection.

#include <gtest/gtest.h>

#include "apps/app.h"
#include "common/error.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "runtime/comm.h"
#include "sim/replay.h"
#include "trace/optrace.h"

namespace geomap::sim {
namespace {

net::NetworkModel simple_model() {
  Matrix lat = Matrix::square(2, 1e-3);
  lat(0, 1) = lat(1, 0) = 0.1;
  Matrix bw = Matrix::square(2, 100e6);
  bw(0, 1) = bw(1, 0) = 1e6;
  return net::NetworkModel(std::move(lat), std::move(bw));
}

TEST(Replay, HandBuiltPingMatchesAlphaBeta) {
  trace::OpTraceLog ops(2);
  ops.rank(0).push_back(trace::Op::send(1, 7, 8000));
  ops.rank(0).push_back(trace::Op::wait(0));
  ops.rank(1).push_back(trace::Op::recv(0, 7));

  const ReplayResult r = replay_ops(ops, simple_model(), {0, 1});
  EXPECT_NEAR(r.makespan, 0.1 + 8000 / 1e6, 1e-12);
  EXPECT_NEAR(r.finish_times[0], r.finish_times[1], 1e-12);  // rendezvous
}

TEST(Replay, ComputeDelaysTheSender) {
  trace::OpTraceLog ops(2);
  ops.rank(0).push_back(trace::Op::compute(2.0));
  ops.rank(0).push_back(trace::Op::send(1, 1, 1000));
  ops.rank(0).push_back(trace::Op::wait(0));
  ops.rank(1).push_back(trace::Op::recv(0, 1));

  const ReplayResult r = replay_ops(ops, simple_model(), {0, 0});
  EXPECT_NEAR(r.makespan, 2.0 + 1e-3 + 1000 / 100e6, 1e-12);
}

TEST(Replay, RecvBeforeSendInProgramOrderStillMatches) {
  // Rank 1's recv appears "first" in round-robin order; it must block
  // until rank 0 posts, then complete correctly.
  trace::OpTraceLog ops(2);
  ops.rank(0).push_back(trace::Op::compute(1.0));
  ops.rank(0).push_back(trace::Op::send(1, 3, 800));
  ops.rank(0).push_back(trace::Op::wait(0));
  ops.rank(1).push_back(trace::Op::recv(0, 3));
  const ReplayResult r = replay_ops(ops, simple_model(), {0, 1});
  EXPECT_NEAR(r.makespan, 1.0 + 0.1 + 800 / 1e6, 1e-12);
}

TEST(Replay, FifoMatchingPerTagAndPeer) {
  // Two sends same (src, dst, tag): first posted must match first recv.
  trace::OpTraceLog ops(2);
  ops.rank(0).push_back(trace::Op::send(1, 5, 1e6));  // 1 MB
  ops.rank(0).push_back(trace::Op::send(1, 5, 8));    // tiny
  ops.rank(0).push_back(trace::Op::wait(0));
  ops.rank(0).push_back(trace::Op::wait(1));
  ops.rank(1).push_back(trace::Op::recv(0, 5));
  ops.rank(1).push_back(trace::Op::recv(0, 5));
  const ReplayResult r = replay_ops(ops, simple_model(), {0, 1});
  // First recv pays the 1 MB transfer, second the tiny one after it.
  EXPECT_NEAR(r.makespan, (0.1 + 1.0) + (0.1 + 8 / 1e6), 1e-9);
}

TEST(Replay, InterSiteLinkSerializesConcurrentFlows) {
  // Ranks 0,1 on site 0 send 1 MB each to ranks 2,3 on site 1
  // concurrently: the shared WAN link serializes them.
  trace::OpTraceLog ops(4);
  ops.rank(0).push_back(trace::Op::send(2, 1, 1e6));
  ops.rank(0).push_back(trace::Op::wait(0));
  ops.rank(1).push_back(trace::Op::send(3, 1, 1e6));
  ops.rank(1).push_back(trace::Op::wait(0));
  ops.rank(2).push_back(trace::Op::recv(0, 1));
  ops.rank(3).push_back(trace::Op::recv(1, 1));

  const ReplayResult contended = replay_ops(ops, simple_model(), {0, 0, 1, 1});
  EXPECT_NEAR(contended.makespan, 2 * (0.1 + 1.0), 1e-9);
  // Intra-site placement removes the queueing entirely.
  const ReplayResult local = replay_ops(ops, simple_model(), {0, 0, 0, 0});
  EXPECT_NEAR(local.makespan, 1e-3 + 1e6 / 100e6, 1e-9);
}

TEST(Replay, DetectsDeadlockAndUnmatchedSends) {
  {
    trace::OpTraceLog ops(2);  // recv with no send anywhere
    ops.rank(0).push_back(trace::Op::recv(1, 1));
    EXPECT_THROW(replay_ops(ops, simple_model(), {0, 1}), Error);
  }
  {
    trace::OpTraceLog ops(2);  // send never received
    ops.rank(0).push_back(trace::Op::send(1, 1, 8));
    EXPECT_THROW(replay_ops(ops, simple_model(), {0, 1}), Error);
  }
}

TEST(Replay, DeterministicAcrossInvocations) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(16);
  cfg.iterations = 3;

  trace::OpTraceLog ops(16);
  Mapping capture_map(16, 0);
  runtime::Runtime rt(model, capture_map, 45.0);
  rt.capture_ops(&ops);
  rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); });
  EXPECT_GT(ops.total_ops(), 100u);

  Mapping scattered(16);
  for (int r = 0; r < 16; ++r) scattered[static_cast<std::size_t>(r)] = r % 4;
  const ReplayResult a = replay_ops(ops, model, scattered);
  const ReplayResult b = replay_ops(ops, model, scattered);
  EXPECT_EQ(a.finish_times, b.finish_times);
}

TEST(Replay, MatchesRuntimeExactlyWithoutContention) {
  // Single-site mapping: no WAN queueing in either engine, so the replay
  // must reproduce the threaded runtime's virtual times exactly.
  const net::CloudTopology topo(net::aws_experiment_profile(16));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  for (const char* name : {"LU", "BT", "DNN"}) {
    const apps::App& app = apps::app_by_name(name);
    apps::AppConfig cfg = app.default_config(8);
    cfg.iterations = 2;
    cfg.payload_scale = 0.05;

    Mapping single_site(8, 0);
    trace::OpTraceLog ops(8);
    runtime::Runtime rt(model, single_site, 45.0);
    rt.capture_ops(&ops);
    const runtime::RunResult executed =
        rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });

    const ReplayResult replayed = replay_ops(ops, model, single_site);
    EXPECT_NEAR(replayed.makespan, executed.makespan,
                executed.makespan * 1e-12)
        << name;
    for (int r = 0; r < 8; ++r) {
      EXPECT_NEAR(replayed.finish_times[static_cast<std::size_t>(r)],
                  executed.ranks[static_cast<std::size_t>(r)].finish_time,
                  1e-12)
          << name << " rank " << r;
    }
  }
}

TEST(Replay, TracksRuntimeUnderContention) {
  // Cross-site mappings queue on WAN links; allocation order may differ
  // between the engines, but the makespans must agree closely and order
  // mappings identically.
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(16);
  cfg.iterations = 4;

  trace::OpTraceLog ops(16);
  {
    Mapping capture_map(16, 0);
    runtime::Runtime rt(model, capture_map, 45.0);
    rt.capture_ops(&ops);
    rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); });
  }

  Mapping block(16), cyclic(16);
  for (int r = 0; r < 16; ++r) {
    block[static_cast<std::size_t>(r)] = r / 4;
    cyclic[static_cast<std::size_t>(r)] = r % 4;
  }
  auto runtime_makespan = [&](const Mapping& m) {
    runtime::Runtime rt(model, m, 45.0);
    return rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); }).makespan;
  };
  const double rt_block = runtime_makespan(block);
  const double rt_cyclic = runtime_makespan(cyclic);
  const double rp_block = replay_ops(ops, model, block).makespan;
  const double rp_cyclic = replay_ops(ops, model, cyclic).makespan;

  EXPECT_NEAR(rp_block / rt_block, 1.0, 0.1);
  EXPECT_NEAR(rp_cyclic / rt_cyclic, 1.0, 0.1);
  EXPECT_EQ(rp_block < rp_cyclic, rt_block < rt_cyclic);
}

}  // namespace
}  // namespace geomap::sim
