#pragma once
// Shared fixtures for the geomap test suite: deterministic random
// problems over the AWS experiment cloud and synthetic worlds.

#include <memory>

#include "common/rng.h"
#include "core/pipeline.h"
#include "mapping/problem.h"
#include "net/calibration.h"
#include "net/cloud.h"

namespace geomap::testutil {

/// Random communication matrix: `n` processes, ~`degree` undirected
/// neighbours each, volumes in [1 KB, 1 MB], counts in [1, 50].
inline trace::CommMatrix random_comm(int n, int degree, Rng& rng) {
  trace::CommMatrix::Builder b(n);
  for (ProcessId i = 0; i < n; ++i) {
    for (int d = 0; d < degree; ++d) {
      const auto j = static_cast<ProcessId>(rng.uniform_index(n));
      if (j == i) continue;
      b.add_message(i, j, rng.uniform(1024, 1 << 20),
                    static_cast<double>(rng.uniform_int(1, 50)));
    }
  }
  // Guarantee at least one edge so cost is never trivially zero.
  b.add_message(0, n > 1 ? 1 : 0, 4096, 2);
  return b.build();
}

/// A full random problem over the 4-region AWS cloud with `n` processes,
/// optional constraint ratio. Capacities sized to fit exactly unless
/// `slack` extra nodes per site are requested.
inline mapping::MappingProblem random_problem(int n, double constraint_ratio,
                                              std::uint64_t seed,
                                              int degree = 4, int slack = 0) {
  Rng rng(seed);
  const int nodes_per_site = (n + 3) / 4 + slack;
  const net::CloudTopology topo(net::aws_experiment_profile(nodes_per_site));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);

  mapping::MappingProblem p;
  p.comm = random_comm(n, degree, rng);
  p.network = model;
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  if (constraint_ratio > 0) {
    p.constraints =
        mapping::make_random_constraints(n, p.capacities, constraint_ratio, rng);
  }
  p.validate();
  return p;
}

/// A tiny problem (for exhaustive search) over a 3-site synthetic world.
inline mapping::MappingProblem tiny_problem(int n, std::uint64_t seed) {
  Rng rng(seed);
  const net::CloudTopology topo(
      net::synthetic_profile(3, (n + 2) / 3 + 1, seed));
  mapping::MappingProblem p;
  p.comm = random_comm(n, 3, rng);
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.validate();
  return p;
}

}  // namespace geomap::testutil
