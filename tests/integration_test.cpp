// Cross-module integration tests: profiled runs match synthetic patterns,
// the full pipeline beats the baseline, and optimized mappings speed up
// real (virtual-time) executions.

#include <gtest/gtest.h>

#include "apps/app.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "test_util.h"

namespace geomap {
namespace {

trace::CommMatrix profile_app(const apps::App& app, const apps::AppConfig& cfg,
                              const net::NetworkModel& model) {
  trace::ApplicationProfile profile(cfg.num_ranks);
  Mapping trivial(static_cast<std::size_t>(cfg.num_ranks), 0);
  runtime::Runtime rt(model, trivial, 50.0, &profile);
  rt.run([&](runtime::Comm& comm) { (void)app.run(comm, cfg); });
  return profile.build_comm_matrix();
}

// The deterministic apps' synthetic patterns must equal what profiling an
// actual execution captures (K-means repartitions are data-dependent and
// are excluded by design).
class ProfiledVsSynthetic : public ::testing::TestWithParam<const char*> {};

TEST_P(ProfiledVsSynthetic, PatternsAgreeEdgeForEdge) {
  const apps::App& app = apps::app_by_name(GetParam());
  apps::AppConfig cfg = app.default_config(16);
  cfg.iterations = 4;
  cfg.payload_scale = 0.05;

  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const trace::CommMatrix profiled = profile_app(app, cfg, model);
  const trace::CommMatrix synthetic = app.synthetic_pattern(16, cfg);

  ASSERT_EQ(profiled.nnz(), synthetic.nnz());
  const auto pe = profiled.edges();
  const auto se = synthetic.edges();
  for (std::size_t i = 0; i < pe.size(); ++i) {
    EXPECT_EQ(pe[i].src, se[i].src) << i;
    EXPECT_EQ(pe[i].dst, se[i].dst) << i;
    EXPECT_NEAR(pe[i].volume, se[i].volume, 1e-6) << pe[i].src << "->"
                                                  << pe[i].dst;
    EXPECT_NEAR(pe[i].count, se[i].count, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, ProfiledVsSynthetic,
                         ::testing::Values("LU", "BT", "SP", "DNN"));

TEST(Integration, KmeansProfiledPatternIsComplex) {
  const apps::App& km = apps::app_by_name("K-means");
  apps::AppConfig cfg = km.default_config(16);
  cfg.iterations = 3;
  cfg.problem_size = 128;
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const trace::CommMatrix profiled =
      profile_app(km, cfg, net::NetworkModel::from_ground_truth(topo));
  // Beyond the collective trees: repartition edges connect many pairs.
  EXPECT_GT(profiled.nnz(), 16u * 5u);
}

TEST(Integration, PipelineBeatsBaselineOnEveryApp) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel truth = net::NetworkModel::from_ground_truth(topo);
  for (const apps::App* app : apps::all_apps()) {
    apps::AppConfig cfg = app->default_config(16);
    cfg.iterations = 4;
    trace::CommMatrix comm = profile_app(*app, cfg, truth);

    core::Pipeline pipeline;
    const core::PipelineResult result = pipeline.execute(topo, comm);

    mapping::RandomMapper baseline(1);
    const mapping::MappingProblem problem =
        core::make_problem(topo, result.calibration.model, std::move(comm));
    const mapping::MapperRun base = mapping::run_mapper(baseline, problem);
    EXPECT_LT(result.run.cost, base.cost) << app->name();
  }
}

TEST(Integration, OptimizedMappingSpeedsUpVirtualExecution) {
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(16);
  cfg.iterations = 6;

  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const trace::CommMatrix comm = profile_app(lu, cfg, calib.model);
  const mapping::MappingProblem problem =
      core::make_problem(topo, calib.model, comm);

  core::GeoDistMapper geo;
  mapping::RandomMapper baseline(3);
  const Mapping geo_map = geo.map(problem);
  const Mapping base_map = baseline.map(problem);

  auto run_makespan = [&](const Mapping& m) {
    runtime::Runtime rt(calib.model, m, topo.instance().gflops);
    return rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); }).makespan;
  };
  EXPECT_LT(run_makespan(geo_map), run_makespan(base_map));
}

TEST(Integration, AnalyticCostTracksRuntimeCommTimeOrdering) {
  // Across several mappings, the analytic alpha-beta cost and the
  // runtime's measured communication time must order mappings the same
  // way (Spearman-like check on 3 mappings).
  const apps::App& lu = apps::app_by_name("LU");
  apps::AppConfig cfg = lu.default_config(16);
  cfg.iterations = 4;

  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  const trace::CommMatrix comm = profile_app(lu, cfg, model);
  const mapping::MappingProblem problem = core::make_problem(topo, model, comm);

  core::GeoDistMapper geo;
  mapping::GreedyMapper greedy;
  mapping::RandomMapper baseline(17);
  const std::vector<Mapping> mappings = {geo.map(problem),
                                         greedy.map(problem),
                                         baseline.map(problem)};
  std::vector<double> analytic, measured;
  for (const Mapping& m : mappings) {
    analytic.push_back(sim::alpha_beta_cost(comm, model, m));
    runtime::Runtime rt(model, m, topo.instance().gflops);
    measured.push_back(
        rt.run([&](runtime::Comm& c) { (void)lu.run(c, cfg); }).makespan);
  }
  // geo <= greedy <= baseline in both metrics.
  EXPECT_LE(analytic[0], analytic[1]);
  EXPECT_LE(analytic[1], analytic[2] * 1.05);
  EXPECT_LE(measured[0], measured[1] * 1.05);
  EXPECT_LE(measured[1], measured[2] * 1.05);
}

}  // namespace
}  // namespace geomap
