// Streaming telemetry plane (src/obs/eventlog, openmetrics, slo): the
// structured event log's ordering/bounding/thread-safety contracts, the
// deterministic JSONL export, the OpenMetrics renderer, SLO error-budget
// math on hand-built streams, and the nullptr-collector bit-identity of
// every new emission site.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"
#include "migrate/executor.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/eventlog.h"
#include "obs/openmetrics.h"
#include "obs/run_meta.h"
#include "obs/slo.h"
#include "tenancy/soak.h"
#include "test_util.h"

namespace geomap::obs {
namespace {

/// Pin an environment variable for one test, restoring on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

TEST(EventLogTest, SequenceNumbersAreMonotoneFromOne) {
  EventLog log;
  log.emit(1.0, EventSeverity::kInfo, "a", "x");
  log.emit(0.5, EventSeverity::kWarn, "b", "y");
  log.emit(2.0, EventSeverity::kError, "c", "z");
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[2].seq, 3u);
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, CapacityBoundDropsOldest) {
  EventLog log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.emit(static_cast<Seconds>(i), EventSeverity::kInfo, "c", "e",
             {field("i", i)});
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 4u);
  // Newest survive; oldest evicted.
  EXPECT_EQ(events.front().seq, 7u);
  EXPECT_EQ(events.back().seq, 10u);
}

TEST(EventLogTest, MetaLineReportsTotalsAndDrops) {
  EventLog log(/*capacity=*/2);
  for (int i = 0; i < 5; ++i)
    log.emit(static_cast<Seconds>(i), EventSeverity::kInfo, "c", "e");
  std::ostringstream os;
  log.write_jsonl(os);
  std::istringstream is(os.str());
  std::string meta_line;
  ASSERT_TRUE(std::getline(is, meta_line));
  const JsonValue meta = parse_json(meta_line);
  EXPECT_EQ(meta.string_or("kind", ""), "meta");
  EXPECT_EQ(meta.number_or("events", 0), 5.0);
  EXPECT_EQ(meta.number_or("dropped", 0), 3.0);
}

TEST(EventLogTest, ConcurrentEmittersAssignUniqueSeqs) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.emit(static_cast<Seconds>(i), EventSeverity::kInfo, "thread",
                 "tick", {field("t", t), field("i", i)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(log.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> seqs;
  for (const Event& e : log.events()) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(EventLogTest, DeterministicExportCanonicalizesInterleaving) {
  ScopedEnv env("GEOMAP_PROFILE_DETERMINISTIC", "1");
  // Same multiset of events, two emission orders (a thread race).
  EventLog a;
  a.emit(1.0, EventSeverity::kInfo, "runtime", "retry", {field("rank", 2)});
  a.emit(1.0, EventSeverity::kInfo, "runtime", "retry", {field("rank", 1)});
  a.emit(0.5, EventSeverity::kWarn, "runtime", "timeout", {field("rank", 3)});
  EventLog b;
  b.emit(0.5, EventSeverity::kWarn, "runtime", "timeout", {field("rank", 3)});
  b.emit(1.0, EventSeverity::kInfo, "runtime", "retry", {field("rank", 1)});
  b.emit(1.0, EventSeverity::kInfo, "runtime", "retry", {field("rank", 2)});
  std::ostringstream osa, osb;
  a.write_jsonl(osa);
  b.write_jsonl(osb);
  EXPECT_EQ(osa.str(), osb.str());
  // Seq stays monotone in file order after renumbering.
  std::istringstream is(osa.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));  // meta
  std::uint64_t last = 0;
  while (std::getline(is, line)) {
    const JsonValue v = parse_json(line);
    const auto seq = static_cast<std::uint64_t>(v.number_or("seq", 0));
    EXPECT_GT(seq, last);
    last = seq;
  }
  EXPECT_EQ(last, 3u);
}

TEST(EventLogTest, NonDeterministicExportKeepsEmissionOrder) {
  ScopedEnv env("GEOMAP_PROFILE_DETERMINISTIC", "0");
  EventLog log;
  log.emit(5.0, EventSeverity::kInfo, "z", "later");
  log.emit(1.0, EventSeverity::kInfo, "a", "earlier");
  std::ostringstream os;
  log.write_jsonl(os);
  const std::size_t z = os.str().find("\"z\"");
  const std::size_t a = os.str().find("\"a\"");
  ASSERT_NE(z, std::string::npos);
  ASSERT_NE(a, std::string::npos);
  EXPECT_LT(z, a);
}

TEST(EventLogTest, JsonlRoundTripsThroughReader) {
  EventLog log;
  log.emit(1.25, EventSeverity::kWarn, "migrate", "commit",
           {field("process", 7), field("downtime", 0.125),
            field("forced", true), field("cause", "outage")});
  std::ostringstream os;
  log.write_jsonl(os);
  std::istringstream is(os.str());
  const std::vector<Event> back = read_events_jsonl(is);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(event_to_json(back[0]), event_to_json(log.events()[0]));
  EXPECT_EQ(back[0].severity, EventSeverity::kWarn);
  ASSERT_EQ(back[0].fields.size(), 4u);
  EXPECT_EQ(back[0].fields[0].kind, EventField::Kind::kInt);
  EXPECT_EQ(back[0].fields[1].kind, EventField::Kind::kDouble);
  EXPECT_EQ(back[0].fields[2].kind, EventField::Kind::kBool);
  EXPECT_EQ(back[0].fields[3].kind, EventField::Kind::kString);
}

TEST(EventLogTest, SeverityParsesAndRejects) {
  EXPECT_EQ(parse_event_severity("debug"), EventSeverity::kDebug);
  EXPECT_EQ(parse_event_severity("error"), EventSeverity::kError);
  EXPECT_THROW(parse_event_severity("fatal"), Error);
}

// ---------------------------------------------------------------------------
// OpenMetrics

TEST(OpenMetricsTest, NameSanitizesToCharset) {
  EXPECT_EQ(openmetrics_name("migration.bytes_sent"),
            "geomap_migration_bytes_sent");
  EXPECT_EQ(openmetrics_name("link.latency-ratio{0->1}"),
            "geomap_link_latency_ratio_0__1_");
}

TEST(OpenMetricsTest, RendersCountersGaugesSummariesAndEof) {
  MetricsRegistry registry;
  registry.counter("migration.chunks").add(42);
  registry.gauge("storm.queue_depth").set(3.5);
  registry.histogram("migration.downtime_seconds").record(0.5);
  registry.histogram("migration.downtime_seconds").record(1.5);
  RunMeta meta;
  meta.bench = "test\"bench";  // label escaping
  meta.geomap_version = "1.0.0";
  meta.git_describe = "abc";
  meta.timestamp = "1970-01-01T00:00:00Z";
  std::ostringstream os;
  write_openmetrics(os, snapshot_metrics(registry), &meta);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE geomap_migration_chunks counter"),
            std::string::npos);
  EXPECT_NE(text.find("geomap_migration_chunks_total 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE geomap_storm_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE geomap_migration_downtime_seconds summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("geomap_migration_downtime_seconds_sum 2"),
            std::string::npos);
  EXPECT_NE(text.find("geomap_migration_downtime_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("geomap_build_info{"), std::string::npos);
  EXPECT_NE(text.find("test\\\"bench"), std::string::npos);
  // # EOF terminates the exposition.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetricsTest, ExportIsByteStableAcrossSnapshots) {
  MetricsRegistry registry;
  registry.counter("b.second").add(2);
  registry.counter("a.first").add(1);
  registry.histogram("h").record(1.0);
  std::ostringstream os1, os2;
  write_openmetrics(os1, snapshot_metrics(registry), nullptr);
  write_openmetrics(os2, snapshot_metrics(registry), nullptr);
  EXPECT_EQ(os1.str(), os2.str());
  // Sorted by name: a.first renders before b.second.
  EXPECT_LT(os1.str().find("geomap_a_first"), os1.str().find("geomap_b_second"));
}

TEST(OpenMetricsTest, DeltaSubtractsCountersAndHistograms) {
  MetricsRegistry registry;
  registry.counter("c").add(10);
  registry.gauge("g").set(1.0);
  registry.histogram("h").record(1.0);
  const MetricsSnapshot before = snapshot_metrics(registry);
  registry.counter("c").add(5);
  registry.gauge("g").set(9.0);
  registry.histogram("h").record(3.0);
  const MetricsSnapshot after = snapshot_metrics(registry);
  const MetricsSnapshot delta = delta_metrics(before, after);
  EXPECT_EQ(delta.counters.at("c"), 5u);
  EXPECT_EQ(delta.gauges.at("g"), 9.0);  // gauges take the newer value
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
  EXPECT_EQ(delta.histograms.at("h").sum, 3.0);
}

// ---------------------------------------------------------------------------
// SLO error budgets

std::vector<Event> stream_of(const std::string& component,
                             const std::string& name, const std::string& key,
                             const std::vector<double>& values) {
  std::vector<Event> events;
  for (std::size_t i = 0; i < values.size(); ++i) {
    Event e;
    e.seq = i + 1;
    e.t = static_cast<Seconds>(i);
    e.component = component;
    e.name = name;
    e.fields.push_back(field(key, values[i]));
    events.push_back(e);
  }
  return events;
}

SloSpec latency_spec(double threshold, double objective) {
  SloSpec s;
  s.name = "lat";
  s.component = "detector";
  s.event = "onset";
  s.field = "latency";
  s.threshold = threshold;
  s.objective = objective;
  return s;
}

TEST(SloTest, BurnMathOnHandBuiltStream) {
  // 10 events, 2 over the threshold, objective 0.9: budget 0.1,
  // budget_used 0.2, burn 2.0 -> blown.
  const std::vector<Event> events = stream_of(
      "detector", "onset", "latency",
      {1, 1, 1, 1, 1, 1, 1, 1, 50, 60});
  const SloReport report = evaluate_slos(events, {latency_spec(10.0, 0.9)});
  ASSERT_EQ(report.slos.size(), 1u);
  const SloResult& r = report.slos[0];
  EXPECT_EQ(r.events, 10u);
  EXPECT_EQ(r.good, 8u);
  EXPECT_EQ(r.bad, 2u);
  EXPECT_DOUBLE_EQ(r.compliance, 0.8);
  EXPECT_DOUBLE_EQ(r.error_budget, 0.1);
  EXPECT_DOUBLE_EQ(r.budget_used, 0.2);
  EXPECT_DOUBLE_EQ(r.burn, 2.0);
  EXPECT_DOUBLE_EQ(r.worst, 60.0);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(report.ok);
}

TEST(SloTest, ExactBudgetSpendStillHolds) {
  // 1 bad in 10 with objective 0.9 burns exactly 1.0 — within budget.
  const std::vector<Event> events = stream_of(
      "detector", "onset", "latency", {1, 1, 1, 1, 1, 1, 1, 1, 1, 50});
  const SloReport report = evaluate_slos(events, {latency_spec(10.0, 0.9)});
  EXPECT_DOUBLE_EQ(report.slos[0].burn, 1.0);
  EXPECT_TRUE(report.slos[0].ok);
  EXPECT_TRUE(report.ok);
}

TEST(SloTest, VacuousSloIsMet) {
  const SloReport report = evaluate_slos({}, {latency_spec(10.0, 0.9)});
  EXPECT_EQ(report.slos[0].events, 0u);
  EXPECT_DOUBLE_EQ(report.slos[0].compliance, 1.0);
  EXPECT_DOUBLE_EQ(report.slos[0].burn, 0.0);
  EXPECT_TRUE(report.ok);
}

TEST(SloTest, HigherIsBetterFlipsTheComparison) {
  SloSpec spec = latency_spec(0.9, 0.5);
  spec.field = "jain_index";
  spec.higher_is_better = true;
  const std::vector<Event> events =
      stream_of("detector", "onset", "jain_index", {0.95, 0.99, 0.5});
  const SloReport report = evaluate_slos(events, {spec});
  EXPECT_EQ(report.slos[0].good, 2u);
  EXPECT_EQ(report.slos[0].bad, 1u);
  // Worst for higher-is-better is the smallest observed value.
  EXPECT_DOUBLE_EQ(report.slos[0].worst, 0.5);
}

TEST(SloTest, SelectorsIgnoreOtherEventsAndMissingFields) {
  std::vector<Event> events =
      stream_of("detector", "onset", "latency", {1.0});
  // Same component, different event; and an onset without the field.
  Event other;
  other.component = "detector";
  other.name = "clear";
  other.fields.push_back(field("latency", 99.0));
  events.push_back(other);
  Event no_field;
  no_field.component = "detector";
  no_field.name = "onset";
  no_field.fields.push_back(field("note", "no latency here"));
  events.push_back(no_field);
  const SloReport report = evaluate_slos(events, {latency_spec(10.0, 0.9)});
  EXPECT_EQ(report.slos[0].events, 1u);
}

TEST(SloTest, SpecsParseFromJsonAndValidate) {
  const JsonValue doc = parse_json(R"({"slos": [
    {"name": "x", "component": "migrate", "event": "commit",
     "field": "downtime", "threshold": 2.5, "objective": 0.95,
     "higher_is_better": false, "description": "d"}]})");
  const std::vector<SloSpec> specs = slo_specs_from_json(doc);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "x");
  EXPECT_DOUBLE_EQ(specs[0].threshold, 2.5);
  EXPECT_DOUBLE_EQ(specs[0].objective, 0.95);

  const JsonValue bad = parse_json(
      R"({"slos": [{"name": "x", "component": "a", "event": "b",
          "field": "c", "threshold": 1, "objective": 1.5}]})");
  EXPECT_THROW(slo_specs_from_json(bad), Error);
}

TEST(SloTest, ReportJsonFlattensForRegressEngine) {
  const std::vector<Event> events = stream_of(
      "detector", "onset", "latency", {1, 50});
  const SloReport report = evaluate_slos(events, {latency_spec(10.0, 0.9)});
  std::ostringstream os;
  write_slo_json(os, report);
  const JsonValue doc = parse_json(os.str());
  const JsonValue* slos = doc.find("slos");
  ASSERT_NE(slos, nullptr);
  const JsonValue* lat = slos->find("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_DOUBLE_EQ(lat->number_or("burn", 0), 5.0);
  EXPECT_DOUBLE_EQ(lat->number_or("compliance", 0), 0.5);
  const JsonValue* ok = doc.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->as_bool());
}

TEST(SloTest, DefaultSpecsCoverTheClosedLoop) {
  const std::vector<SloSpec> specs = default_slo_specs();
  std::set<std::string> names;
  for (const SloSpec& s : specs) {
    names.insert(s.name);
    EXPECT_GT(s.objective, 0.0);
    EXPECT_LT(s.objective, 1.0);
  }
  EXPECT_TRUE(names.count("detection_latency"));
  EXPECT_TRUE(names.count("remap_queue_wait"));
  EXPECT_TRUE(names.count("migration_downtime"));
  EXPECT_TRUE(names.count("placement_stretch"));
}

// ---------------------------------------------------------------------------
// Emission sites: nullptr bit-identity and deterministic reruns

TEST(EventEmissionTest, DetectorStreamsOnsetsWithoutChangingVerdicts) {
  // Identical telemetry through two detectors — one streaming to an event
  // log, one not. The verdicts must match; the log gets onset and clear.
  const auto feed = [](DegradationDetector& d) {
    for (int i = 0; i < 4; ++i)
      d.observe_latency_ratio(0, 1, static_cast<Seconds>(i), 3.0);
    for (int i = 4; i < 30; ++i)
      d.observe_latency_ratio(0, 1, static_cast<Seconds>(i), 1.0);
    d.observe_timeout(2, 3, 5.0);
  };
  DegradationDetector plain;
  feed(plain);
  EventLog log;
  DegradationDetector streaming;
  streaming.set_event_log(&log);
  feed(streaming);

  const std::vector<DegradationEvent> expected = plain.events();
  const std::vector<DegradationEvent> got = streaming.events();
  ASSERT_EQ(got.size(), expected.size());
  ASSERT_GE(got.size(), 2u);  // one latency episode + one down episode
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, expected[i].kind);
    EXPECT_EQ(got[i].onset_vtime, expected[i].onset_vtime);
    EXPECT_EQ(got[i].detect_vtime, expected[i].detect_vtime);
    EXPECT_EQ(got[i].end_vtime, expected[i].end_vtime);
    EXPECT_EQ(got[i].severity, expected[i].severity);
  }
  std::size_t onsets = 0, clears = 0;
  for (const Event& e : log.events()) {
    EXPECT_EQ(e.component, "detector");
    if (e.name == "onset") ++onsets;
    if (e.name == "clear") ++clears;
  }
  EXPECT_EQ(onsets, expected.size());
  EXPECT_GE(clears, 1u);  // the latency episode decayed closed
}

TEST(EventEmissionTest, ExecutorStreamsProtocolBitIdentically) {
  // Deterministic executor run (single-threaded, discrete-event): the
  // report must not change when the collector streams protocol events.
  const mapping::MappingProblem problem =
      testutil::random_problem(6, 0.0, /*seed=*/7, /*degree=*/3, /*slack=*/2);
  const Mapping current{0, 0, 1, 1, 2, 2};
  const Mapping target{3, 3, 1, 1, 2, 2};
  fault::FaultPlan plan(11);
  plan.add_site_degradation(1, 0.0, 5.0, 0.5, 2.0);
  migrate::MigrationOptions options;
  options.bytes_per_process = 10.0 * kMiB;
  options.chunk_bytes = 1.0 * kMiB;
  const migrate::MigrationReport baseline = migrate::execute_migration(
      problem, current, target, plan, 0.0, options);

  obs::Collector collector;
  migrate::MigrationOptions instrumented = options;
  instrumented.collector = &collector;
  const migrate::MigrationReport observed = migrate::execute_migration(
      problem, current, target, plan, 0.0, instrumented);

  EXPECT_EQ(observed.final_mapping, baseline.final_mapping);
  EXPECT_EQ(observed.bytes_sent, baseline.bytes_sent);
  EXPECT_EQ(observed.finish_time, baseline.finish_time);
  EXPECT_EQ(observed.max_downtime, baseline.max_downtime);
  EXPECT_EQ(observed.events.size(), baseline.events.size());

  // The stream carries every non-chunk protocol transition; commits
  // carry the downtime the SLO tracker consumes.
  std::size_t commits = 0;
  for (const Event& e : collector.events().events()) {
    EXPECT_EQ(e.component, "migrate");
    EXPECT_NE(e.name, "chunk");
    if (e.name == "commit") {
      ++commits;
      bool has_downtime = false;
      for (const EventField& f : e.fields)
        if (f.key == "downtime") has_downtime = true;
      EXPECT_TRUE(has_downtime);
    }
  }
  EXPECT_EQ(commits, 2u);
}

TEST(EventEmissionTest, MultiTenantSoakStreamsLifecycleBitIdentically) {
  tenancy::MultiTenantSoakOptions options;
  options.substrate.num_sites = 4;
  options.substrate.num_tenants = 6;
  const tenancy::MultiTenantSoakCase baseline =
      tenancy::run_multitenant_soak_case(5, options);

  obs::Collector collector;
  tenancy::MultiTenantSoakOptions instrumented = options;
  instrumented.collector = &collector;
  const tenancy::MultiTenantSoakCase observed =
      tenancy::run_multitenant_soak_case(5, instrumented);

  EXPECT_EQ(observed.detected, baseline.detected);
  EXPECT_EQ(observed.detect_time, baseline.detect_time);
  EXPECT_EQ(observed.requests, baseline.requests);
  EXPECT_EQ(observed.storm.requeues, baseline.storm.requeues);
  EXPECT_EQ(observed.storm.gave_up, baseline.storm.gave_up);
  EXPECT_EQ(observed.fairness.jain_index, baseline.fairness.jain_index);
  EXPECT_EQ(observed.violations.size(), baseline.violations.size());

  // Lifecycle events present: case_start first, case_done last.
  const std::vector<Event> events = collector.events().events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().component, "soak");
  EXPECT_EQ(events.front().name, "case_start");
  EXPECT_EQ(events.back().name, "case_done");
  bool saw_detect = false, saw_sched = false;
  for (const Event& e : events) {
    if (e.component == "soak" && e.name == "detect") saw_detect = true;
    if (e.component == "scheduler") saw_sched = true;
  }
  EXPECT_TRUE(saw_detect);
  EXPECT_TRUE(saw_sched);
}

TEST(EventEmissionTest, DeterministicRerunsExportByteIdenticalJsonl) {
  ScopedEnv env("GEOMAP_PROFILE_DETERMINISTIC", "1");
  tenancy::MultiTenantSoakOptions options;
  options.substrate.num_sites = 4;
  options.substrate.num_tenants = 6;

  std::string exports[2];
  for (std::string& out : exports) {
    obs::Collector collector;
    tenancy::MultiTenantSoakOptions instrumented = options;
    instrumented.collector = &collector;
    (void)tenancy::run_multitenant_soak_case(5, instrumented);
    std::ostringstream os;
    collector.write_events_jsonl(os);
    out = os.str();
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_NE(exports[0].find("case_done"), std::string::npos);
}

// The window obsctl's `timeline --since/--until` and `events` filters
// share (obs/timeseries.h). Bounds are inclusive on both ends.
TEST(TimeWindowTest, DefaultWindowContainsEverything) {
  const TimeWindow w;
  EXPECT_FALSE(w.empty());
  EXPECT_TRUE(w.contains(-1e18));
  EXPECT_TRUE(w.contains(0.0));
  EXPECT_TRUE(w.contains(1e18));
  EXPECT_TRUE(w.intersects(-5.0, -4.0));
}

TEST(TimeWindowTest, BoundsAreInclusive) {
  const TimeWindow w{2.0, 7.0};
  EXPECT_TRUE(w.contains(2.0));
  EXPECT_TRUE(w.contains(7.0));
  EXPECT_FALSE(w.contains(std::nextafter(2.0, 0.0)));
  EXPECT_FALSE(w.contains(std::nextafter(7.0, 100.0)));
  // A span entirely before / entirely after does not intersect; one
  // touching an endpoint does.
  EXPECT_FALSE(w.intersects(0.0, 1.9));
  EXPECT_FALSE(w.intersects(7.1, 9.0));
  EXPECT_TRUE(w.intersects(1.0, 2.0));
  EXPECT_TRUE(w.intersects(7.0, 9.0));
  EXPECT_DOUBLE_EQ(w.clamp(0.0), 2.0);
  EXPECT_DOUBLE_EQ(w.clamp(9.0), 7.0);
  EXPECT_DOUBLE_EQ(w.clamp(5.0), 5.0);
}

TEST(TimeWindowTest, SinceEqualsUntilSelectsExactlyThatInstant) {
  const TimeWindow w{3.0, 3.0};
  EXPECT_FALSE(w.empty());
  EXPECT_TRUE(w.contains(3.0));
  EXPECT_FALSE(w.contains(3.0 - 1e-12));
  EXPECT_FALSE(w.contains(3.0 + 1e-12));
}

TEST(TimeWindowTest, SinceAfterUntilIsEmpty) {
  const TimeWindow w{5.0, 3.0};
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(w.contains(4.0));
  EXPECT_FALSE(w.intersects(0.0, 10.0));
}

namespace {
void write_jsonl_atomically(const std::filesystem::path& path,
                            const EventLog& log) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream os(tmp);
    log.write_jsonl(os);
  }
  std::filesystem::rename(tmp, path);  // the exporter's swap discipline
}
}  // namespace

TEST(FollowCursorTest, ResumesAcrossAtomicSnapshotSwap) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "geomap-follow-test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = dir / "events.jsonl";

  EventLog log;
  log.emit(1.0, EventSeverity::kInfo, "scheduler", "queue",
           {field("tenant", 0)});
  log.emit(2.0, EventSeverity::kWarn, "detector", "onset",
           {field("src", 0), field("dst", 1)});
  write_jsonl_atomically(path, log);

  FollowCursor cursor;
  const auto load = [&] {
    std::ifstream is(path);
    return read_events_jsonl(is);
  };
  std::vector<Event> fresh = cursor.take_new(load());
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(cursor.last_seq, 2u);

  // Re-reading the unchanged snapshot yields nothing new.
  EXPECT_TRUE(cursor.take_new(load()).empty());

  // The producer emits more and swaps in a bigger whole-file snapshot:
  // the cursor must yield exactly the fresh tail, never the prefix again.
  log.emit(3.0, EventSeverity::kInfo, "migrate", "commit",
           {field("process", 4), field("downtime", 0.5)});
  log.emit(4.0, EventSeverity::kInfo, "soak", "case_done", {});
  write_jsonl_atomically(path, log);

  fresh = cursor.take_new(load());
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].seq, 3u);
  EXPECT_EQ(fresh[0].component, "migrate");
  EXPECT_EQ(fresh[1].seq, 4u);
  EXPECT_EQ(cursor.last_seq, 4u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace geomap::obs
