// Unit tests for geomap_common: RNG determinism and distribution sanity,
// statistics, dense matrices, parallel_for semantics, table rendering and
// the CLI parser.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>

#include "common/cli.h"
#include "common/dense_matrix.h"
#include "common/error.h"
#include "common/json_writer.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace geomap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> hist(7, 0);
  const int draws = 70000;
  for (int i = 0; i < draws; ++i) ++hist[rng.uniform_index(7)];
  for (const int count : hist) {
    EXPECT_NEAR(static_cast<double>(count), draws / 7.0, draws * 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_NE(v[0] * 100 + v[1], 0 * 100 + 1);  // virtually surely moved
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RunningStats, MatchesHandComputedValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(v, 10), 1.4);
}

TEST(Stats, PercentileRejectsBadInput) {
  // The contract (common/stats.h): empty samples and pct outside [0, 100]
  // throw InvalidArgument — never a silent clamp or an out-of-bounds read.
  EXPECT_THROW(percentile({}, 50), InvalidArgument);
  EXPECT_THROW(percentile({}, 0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 100.0000001), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, std::nan("")), InvalidArgument);
  // Boundary percentiles remain valid on a single-element sample.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(EmpiricalCdf, AtAndQuantileAreConsistent) {
  EmpiricalCdf cdf({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
}

TEST(DenseMatrix, StoresAndRetrieves) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(DenseMatrix, BoundsChecked) {
  Matrix m = Matrix::square(2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(ParallelFor, ComputesSameSumAsSerial) {
  const std::size_t n = 10000;
  std::vector<double> values(n);
  parallel_for(0, n, [&](std::size_t i) {
    values[i] = std::sin(static_cast<double>(i));
  });
  double expected = 0;
  for (std::size_t i = 0; i < n; ++i) expected += std::sin(static_cast<double>(i));
  double actual = std::accumulate(values.begin(), values.end(), 0.0);
  EXPECT_NEAR(actual, expected, 1e-9);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 42) throw Error("boom");
                            }),
               Error);
}

TEST(ParallelFor, RespectsWorkerOverride) {
  set_parallel_workers(3);
  EXPECT_EQ(parallel_workers(), 3u);
  set_parallel_workers(0);
  EXPECT_GE(parallel_workers(), 1u);
}

TEST(Table, RendersAlignedRowsAndCsv) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("b,eta").cell(20LL);
  std::ostringstream text;
  t.print(text);
  EXPECT_NE(text.str().find("| alpha | 1.5"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_NE(csv.str().find("\"b,eta\",20"), std::string::npos);
}

TEST(Table, RejectsMisshapenRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Cli, ParsesAllValueForms) {
  CliParser cli("test");
  cli.add_int("count", 1, "");
  cli.add_double("ratio", 0.5, "");
  cli.add_string("name", "x", "");
  cli.add_bool("flag", false, "");
  const char* argv[] = {"prog", "--count=7", "--ratio", "0.25", "--flag",
                        "--name=hello"};
  ASSERT_TRUE(cli.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("count"), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.25);
  EXPECT_EQ(cli.get_string("name"), "hello");
  EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, RejectsUnknownFlagAndBadValue) {
  CliParser cli("test");
  cli.add_int("count", 1, "");
  const char* bad_flag[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, const_cast<char**>(bad_flag)), InvalidArgument);
  CliParser cli2("test");
  cli2.add_int("count", 1, "");
  const char* bad_value[] = {"prog", "--count=abc"};
  EXPECT_THROW(cli2.parse(2, const_cast<char**>(bad_value)), InvalidArgument);
}

TEST(Cli, HelpReturnsFalse) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Checks, MacrosThrowWithContext) {
  try {
    GEOMAP_CHECK_MSG(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

TEST(JsonWriter, EmitsNestedStructuresCompact) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.field("name", "geo");
  w.field("count", 3);
  w.field("ok", true);
  w.key("costs").begin_array();
  w.value(1.5).value(static_cast<std::int64_t>(-2)).null();
  w.end_array();
  w.key("nested").begin_object().field("x", 1).end_object();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "{\"name\":\"geo\",\"count\":3,\"ok\":true,"
            "\"costs\":[1.5,-2,null],\"nested\":{\"x\":1}}");
}

TEST(JsonWriter, EscapesStringsAndHandlesNonFinite) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t\x01"),
            "a\\\"b\\\\c\\n\\t\\u0001");
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/false);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");  // non-finite is not JSON
}

TEST(JsonWriter, DoubleFormattingRoundTrips) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 12345.6789, 2.0, -0.0}) {
    const std::string s = JsonWriter::format_double(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  // Integer-valued doubles read back as JSON numbers, not strings.
  EXPECT_EQ(JsonWriter::format_double(3.0), "3.0");
}

TEST(JsonWriter, RejectsMalformedSequences) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1.0), Error);  // member value without a key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.end_object(), Error);  // mismatched close
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.value(1.0);
    EXPECT_THROW(w.value(2.0), Error);  // two top-level values
  }
}

}  // namespace
}  // namespace geomap
