// Tests for the mapping library: problem validation, cost function
// correctness (full + incremental), and feasibility/quality properties of
// every mapper, parameterized across algorithms and random instances.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/error.h"
#include "mapping/cost.h"
#include "mapping/exhaustive_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/mapper.h"
#include "mapping/metrics.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "mapping/round_robin_mapper.h"
#include "core/geodist_mapper.h"
#include "test_util.h"

namespace geomap::mapping {
namespace {

using testutil::random_problem;
using testutil::tiny_problem;

TEST(Problem, ValidateCatchesMalformedInstances) {
  MappingProblem p = random_problem(8, 0.0, 1);
  EXPECT_NO_THROW(p.validate());

  MappingProblem bad_caps = p;
  bad_caps.capacities.pop_back();
  EXPECT_THROW(bad_caps.validate(), Error);

  MappingProblem no_room = p;
  for (auto& c : no_room.capacities) c = 1;  // 4 < 8 processes
  EXPECT_THROW(no_room.validate(), Error);

  MappingProblem bad_pin = p;
  bad_pin.constraints.assign(8, kUnconstrained);
  bad_pin.constraints[0] = 99;
  EXPECT_THROW(bad_pin.validate(), Error);

  MappingProblem overfull_pin = p;
  overfull_pin.constraints.assign(8, 0);  // all pinned to site 0 (cap 2)
  EXPECT_THROW(overfull_pin.validate(), Error);
}

TEST(Problem, ValidateThrowsInvalidArgumentForBadInput) {
  // Malformed instances are caller errors: validate() must throw the
  // InvalidArgument subclass, not just the Error base.
  MappingProblem p = random_problem(8, 0.0, 1);

  MappingProblem negative_cap = p;
  negative_cap.capacities[1] = -3;
  EXPECT_THROW(negative_cap.validate(), InvalidArgument);

  MappingProblem infeasible = p;
  for (auto& c : infeasible.capacities) c = 1;  // total 4 < 8 processes
  EXPECT_THROW(infeasible.validate(), InvalidArgument);

  MappingProblem pin_out_of_range = p;
  pin_out_of_range.constraints.assign(8, kUnconstrained);
  pin_out_of_range.constraints[2] = p.num_sites();
  EXPECT_THROW(pin_out_of_range.validate(), InvalidArgument);

  MappingProblem pins_overflow_site = p;
  pins_overflow_site.constraints.assign(8, 0);  // site 0 holds only 2
  EXPECT_THROW(pins_overflow_site.validate(), InvalidArgument);

  MappingProblem wrong_constraint_len = p;
  wrong_constraint_len.constraints.assign(5, kUnconstrained);
  EXPECT_THROW(wrong_constraint_len.validate(), InvalidArgument);
}

TEST(Problem, CapacityViolatingMappingThrowsConstraintViolation) {
  const MappingProblem p = random_problem(8, 0.0, 4);
  // Cram everything onto site 1 (capacity 2): feasibility, not input
  // shape, is what breaks — so this is ConstraintViolation.
  const Mapping crammed(8, 1);
  EXPECT_THROW(validate_mapping(p, crammed), ConstraintViolation);
  EXPECT_FALSE(is_feasible(p, crammed));
}

TEST(Problem, ValidateMappingCatchesViolations) {
  MappingProblem p = random_problem(8, 0.0, 2);
  p.constraints.assign(8, kUnconstrained);
  p.constraints[3] = 2;

  Mapping ok(8, 0);
  // Capacity of site 0 is 2 -> overfull.
  EXPECT_THROW(validate_mapping(p, ok), ConstraintViolation);

  Mapping spread = {0, 0, 1, 2, 1, 2, 3, 3};
  EXPECT_NO_THROW(validate_mapping(p, spread));
  EXPECT_TRUE(is_feasible(p, spread));

  Mapping pin_broken = spread;
  pin_broken[3] = 1;
  pin_broken[2] = 2;
  EXPECT_THROW(validate_mapping(p, pin_broken), ConstraintViolation);

  Mapping wrong_size(7, 0);
  EXPECT_THROW(validate_mapping(p, wrong_size), ConstraintViolation);
  Mapping bad_site = spread;
  bad_site[0] = 9;
  EXPECT_THROW(validate_mapping(p, bad_site), ConstraintViolation);
}

TEST(Problem, RandomConstraintsHonourRatioAndCapacity) {
  Rng rng(3);
  const std::vector<int> caps = {4, 4, 4, 4};
  for (const double ratio : {0.0, 0.25, 0.5, 1.0}) {
    const ConstraintVector c = make_random_constraints(16, caps, ratio, rng);
    int pinned = 0;
    std::vector<int> per_site(4, 0);
    for (const SiteId s : c) {
      if (s == kUnconstrained) continue;
      ++pinned;
      ++per_site[static_cast<std::size_t>(s)];
    }
    EXPECT_EQ(pinned, static_cast<int>(ratio * 16 + 0.5)) << ratio;
    for (int j = 0; j < 4; ++j) EXPECT_LE(per_site[static_cast<std::size_t>(j)], 4);
  }
}

// Cost function vs a direct dense evaluation of paper Equation (2).
TEST(Cost, MatchesDenseReference) {
  const MappingProblem p = random_problem(12, 0.0, 5);
  Rng rng(17);
  const Mapping mapping = RandomMapper::draw(p, rng);
  const CostEvaluator eval(p);

  double expected = 0;
  for (ProcessId i = 0; i < p.num_processes(); ++i) {
    for (ProcessId j = 0; j < p.num_processes(); ++j) {
      const double vol = p.comm.volume(i, j);
      const double cnt = p.comm.count(i, j);
      if (vol == 0 && cnt == 0) continue;
      const SiteId si = mapping[static_cast<std::size_t>(i)];
      const SiteId sj = mapping[static_cast<std::size_t>(j)];
      expected += cnt * p.network.latency(si, sj) +
                  vol / p.network.bandwidth(si, sj);
    }
  }
  EXPECT_NEAR(eval.total_cost(mapping), expected, expected * 1e-12);
}

// Property: delta_move equals recomputing the full cost, across many
// random moves.
TEST(Cost, DeltaMoveMatchesRecompute) {
  const MappingProblem p = random_problem(16, 0.0, 7);
  const CostEvaluator eval(p);
  Rng rng(23);
  // Use slack so arbitrary moves stay feasible in principle (the cost
  // function itself is capacity-agnostic).
  Mapping mapping = RandomMapper::draw(p, rng);
  for (int trial = 0; trial < 60; ++trial) {
    const auto i = static_cast<ProcessId>(rng.uniform_index(16));
    const auto to = static_cast<SiteId>(rng.uniform_index(4));
    const double before = eval.total_cost(mapping);
    const double delta = eval.delta_move(mapping, i, to);
    Mapping moved = mapping;
    moved[static_cast<std::size_t>(i)] = to;
    EXPECT_NEAR(before + delta, eval.total_cost(moved), before * 1e-10);
    mapping = moved;
  }
}

TEST(Cost, DeltaSwapMatchesRecomputeAndRestores) {
  const MappingProblem p = random_problem(16, 0.0, 9);
  const CostEvaluator eval(p);
  Rng rng(29);
  Mapping mapping = RandomMapper::draw(p, rng);
  const Mapping snapshot = mapping;
  for (int trial = 0; trial < 60; ++trial) {
    const auto a = static_cast<ProcessId>(rng.uniform_index(16));
    const auto b = static_cast<ProcessId>(rng.uniform_index(16));
    if (a == b) continue;
    const double before = eval.total_cost(mapping);
    const double delta = eval.delta_swap(mapping, a, b);
    EXPECT_EQ(mapping, snapshot) << "delta_swap must restore the mapping";
    Mapping swapped = mapping;
    std::swap(swapped[static_cast<std::size_t>(a)],
              swapped[static_cast<std::size_t>(b)]);
    EXPECT_NEAR(before + delta, eval.total_cost(swapped), before * 1e-10);
  }
}

TEST(Cost, IncidentCostSumsBothDirections) {
  trace::CommMatrix::Builder b(3);
  b.add_message(0, 1, 1000, 2);
  b.add_message(1, 0, 500, 1);
  b.add_message(2, 1, 200, 1);
  Matrix lat = Matrix::square(2, 0.0);
  lat(0, 1) = 0.1;
  lat(1, 0) = 0.2;
  Matrix bw = Matrix::square(2, 1e3);
  MappingProblem p;
  p.comm = b.build();
  p.network = net::NetworkModel(lat, bw);
  p.capacities = {2, 2};
  const CostEvaluator eval(p);
  const Mapping m = {0, 1, 1};
  // Process 1's incident edges: 0->1 (2*0.1 + 1), 1->0 (1*0.2 + 0.5),
  // 2->1 (intra: 0 + 0.2).
  EXPECT_NEAR(eval.incident_cost(m, 1), (0.2 + 1.0) + (0.2 + 0.5) + 0.2,
              1e-12);
  // All edges touch process 1, so incident(1) == total.
  EXPECT_NEAR(eval.incident_cost(m, 1), eval.total_cost(m), 1e-12);
}

TEST(Metrics, ImprovementAndNormalize) {
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(10.0, 12.0), -20.0);
  EXPECT_THROW(improvement_percent(0.0, 5.0), Error);
  EXPECT_DOUBLE_EQ(normalize(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(normalize(3.0, 3.0, 3.0), 0.0);
}

// ---- Parameterized feasibility suite over every mapper ----

struct MapperCase {
  std::string name;
  std::function<std::unique_ptr<Mapper>()> make;
};

class AllMappersTest
    : public ::testing::TestWithParam<std::tuple<MapperCase, int>> {};

TEST_P(AllMappersTest, ProducesFeasibleMappingsUnderConstraints) {
  const auto& [mapper_case, seed] = GetParam();
  for (const double ratio : {0.0, 0.2, 0.6}) {
    const MappingProblem p =
        random_problem(20, ratio, static_cast<std::uint64_t>(seed));
    auto mapper = mapper_case.make();
    const MapperRun run = run_mapper(*mapper, p);  // validates internally
    EXPECT_GT(run.cost, 0.0);
    EXPECT_EQ(static_cast<int>(run.mapping.size()), 20);
  }
}

TEST_P(AllMappersTest, NeverWorseThanOptimalOnTinyInstances) {
  const auto& [mapper_case, seed] = GetParam();
  const MappingProblem p = tiny_problem(7, static_cast<std::uint64_t>(seed));
  ExhaustiveMapper optimal;
  const MapperRun best = run_mapper(optimal, p);
  auto mapper = mapper_case.make();
  const MapperRun run = run_mapper(*mapper, p);
  EXPECT_GE(run.cost, best.cost * (1.0 - 1e-9))
      << mapper_case.name << " beat the exhaustive optimum?!";
}

const MapperCase kMapperCases[] = {
    {"Baseline", [] { return std::make_unique<RandomMapper>(); }},
    {"Block", [] { return std::make_unique<BlockMapper>(); }},
    {"Cyclic", [] { return std::make_unique<CyclicMapper>(); }},
    {"Greedy", [] { return std::make_unique<GreedyMapper>(); }},
    {"MPIPP", [] { return std::make_unique<MpippMapper>(); }},
    {"GeoDistributed",
     [] { return std::make_unique<core::GeoDistMapper>(); }},
    {"GeoDistNaive",
     [] {
       core::GeoDistOptions opts;
       opts.fill = core::GeoDistOptions::FillEngine::kNaive;
       return std::make_unique<core::GeoDistMapper>(opts);
     }},
};

INSTANTIATE_TEST_SUITE_P(
    Mappers, AllMappersTest,
    ::testing::Combine(::testing::ValuesIn(kMapperCases),
                       ::testing::Values(101, 202, 303)),
    [](const ::testing::TestParamInfo<AllMappersTest::ParamType>& info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Exhaustive, FindsKnownOptimum) {
  // Two heavy-talking processes and two quiet ones, two sites: the
  // optimum co-locates the heavy pair on one site.
  trace::CommMatrix::Builder b(4);
  b.add_message(0, 1, 1 << 20, 10);
  b.add_message(2, 3, 1024, 1);
  Matrix lat = Matrix::square(2, 1e-4);
  lat(0, 1) = lat(1, 0) = 0.1;
  Matrix bw = Matrix::square(2, 100e6);
  bw(0, 1) = bw(1, 0) = 1e6;

  MappingProblem p;
  p.comm = b.build();
  p.network = net::NetworkModel(lat, bw);
  p.capacities = {2, 2};
  p.validate();

  ExhaustiveMapper mapper;
  const Mapping m = mapper.map(p);
  EXPECT_EQ(m[0], m[1]);
  EXPECT_EQ(m[2], m[3]);
  EXPECT_NE(m[0], m[2]);
}

TEST(Exhaustive, RefusesLargeInstances) {
  const MappingProblem p = random_problem(20, 0.0, 1);
  ExhaustiveMapper mapper(12);
  EXPECT_THROW(mapper.map(p), Error);
}

TEST(Mpipp, ImprovesOnItsRandomStart) {
  const MappingProblem p = random_problem(24, 0.2, 31);
  RandomMapper baseline(7);  // same seed as MPIPP's first restart
  MpippMapper mpipp;
  const MapperRun base = run_mapper(baseline, p);
  const MapperRun refined = run_mapper(mpipp, p);
  EXPECT_LE(refined.cost, base.cost);
}

TEST(RoundRobin, BlockFillsSitesInOrder) {
  const MappingProblem p = random_problem(8, 0.0, 3);
  BlockMapper mapper;
  const Mapping m = mapper.map(p);
  // Capacities are 2 per site: ranks 0,1 -> site 0; 2,3 -> site 1; ...
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 0);
  EXPECT_EQ(m[2], 1);
  EXPECT_EQ(m[6], 3);
}

TEST(RoundRobin, CyclicDealsAcrossSites) {
  const MappingProblem p = random_problem(8, 0.0, 3);
  CyclicMapper mapper;
  const Mapping m = mapper.map(p);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 1);
  EXPECT_EQ(m[2], 2);
  EXPECT_EQ(m[3], 3);
  EXPECT_EQ(m[4], 0);
}

TEST(Greedy, CoLocatesHeavyPairsWhenRoomAllows) {
  // A clique of 4 heavy processes + 4 singletons, sites of capacity 4:
  // greedy graph growing should put the clique on one site.
  trace::CommMatrix::Builder b(8);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) b.add_message(i, j, 1 << 20, 5);
  b.add_message(4, 5, 64, 1);
  b.add_message(6, 7, 64, 1);

  const net::CloudTopology topo(net::aws_experiment_profile(4));
  MappingProblem p;
  p.comm = b.build();
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.validate();

  GreedyMapper mapper;
  const Mapping m = mapper.map(p);
  EXPECT_EQ(m[0], m[1]);
  EXPECT_EQ(m[1], m[2]);
  EXPECT_EQ(m[2], m[3]);
}

TEST(RandomMapper, DrawIsUniformishAcrossSites) {
  const MappingProblem p = random_problem(16, 0.0, 13);
  Rng rng(99);
  std::vector<int> first_site(4, 0);
  for (int s = 0; s < 4000; ++s) {
    const Mapping m = RandomMapper::draw(p, rng);
    ++first_site[static_cast<std::size_t>(m[0])];
  }
  for (const int count : first_site) EXPECT_NEAR(count, 1000, 120);
}

}  // namespace
}  // namespace geomap::mapping
