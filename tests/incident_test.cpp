// Causal incident engine (src/obs/incident, src/fault/attribution):
// onset clustering and the merge gap, the telescoping stage budget,
// blame verdicts from observable evidence, SLO-singleton seeding,
// multi-case stream segmentation, the canonical JSON export and its
// inverse, byte-stability, and attribution scoring against seeded
// truth — synthetic streams first, then the real multi-tenant soak
// closed loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json_reader.h"
#include "fault/attribution.h"
#include "fault/fault_plan.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/eventlog.h"
#include "obs/incident.h"
#include "tenancy/soak.h"

namespace geomap::obs {
namespace {

/// One complete synthetic case: onset at 2.0 (fault at 1.5), a grant, a
/// reserve+commit evacuating site 1 to site 2, and the case_done with a
/// healthy stretch. One incident spanning [1.5, 6.0].
std::vector<Event> typical_case() {
  EventLog log;
  log.emit(0.0, EventSeverity::kInfo, "soak", "case_start",
           {field("seed", std::uint64_t{7}), field("tenants", 2)});
  log.emit(2.0, EventSeverity::kWarn, "detector", "onset",
           {field("src", 1), field("dst", 2), field("kind", "down"),
            field("onset", 1.5), field("latency", 0.5),
            field("severity", 50.0), field("confidence", 1.0)});
  log.emit(2.1, EventSeverity::kInfo, "scheduler", "queue",
           {field("tenant", 0), field("severity", 0.5)});
  log.emit(2.5, EventSeverity::kInfo, "scheduler", "grant",
           {field("tenant", 0), field("queue_wait", 0.4),
            field("attempts", 1), field("migration_seconds", 1.0)});
  log.emit(3.0, EventSeverity::kInfo, "migrate", "reserve",
           {field("process", 0), field("from", 1), field("to", 2)});
  log.emit(3.5, EventSeverity::kInfo, "migrate", "commit",
           {field("process", 0), field("from", 1), field("to", 2),
            field("downtime", 0.3)});
  log.emit(6.0, EventSeverity::kInfo, "soak", "case_done",
           {field("seed", std::uint64_t{7}), field("requests", 1),
            field("gave_up", 0), field("requeues", 0),
            field("violations", std::uint64_t{0}),
            field("p99_stretch", 1.2)});
  return log.events();
}

void expect_refolds(const Incident& inc) {
  ASSERT_EQ(inc.stages.size(), 4u) << inc.id;
  EXPECT_EQ(inc.stages[0].name, "detect");
  EXPECT_EQ(inc.stages[1].name, "queue");
  EXPECT_EQ(inc.stages[2].name, "migrate");
  EXPECT_EQ(inc.stages[3].name, "residual");
  EXPECT_DOUBLE_EQ(inc.stages.front().start, inc.start) << inc.id;
  EXPECT_DOUBLE_EQ(inc.stages.back().end, inc.end) << inc.id;
  double refold = 0;
  for (std::size_t i = 0; i < inc.stages.size(); ++i) {
    EXPECT_GE(inc.stages[i].seconds(), 0.0) << inc.id;
    if (i > 0) {
      EXPECT_DOUBLE_EQ(inc.stages[i].start, inc.stages[i - 1].end) << inc.id;
    }
    refold += inc.stages[i].seconds();
  }
  EXPECT_NEAR(refold, inc.duration(), 1e-9) << inc.id;
}

TEST(IncidentTest, TypicalCaseFoldsIntoOneChain) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& inc = incidents[0];
  EXPECT_EQ(inc.id, "inc-001");
  EXPECT_TRUE(inc.has_case_seed);
  EXPECT_EQ(inc.case_seed, 7u);
  // Fault onset opens the incident; the residual runs to case_done.
  EXPECT_DOUBLE_EQ(inc.start, 1.5);
  EXPECT_DOUBLE_EQ(inc.end, 6.0);
  expect_refolds(inc);
  // detect ends at the alarm, queue at the grant, migrate at the commit.
  EXPECT_DOUBLE_EQ(inc.stages[0].end, 2.0);
  EXPECT_DOUBLE_EQ(inc.stages[1].end, 2.5);
  EXPECT_DOUBLE_EQ(inc.stages[2].end, 3.5);
  EXPECT_DOUBLE_EQ(inc.stages[1].metric, 0.4);  // max queue wait
  EXPECT_DOUBLE_EQ(inc.stages[2].metric, 0.3);  // total commit downtime
  EXPECT_EQ(inc.counts.onsets, 1u);
  EXPECT_EQ(inc.counts.grants, 1u);
  EXPECT_EQ(inc.counts.commits, 1u);
}

TEST(IncidentTest, BlameArgmaxOverObservableEvidence) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  ASSERT_EQ(incidents.size(), 1u);
  const BlameVerdict& blame = incidents[0].blame;
  // Down-onset endpoints vote +1 each; the evacuation source (reserve +
  // commit `from`) votes +1 each; the destination votes -1 each. Site 1
  // nets 3, site 2 nets -1: blame site 1, every positive vote on it.
  EXPECT_EQ(blame.site, 1);
  EXPECT_DOUBLE_EQ(blame.confidence, 1.0);
  EXPECT_EQ(blame.link_src, 1);
  EXPECT_EQ(blame.link_dst, 2);
  EXPECT_EQ(blame.tenant, 0);
  EXPECT_EQ(blame.dominant_stage, "residual");  // [3.5, 6.0] is longest
  EXPECT_EQ(blame.implicated_sites, std::vector<SiteId>{1});
}

TEST(IncidentTest, MergeGapSplitsAndJoinsOnsetClusters) {
  const auto stream_with_onsets = [](Seconds second_alarm) {
    EventLog log;
    for (const Seconds t : {2.0, second_alarm}) {
      log.emit(t, EventSeverity::kWarn, "detector", "onset",
               {field("src", 0), field("dst", 1), field("kind", "down"),
                field("onset", t - 0.5), field("latency", 0.5),
                field("severity", 10.0), field("confidence", 1.0)});
    }
    return log.events();
  };
  // Within the default 5 s merge gap: one incident covering both.
  EXPECT_EQ(build_incidents(stream_with_onsets(4.0)).size(), 1u);
  // Far apart: two incidents, each with its own onset.
  const std::vector<Incident> split =
      build_incidents(stream_with_onsets(20.0));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].counts.onsets, 1u);
  EXPECT_EQ(split[1].counts.onsets, 1u);
  EXPECT_LT(split[0].end, split[1].start);
}

TEST(IncidentTest, SloViolatingSampleSeedsAnIncidentWithoutOnsets) {
  EventLog log;
  // No detector onsets at all — only a case_done whose p99 stretch blows
  // the placement_stretch SLO (threshold 4, objective 0.90).
  log.emit(5.0, EventSeverity::kInfo, "soak", "case_done",
           {field("seed", std::uint64_t{3}), field("p99_stretch", 9.0)});
  const std::vector<Incident> incidents = build_incidents(log.events());
  ASSERT_EQ(incidents.size(), 1u);
  const Incident& inc = incidents[0];
  EXPECT_DOUBLE_EQ(inc.start, 5.0);
  EXPECT_DOUBLE_EQ(inc.end, 5.0);
  expect_refolds(inc);
  ASSERT_EQ(inc.violated_slos.size(), 1u);
  EXPECT_EQ(inc.violated_slos[0], "placement_stretch");
  EXPECT_GT(inc.slo_burn, 0.0);
  EXPECT_EQ(inc.blame.site, -1);  // no evidence, no verdict
}

TEST(IncidentTest, QuietStreamProducesNoIncidents) {
  EventLog log;
  log.emit(1.0, EventSeverity::kInfo, "scheduler", "grant",
           {field("tenant", 0), field("queue_wait", 0.1)});
  EXPECT_TRUE(build_incidents(log.events()).empty());
}

TEST(IncidentTest, MultiCaseStreamSegmentsAtCaseStartMarkers) {
  // Two soak cases whose virtual clocks both restart at 0 — without
  // segmentation the second case's onset would merge into the first.
  EventLog log;
  for (const std::uint64_t seed : {11ull, 12ull}) {
    log.emit(0.0, EventSeverity::kInfo, "soak", "case_start",
             {field("seed", seed), field("tenants", 2)});
    log.emit(2.0, EventSeverity::kWarn, "detector", "onset",
             {field("src", 0), field("dst", 1), field("kind", "down"),
              field("onset", 1.5), field("latency", 0.5),
              field("severity", 10.0), field("confidence", 1.0)});
  }
  const std::vector<Incident> incidents = build_incidents(log.events());
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_TRUE(incidents[0].has_case_seed);
  EXPECT_TRUE(incidents[1].has_case_seed);
  // Same (start, end): the tie breaks on the later sort keys, but both
  // seeds must survive as distinct incidents.
  const std::uint64_t lo = std::min(incidents[0].case_seed,
                                    incidents[1].case_seed);
  const std::uint64_t hi = std::max(incidents[0].case_seed,
                                    incidents[1].case_seed);
  EXPECT_EQ(lo, 11u);
  EXPECT_EQ(hi, 12u);
}

TEST(IncidentTest, IncidentLogMergesCasesAndRenumbers) {
  IncidentLog log;
  std::vector<Incident> early = build_incidents(typical_case());
  // A second case starting later: shift a copy by hand.
  std::vector<Incident> late = build_incidents(typical_case());
  for (Incident& inc : late) {
    inc.start += 100.0;
    inc.end += 100.0;
    for (StageBudget& s : inc.stages) {
      s.start += 100.0;
      s.end += 100.0;
    }
  }
  log.add(late);
  log.add(early);
  EXPECT_EQ(log.count(), 2u);
  const std::vector<Incident> merged = log.snapshot();
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, "inc-001");
  EXPECT_EQ(merged[1].id, "inc-002");
  EXPECT_LT(merged[0].start, merged[1].start);  // canonical order
  EXPECT_FALSE(log.has_totals());
  AttributionTotals t;
  t.cases = 1;
  t.blamed = 2;
  t.correctly_blamed = 2;
  log.add_totals(t);
  EXPECT_TRUE(log.has_totals());
  EXPECT_EQ(log.totals().blamed, 2u);
}

TEST(IncidentTest, ExportIsByteStableAndRoundTrips) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  AttributionTotals totals;
  totals.cases = 1;
  totals.incidents = incidents.size();
  totals.blamed = 1;
  totals.correctly_blamed = 1;
  totals.episodes = 1;
  totals.attributed = 1;
  totals.onset_error_sum = 0.1;
  totals.onset_error_samples = 1;

  std::ostringstream a, b;
  write_incidents_json(a, incidents, &totals);
  write_incidents_json(b, incidents, &totals);
  EXPECT_EQ(a.str(), b.str());

  const IncidentsArtifact back =
      incidents_from_json(parse_json(a.str()));
  ASSERT_EQ(back.incidents.size(), incidents.size());
  ASSERT_TRUE(back.has_totals);
  const Incident& x = incidents[0];
  const Incident& y = back.incidents[0];
  EXPECT_EQ(y.id, x.id);
  EXPECT_EQ(y.has_case_seed, x.has_case_seed);
  EXPECT_EQ(y.case_seed, x.case_seed);
  EXPECT_DOUBLE_EQ(y.start, x.start);
  EXPECT_DOUBLE_EQ(y.end, x.end);
  EXPECT_EQ(y.blame.site, x.blame.site);
  EXPECT_EQ(y.blame.link_src, x.blame.link_src);
  EXPECT_EQ(y.blame.tenant, x.blame.tenant);
  EXPECT_EQ(y.blame.dominant_stage, x.blame.dominant_stage);
  EXPECT_EQ(y.counts.commits, x.counts.commits);
  EXPECT_EQ(y.violated_slos, x.violated_slos);
  ASSERT_EQ(y.stages.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(y.stages[i].name, x.stages[i].name);
    EXPECT_DOUBLE_EQ(y.stages[i].start, x.stages[i].start);
    EXPECT_DOUBLE_EQ(y.stages[i].end, x.stages[i].end);
    EXPECT_DOUBLE_EQ(y.stages[i].metric, x.stages[i].metric);
    EXPECT_EQ(y.stages[i].events, x.stages[i].events);
  }
  EXPECT_EQ(back.totals.blamed, totals.blamed);
  EXPECT_EQ(back.totals.episodes, totals.episodes);
  EXPECT_NEAR(back.totals.mean_onset_error(), totals.mean_onset_error(),
              1e-12);
}

TEST(IncidentTest, RejectsNonIncidentArtifacts) {
  EXPECT_THROW(incidents_from_json(parse_json("{\"series\": {}}")),
               Error);
}

// ---------------------------------------------------------------------------
// fault::score_attribution

std::vector<TruthWindow> outage_windows(SiteId site,
                                        const std::vector<SiteId>& others,
                                        Seconds start) {
  std::vector<TruthWindow> truth;
  for (const SiteId o : others) {
    truth.push_back({site, o, start,
                     std::numeric_limits<double>::infinity(), true});
    truth.push_back({o, site, start,
                     std::numeric_limits<double>::infinity(), true});
  }
  return truth;
}

TEST(AttributionScoreTest, CorrectBlameScoresPerfect) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  ASSERT_EQ(incidents[0].blame.site, 1);
  const AttributionTotals t = fault::score_attribution(
      incidents, outage_windows(1, {0, 2}, 1.4));
  EXPECT_EQ(t.cases, 1u);
  EXPECT_EQ(t.blamed, 1u);
  EXPECT_EQ(t.correctly_blamed, 1u);
  EXPECT_EQ(t.misblamed, 0u);
  EXPECT_EQ(t.episodes, 1u);
  EXPECT_EQ(t.attributed, 1u);
  EXPECT_DOUBLE_EQ(t.precision(), 1.0);
  EXPECT_DOUBLE_EQ(t.recall(), 1.0);
  // Incident opens at the fault onset estimate (1.5) vs truth 1.4.
  EXPECT_NEAR(t.mean_onset_error(), 0.1, 1e-9);
}

TEST(AttributionScoreTest, BlamingAnUninvolvedSiteIsAMiss) {
  std::vector<Incident> incidents = build_incidents(typical_case());
  incidents[0].blame.site = 5;  // not an endpoint of any truth window
  const AttributionTotals t = fault::score_attribution(
      incidents, outage_windows(1, {0, 2}, 1.4));
  EXPECT_EQ(t.misblamed, 1u);
  EXPECT_EQ(t.missed, 1u);
  EXPECT_DOUBLE_EQ(t.precision(), 0.0);
  EXPECT_DOUBLE_EQ(t.recall(), 0.0);
}

TEST(AttributionScoreTest, NoVerdictIsNotPenalized) {
  std::vector<Incident> incidents = build_incidents(typical_case());
  incidents[0].blame.site = -1;
  const AttributionTotals t = fault::score_attribution(
      incidents, outage_windows(1, {0, 2}, 1.4));
  EXPECT_EQ(t.blamed, 0u);
  EXPECT_DOUBLE_EQ(t.precision(), 1.0);  // vacuous
  EXPECT_EQ(t.missed, 1u);               // but the episode went unclaimed
}

TEST(AttributionScoreTest, TransientWindowsAreNotScoreableEpisodes) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  std::vector<TruthWindow> truth = outage_windows(1, {0, 2}, 1.4);
  for (TruthWindow& w : truth) w.end = 3.0;  // transient, not permanent
  const AttributionTotals t = fault::score_attribution(incidents, truth);
  EXPECT_EQ(t.episodes, 0u);
  EXPECT_DOUBLE_EQ(t.recall(), 1.0);  // vacuous
  // Precision still grades against the overlapping down windows.
  EXPECT_EQ(t.correctly_blamed, 1u);
}

TEST(AttributionScoreTest, UnobservableEpisodesAreExcludedFromRecall) {
  const std::vector<Incident> incidents = build_incidents(typical_case());
  fault::AttributionScoreOptions opt;
  opt.observable_links = {{0, 2}};  // site 1 hosts nothing observable
  const AttributionTotals t = fault::score_attribution(
      incidents, outage_windows(1, {0, 2}, 1.4), opt);
  EXPECT_EQ(t.episodes, 0u);
  EXPECT_DOUBLE_EQ(t.recall(), 1.0);
}

// ---------------------------------------------------------------------------
// closed loop: the real multi-tenant soak

TEST(IncidentClosedLoopTest, SoakCaseScoresItsOwnBlame) {
  Collector collector;
  tenancy::MultiTenantSoakOptions options;
  options.substrate.num_tenants = 8;
  options.collector = &collector;
  const tenancy::MultiTenantSoakCase c =
      tenancy::run_multitenant_soak_case(2017, options);

  ASSERT_FALSE(c.incidents.empty());
  for (const Incident& inc : c.incidents) expect_refolds(inc);
  ASSERT_TRUE(c.attribution_scored);
  // The seeded primary outage is the only permanent episode; with the
  // detector seeing it, blame must land on the primary site.
  EXPECT_DOUBLE_EQ(c.attribution.precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.attribution.recall(), 1.0);
  bool blamed_primary = false;
  for (const Incident& inc : c.incidents)
    if (inc.blame.site == c.primary_site) blamed_primary = true;
  EXPECT_TRUE(blamed_primary);
  // The collector accumulated the same incidents for the export.
  EXPECT_EQ(collector.incidents().count(), c.incidents.size());
  EXPECT_TRUE(collector.incidents().has_totals());

  std::ostringstream os;
  collector.write_incidents_json(os);
  const IncidentsArtifact artifact =
      incidents_from_json(parse_json(os.str()));
  EXPECT_EQ(artifact.incidents.size(), c.incidents.size());
  ASSERT_TRUE(artifact.has_totals);
  EXPECT_DOUBLE_EQ(artifact.totals.precision(), 1.0);
}

TEST(IncidentClosedLoopTest, UninstrumentedSoakSkipsTheEngine) {
  tenancy::MultiTenantSoakOptions options;
  options.substrate.num_tenants = 8;
  const tenancy::MultiTenantSoakCase c =
      tenancy::run_multitenant_soak_case(2017, options);
  EXPECT_TRUE(c.incidents.empty());
  EXPECT_FALSE(c.attribution_scored);
}

}  // namespace
}  // namespace geomap::obs
