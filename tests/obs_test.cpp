// Observability layer tests: metrics registry exactness under
// concurrency, span nesting and virtual-time export, Chrome trace JSON
// well-formedness, the mapper decision audit trail's cost decomposition,
// and the bit-identical-when-off contract across mapper / runtime / sim.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "fault/fault_plan.h"
#include "mapping/cost.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "obs/collector.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "trace/profile.h"

namespace geomap {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (no external deps): accepts
// exactly the RFC 8259 grammar this layer emits. Enough to assert the
// exporters produce well-formed documents.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    return c.value() && (c.skip_ws(), c.pos_ == text.size());
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r'))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* s) {
    const std::size_t n = std::string(s).size();
    if (text_.compare(pos_, n, s) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }
  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(Metrics, CountersSumExactlyAcrossThreads) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("test.hits");
  obs::Histogram& hist = reg.histogram("test.samples");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.record(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.summary().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HandlesAreStableAndFindOrCreate) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  // Force rebalancing of the name map; `a` must stay valid.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name);
  }
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, NameBoundToOneKind) {
  obs::MetricsRegistry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), Error);
  EXPECT_THROW(reg.histogram("metric"), Error);
}

TEST(Metrics, HistogramSummaryMatchesStats) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h");
  for (int i = 1; i <= 100; ++i) h.record(i);
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.p50, percentile(h.samples(), 50));
  EXPECT_DOUBLE_EQ(s.p99, percentile(h.samples(), 99));
}

TEST(Metrics, WriteJsonIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("b.gauge").set(1.5);
  reg.histogram("c.hist").record(2.0);
  reg.histogram("empty.hist");
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(JsonChecker::valid(os.str())) << os.str();
  EXPECT_NE(os.str().find("\"a.count\": 7"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Spans

TEST(Spans, NestedWallSpansCloseInnerFirst) {
  obs::SpanTracer tracer;
  {
    obs::Span outer = tracer.span("outer");
    { obs::Span inner = tracer.span("inner", "detail"); }
    obs::Span moved = std::move(outer);  // move keeps RAII single-closing
  }
  const std::vector<obs::SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "inner");  // finished first
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_LE(records[1].wall_start_us, records[0].wall_start_us);
  EXPECT_GE(records[1].wall_end_us, records[0].wall_end_us);
  EXPECT_EQ(records[0].category, "detail");
  EXPECT_FALSE(records[0].has_virtual);
}

TEST(Spans, DisengagedSpanIsANoOp) {
  obs::Span s;  // default-constructed: no tracer
  EXPECT_FALSE(s.active());
  s.set_virtual(0, 0.0, 1.0);
  s.end();  // must not crash
}

TEST(Spans, VirtualRecordsKeepRankAndOrdering) {
  obs::SpanTracer tracer;
  tracer.record_virtual(2, "recv", "comm", 1.0, 3.5);
  tracer.record_virtual(0, "retry", "fault", 1.5, 2.0,
                        "{\"attempt\":0}");
  const std::vector<obs::SpanRecord> records = tracer.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].rank, 2);
  EXPECT_TRUE(records[0].has_virtual);
  EXPECT_FALSE(records[0].has_wall);
  EXPECT_DOUBLE_EQ(records[0].vt_start, 1.0);
  EXPECT_DOUBLE_EQ(records[0].vt_end, 3.5);
  EXPECT_EQ(records[1].args_json, "{\"attempt\":0}");
}

TEST(Spans, ChromeTraceExportIsWellFormed) {
  obs::SpanTracer tracer;
  { obs::Span s = tracer.span("phase"); }
  tracer.record_virtual(0, "recv", "comm", 0.0, 2.0, "{\"bytes\":64}");
  tracer.record_virtual(1, "recv", "comm", 1.0, 4.0);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(JsonChecker::valid(trace)) << trace;
  // Both timelines present: wall-clock process and virtual-time process
  // with named rank threads, durations in microseconds.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("wall clock"), std::string::npos);
  EXPECT_NE(trace.find("virtual time"), std::string::npos);
  EXPECT_NE(trace.find("rank 1"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"bytes\":64"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared fixture: a nontrivial mapping problem (4 sites, profiled app,
// pinned processes) for audit and bit-identical tests.

mapping::MappingProblem test_problem(int ranks) {
  const net::CloudTopology topo(net::aws_experiment_profile(ranks / 4));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const apps::App& app = apps::app_by_name("K-means");
  Rng rng(7);
  mapping::MappingProblem problem;
  problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  problem.network = calib.model;
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  problem.constraints =
      mapping::make_random_constraints(ranks, problem.capacities, 0.2, rng);
  problem.validate();
  return problem;
}

// ---------------------------------------------------------------------------
// Mapper decision audit trail

TEST(Audit, DecompositionReproducesCostModel) {
  const mapping::MappingProblem problem = test_problem(32);
  obs::Collector collector;
  core::GeoDistOptions options;
  options.collector = &collector;
  core::GeoDistMapper mapper(options);
  (void)mapper.map(problem);

  const std::vector<obs::MapCallRecord> calls = collector.audit().calls();
  ASSERT_EQ(calls.size(), 1u);
  const obs::MapCallRecord& call = calls[0];
  EXPECT_EQ(call.mapper, "Geo-distributed");
  EXPECT_EQ(call.num_processes, 32);
  EXPECT_EQ(call.num_sites, 4);
  EXPECT_EQ(call.orders_enumerated,
            static_cast<std::int64_t>(call.orders.size()));
  EXPECT_EQ(call.num_groups, 4);  // 4 sites, kappa = 4: identity grouping
  ASSERT_EQ(call.orders.size(), 24u);  // 4! orders

  const mapping::CostEvaluator eval(problem);
  int winners = 0;
  double best_cost = std::numeric_limits<double>::max();
  for (const obs::OrderDecision& d : call.orders) {
    ASSERT_EQ(d.order.size(), 4u);
    ASSERT_FALSE(d.pairs.empty());
    // Rebuild the candidate mapping for this order; the recorded cost
    // must be bit-identical to what CostEvaluator says about it.
    const Mapping candidate = core::fill_for_order(
        problem, mapper.last_grouping(),
        std::vector<GroupId>(d.order.begin(), d.order.end()),
        core::GeoDistOptions::FillEngine::kHeap);
    EXPECT_EQ(d.cost_seconds, eval.total_cost(candidate));
    // The alpha+beta pair terms reproduce that cost. Same addends, but
    // folded pair-major instead of edge-major, so the reassociation error
    // grows with edge count — a tight relative tolerance, not bit equality.
    double pair_sum = 0;
    for (const obs::PairTerm& pt : d.pairs) {
      EXPECT_GE(pt.alpha_seconds, 0.0);
      EXPECT_GE(pt.beta_seconds, 0.0);
      pair_sum += pt.alpha_seconds + pt.beta_seconds;
    }
    EXPECT_NEAR(pair_sum, d.cost_seconds, 1e-12 * d.cost_seconds);
    winners += d.winner ? 1 : 0;
    best_cost = std::min(best_cost, d.cost_seconds);
  }
  EXPECT_EQ(winners, 1);
  for (const obs::OrderDecision& d : call.orders) {
    if (d.winner) {
      EXPECT_EQ(d.cost_seconds, best_cost);
    }
  }
}

TEST(Audit, BreakdownTotalBitIdenticalToTotalCost) {
  const mapping::MappingProblem problem = test_problem(32);
  const mapping::CostEvaluator eval(problem);
  Rng rng(11);
  for (int t = 0; t < 5; ++t) {
    const Mapping m = mapping::RandomMapper::draw(problem, rng);
    const mapping::CostBreakdown b = eval.breakdown(m);
    EXPECT_EQ(b.total, eval.total_cost(m));  // exact, not approximate
    double messages = 0;
    for (const double c : b.messages) messages += c;
    EXPECT_GT(messages, 0.0);
  }
}

TEST(Audit, WriteJsonIsWellFormed) {
  const mapping::MappingProblem problem = test_problem(16);
  obs::Collector collector;
  core::GeoDistOptions options;
  options.collector = &collector;
  core::GeoDistMapper mapper(options);
  (void)mapper.map(problem);
  std::ostringstream os;
  collector.write_audit_json(os);
  EXPECT_TRUE(JsonChecker::valid(os.str()));
  EXPECT_NE(os.str().find("\"map_calls\""), std::string::npos);
  EXPECT_NE(os.str().find("\"alpha_seconds\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bit-identical-when-off / observation-only contracts

TEST(Collector, MapperDecisionsUnchangedByCollector) {
  const mapping::MappingProblem problem = test_problem(32);
  const Mapping plain = core::GeoDistMapper().map(problem);
  obs::Collector collector;
  core::GeoDistOptions options;
  options.collector = &collector;
  const Mapping audited = core::GeoDistMapper(options).map(problem);
  EXPECT_EQ(plain, audited);
}

runtime::RunResult run_kmeans(runtime::Runtime& rt) {
  const apps::App& app = apps::app_by_name("K-means");
  const apps::AppConfig cfg = app.default_config(rt.num_ranks());
  return rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });
}

TEST(Collector, FaultedRunResultBitIdenticalWithAndWithoutCollector) {
  const net::CloudTopology topo(net::aws_experiment_profile(2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  // One rank per site: each directed WAN link then has exactly one
  // receiving rank, so link queueing is sequential and the run is exactly
  // reproducible (cross-site runs are otherwise deterministic only up to
  // link-queueing order — see runtime_test.cpp). That isolates what this
  // test is about: attaching a collector must not perturb virtual time.
  const Mapping mapping{0, 1, 2, 3};

  fault::FaultPlan plan(2017);
  plan.add_message_loss(0, 1, 0.0, fault::kNoEnd, 0.3);
  plan.add_site_outage(2, 0.01, 0.05);

  runtime::RunResult plain, observed;
  {
    runtime::Runtime rt(calib.model, mapping, topo.instance().gflops);
    rt.set_fault_plan(&plan);
    plain = run_kmeans(rt);
  }
  obs::Collector collector;
  {
    runtime::Runtime rt(calib.model, mapping, topo.instance().gflops);
    rt.set_fault_plan(&plan);
    rt.set_collector(&collector);
    observed = run_kmeans(rt);
  }
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.max_comm_seconds, observed.max_comm_seconds);
  EXPECT_EQ(plain.total_retries, observed.total_retries);
  EXPECT_EQ(plain.total_fault_seconds, observed.total_fault_seconds);
  ASSERT_EQ(plain.ranks.size(), observed.ranks.size());
  for (std::size_t r = 0; r < plain.ranks.size(); ++r) {
    EXPECT_EQ(plain.ranks[r].finish_time, observed.ranks[r].finish_time);
    EXPECT_EQ(plain.ranks[r].comm_seconds, observed.ranks[r].comm_seconds);
  }

  // The collector saw the run: messages counted exactly, retries matched,
  // and the virtual timeline carries rank envelopes plus fault spans.
  std::uint64_t messages = 0;
  for (const runtime::RankStats& rs : plain.ranks)
    messages += rs.messages_sent;
  EXPECT_EQ(collector.metrics().counter("comm.messages_sent").value(),
            messages);
  EXPECT_EQ(collector.metrics().counter("comm.retries").value(),
            plain.total_retries);
  bool saw_fault_span = false, saw_rank_envelope = false;
  for (const obs::SpanRecord& rec : collector.tracer().records()) {
    if (rec.category == "fault" && rec.has_virtual) saw_fault_span = true;
    if (rec.name == "rank" && rec.has_virtual) saw_rank_envelope = true;
  }
  EXPECT_GT(plain.total_retries, 0u);  // the plan must actually bite
  EXPECT_EQ(saw_fault_span, plain.total_retries > 0);
  EXPECT_TRUE(saw_rank_envelope);

  std::ostringstream os;
  collector.write_trace_json(os);
  EXPECT_TRUE(JsonChecker::valid(os.str()));
}

TEST(Collector, ReplayResultsBitIdenticalWithCollector) {
  const mapping::MappingProblem problem = test_problem(32);
  Rng rng(3);
  const Mapping m = mapping::RandomMapper::draw(problem, rng);
  const sim::ContentionResult plain =
      sim::replay_with_contention(problem.comm, problem.network, m);
  obs::Collector collector;
  const sim::ContentionResult observed = sim::replay_with_contention(
      problem.comm, problem.network, m, &collector);
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.busiest_link_seconds, observed.busiest_link_seconds);
  EXPECT_EQ(plain.total_transfer_seconds, observed.total_transfer_seconds);
  EXPECT_GT(collector.metrics().counter("sim.edges_replayed").value(), 0u);
}

TEST(Collector, PipelineThreadsCollectorThroughPhases) {
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const apps::App& app = apps::app_by_name("K-means");
  const int ranks = 16;
  trace::CommMatrix comm =
      app.synthetic_pattern(ranks, app.default_config(ranks));

  obs::Collector collector;
  core::PipelineOptions options;
  options.collector = &collector;
  core::Pipeline pipeline(options);
  const core::PipelineResult result = pipeline.execute(topo, comm);
  EXPECT_EQ(static_cast<int>(result.run.mapping.size()), ranks);

  bool saw_calibrate = false, saw_map = false, saw_search = false;
  for (const obs::SpanRecord& rec : collector.tracer().records()) {
    if (rec.name == "pipeline/calibrate") saw_calibrate = true;
    if (rec.name == "pipeline/map") saw_map = true;
    if (rec.name == "mapper/order-search") saw_search = true;
  }
  EXPECT_TRUE(saw_calibrate);
  EXPECT_TRUE(saw_map);
  EXPECT_TRUE(saw_search);  // pipeline handed the collector to the mapper
  EXPECT_FALSE(collector.audit().empty());

  // Identical pipeline without a collector: identical mapping.
  const core::PipelineResult plain = core::Pipeline().execute(topo, comm);
  EXPECT_EQ(plain.run.mapping, result.run.mapping);
}

}  // namespace
}  // namespace geomap
