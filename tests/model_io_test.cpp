// Tests for the network-spec text format: round-trip fidelity, optional
// sections, comments, and malformed-input rejection.

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "net/model_io.h"

namespace geomap::net {
namespace {

TEST(ModelIo, FullRoundTrip) {
  const CloudTopology topo(aws_experiment_profile(4));
  const CalibrationResult calib = Calibrator().calibrate(topo);
  const NetworkSpec original = make_spec(topo, calib.model);

  const NetworkSpec back = network_spec_from_text(to_text(original));
  ASSERT_EQ(back.model.num_sites(), 4);
  for (SiteId k = 0; k < 4; ++k) {
    for (SiteId l = 0; l < 4; ++l) {
      EXPECT_DOUBLE_EQ(back.model.latency(k, l),
                       original.model.latency(k, l));
      EXPECT_DOUBLE_EQ(back.model.bandwidth(k, l),
                       original.model.bandwidth(k, l));
    }
  }
  EXPECT_EQ(back.capacities, original.capacities);
  ASSERT_EQ(back.coords.size(), original.coords.size());
  for (std::size_t i = 0; i < back.coords.size(); ++i) {
    EXPECT_DOUBLE_EQ(back.coords[i].latitude_deg,
                     original.coords[i].latitude_deg);
    EXPECT_DOUBLE_EQ(back.coords[i].longitude_deg,
                     original.coords[i].longitude_deg);
  }
  EXPECT_EQ(back.site_names, original.site_names);
  EXPECT_NE(back.site_names[0].find("us-east-1"), std::string::npos);
}

TEST(ModelIo, OptionalSectionsMayBeOmitted) {
  Matrix lat = Matrix::square(2, 1e-3);
  Matrix bw = Matrix::square(2, 1e7);
  NetworkSpec spec;
  spec.model = NetworkModel(std::move(lat), std::move(bw));
  const NetworkSpec back = network_spec_from_text(to_text(spec));
  EXPECT_EQ(back.model.num_sites(), 2);
  EXPECT_TRUE(back.capacities.empty());
  EXPECT_TRUE(back.coords.empty());
  EXPECT_TRUE(back.site_names.empty());
}

TEST(ModelIo, CommentsAreSkipped) {
  const std::string text =
      "# produced by hand\n"
      "geomap-network 1\n"
      "sites 1\n"
      "# one lonely site\n"
      "latency-seconds\n0.001\n"
      "bandwidth-bytes-per-second\n1e8\n";
  const NetworkSpec spec = network_spec_from_text(text);
  EXPECT_EQ(spec.model.num_sites(), 1);
  EXPECT_DOUBLE_EQ(spec.model.bandwidth(0, 0), 1e8);
}

TEST(ModelIo, RejectsMalformedInput) {
  EXPECT_THROW(network_spec_from_text("not-a-spec"), InvalidArgument);
  EXPECT_THROW(network_spec_from_text("geomap-network 2\nsites 1\n"),
               InvalidArgument);
  // Missing bandwidth section.
  EXPECT_THROW(network_spec_from_text(
                   "geomap-network 1\nsites 1\nlatency-seconds\n0.001\n"),
               InvalidArgument);
  // Truncated matrix.
  EXPECT_THROW(network_spec_from_text("geomap-network 1\nsites 2\n"
                                      "latency-seconds\n0.001\n"),
               InvalidArgument);
  // Unknown section.
  EXPECT_THROW(
      network_spec_from_text("geomap-network 1\nsites 1\nlatency-seconds\n"
                             "0.001\nbandwidth-bytes-per-second\n1e8\n"
                             "bogus-section\n1\n"),
      InvalidArgument);
  // Bandwidth must be positive (NetworkModel validation).
  EXPECT_THROW(
      network_spec_from_text("geomap-network 1\nsites 1\nlatency-seconds\n"
                             "0.001\nbandwidth-bytes-per-second\n0\n"),
      Error);
}

TEST(ModelIo, NamesWithSpacesRoundTrip) {
  Matrix lat = Matrix::square(1, 1e-3);
  Matrix bw = Matrix::square(1, 1e7);
  NetworkSpec spec;
  spec.model = NetworkModel(std::move(lat), std::move(bw));
  spec.site_names = {"us-east-1 (N. Virginia) \"primary\""};
  const NetworkSpec back = network_spec_from_text(to_text(spec));
  EXPECT_EQ(back.site_names, spec.site_names);
}

}  // namespace
}  // namespace geomap::net
