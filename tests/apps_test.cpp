// Tests for the mini-apps: numeric solver kernels against dense
// references, app convergence on the runtime, and pattern structure
// (near-diagonal for the NPB trio, complex for K-means, sparse/low-volume
// for DNN — paper Figure 3).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/app.h"
#include "apps/dnn.h"
#include "apps/kmeans.h"
#include "apps/lu.h"
#include "apps/solvers.h"
#include "apps/synthetic.h"
#include "common/rng.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "runtime/comm.h"

namespace geomap::apps {
namespace {

// ---------- Solver kernels ----------

TEST(Solvers, TridiagonalMatchesDenseReference) {
  // System: x[i-1]*l + x[i]*d + x[i+1]*u = rhs, n=5, diagonally dominant.
  const std::vector<double> lower = {0, -1, -1, -1, -1};
  const std::vector<double> diag = {4, 4, 4, 4, 4};
  const std::vector<double> upper = {-1, -1, -1, -1, 0};
  const std::vector<double> rhs = {3, 2, 1, 2, 3};
  const std::vector<double> x = solve_tridiagonal(lower, diag, upper, rhs);
  ASSERT_EQ(x.size(), 5u);
  // Verify A x == rhs.
  for (int i = 0; i < 5; ++i) {
    double acc = 4 * x[static_cast<std::size_t>(i)];
    if (i > 0) acc -= x[static_cast<std::size_t>(i - 1)];
    if (i < 4) acc -= x[static_cast<std::size_t>(i + 1)];
    EXPECT_NEAR(acc, rhs[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Solvers, TridiagonalSizeOne) {
  const std::vector<double> one = {2.0};
  const std::vector<double> zero = {0.0};
  const std::vector<double> rhs = {6.0};
  EXPECT_DOUBLE_EQ(solve_tridiagonal(zero, one, zero, rhs)[0], 3.0);
}

TEST(Solvers, PentadiagonalResidualIsZero) {
  Rng rng(13);
  const std::size_t n = 12;
  std::vector<double> d2(n), d1(n), d0(n), u1(n), u2(n), rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    d2[i] = rng.uniform(-0.5, 0.5);
    d1[i] = rng.uniform(-1.0, 1.0);
    u1[i] = rng.uniform(-1.0, 1.0);
    u2[i] = rng.uniform(-0.5, 0.5);
    d0[i] = 6.0;  // dominance
    rhs[i] = rng.uniform(-5, 5);
  }
  const std::vector<double> x = solve_pentadiagonal(d2, d1, d0, u1, u2, rhs);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = d0[i] * x[i];
    if (i >= 1) acc += d1[i] * x[i - 1];
    if (i >= 2) acc += d2[i] * x[i - 2];
    if (i + 1 < n) acc += u1[i] * x[i + 1];
    if (i + 2 < n) acc += u2[i] * x[i + 2];
    EXPECT_NEAR(acc, rhs[i], 1e-10);
  }
}

TEST(Solvers, Solve3x3AgainstKnownSystem) {
  // A = [[2,0,1],[0,3,0],[1,0,2]], b = [5,6,7] -> x = [1,2,3].
  const std::array<double, 9> a = {2, 0, 1, 0, 3, 0, 1, 0, 2};
  const std::array<double, 3> b = {5, 6, 7};
  const std::array<double, 3> x = solve3x3(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Solvers, BlockTridiagonalResidualIsZero) {
  Rng rng(31);
  const std::size_t n = 6;
  std::vector<double> lower(n * 9, 0.0), diag(n * 9, 0.0), upper(n * 9, 0.0),
      rhs(n * 3);
  for (std::size_t b = 0; b < n; ++b) {
    for (int r = 0; r < 3; ++r)
      for (int c = 0; c < 3; ++c) {
        const double off = rng.uniform(-0.3, 0.3);
        diag[b * 9 + static_cast<std::size_t>(r * 3 + c)] =
            (r == c) ? 5.0 : off;
        if (b > 0)
          lower[b * 9 + static_cast<std::size_t>(r * 3 + c)] =
              (r == c) ? -1.0 : 0.1;
        if (b + 1 < n)
          upper[b * 9 + static_cast<std::size_t>(r * 3 + c)] =
              (r == c) ? -1.0 : 0.1;
      }
    for (int c = 0; c < 3; ++c)
      rhs[b * 3 + static_cast<std::size_t>(c)] = rng.uniform(-2, 2);
  }
  const std::vector<double> x = solve_block_tridiagonal(lower, diag, upper, rhs);
  // Residual check A x == rhs block-row by block-row.
  for (std::size_t b = 0; b < n; ++b) {
    for (int r = 0; r < 3; ++r) {
      double acc = 0;
      for (int c = 0; c < 3; ++c) {
        acc += diag[b * 9 + static_cast<std::size_t>(r * 3 + c)] *
               x[b * 3 + static_cast<std::size_t>(c)];
        if (b > 0)
          acc += lower[b * 9 + static_cast<std::size_t>(r * 3 + c)] *
                 x[(b - 1) * 3 + static_cast<std::size_t>(c)];
        if (b + 1 < n)
          acc += upper[b * 9 + static_cast<std::size_t>(r * 3 + c)] *
                 x[(b + 1) * 3 + static_cast<std::size_t>(c)];
      }
      EXPECT_NEAR(acc, rhs[b * 3 + static_cast<std::size_t>(r)], 1e-10);
    }
  }
}

TEST(Solvers, GaussSeidelReducesResidual) {
  const int n = 16;
  std::vector<double> u((n + 2) * (n + 2), 0.0);
  std::vector<double> f(n * n, 1.0);
  const double h2 = 1.0 / (n * n);
  const double first = gauss_seidel_sweep(u, f, n, n, h2);
  double prev = first;
  for (int iter = 0; iter < 100; ++iter) {
    const double r = gauss_seidel_sweep(u, f, n, n, h2);
    EXPECT_LE(r, prev * 1.0000001);  // monotone decrease
    prev = r;
  }
  EXPECT_LT(prev, first * 0.02);  // two orders down after 100 sweeps
}

// ---------- Registry / grid ----------

TEST(Registry, HasTheFivePaperApps) {
  ASSERT_EQ(all_apps().size(), 5u);
  EXPECT_EQ(all_apps()[0]->name(), "BT");
  EXPECT_EQ(all_apps()[2]->name(), "LU");
  EXPECT_EQ(app_by_name("K-means").name(), "K-means");
  EXPECT_THROW(app_by_name("nonexistent"), Error);
}

TEST(ProcessGrid, NearSquareFactorization) {
  EXPECT_EQ(make_process_grid(64).px, 8);
  EXPECT_EQ(make_process_grid(64).py, 8);
  EXPECT_EQ(make_process_grid(12).px, 3);
  EXPECT_EQ(make_process_grid(12).py, 4);
  EXPECT_EQ(make_process_grid(7).px, 1);
  EXPECT_EQ(make_process_grid(1).px, 1);
  const ProcessGrid g = make_process_grid(12);
  EXPECT_EQ(g.rank_of(g.x(7), g.y(7)), 7);
}

// ---------- App execution + convergence ----------

runtime::RunResult execute(const App& app, const AppConfig& cfg,
                           double* metric_out = nullptr) {
  const net::CloudTopology topo(
      net::aws_experiment_profile((cfg.num_ranks + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  Mapping mapping(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r)
    mapping[static_cast<std::size_t>(r)] =
        r / ((cfg.num_ranks + 3) / 4);
  std::mutex metric_mutex;
  runtime::Runtime rt(model, mapping, topo.instance().gflops);
  return rt.run([&](runtime::Comm& comm) {
    const double metric = app.run(comm, cfg);
    if (metric_out != nullptr && comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(metric_mutex);
      *metric_out = metric;
    }
  });
}

class AppConvergence : public ::testing::TestWithParam<const char*> {};

TEST_P(AppConvergence, MetricDecreasesWithMoreIterations) {
  const App& app = app_by_name(GetParam());
  AppConfig short_cfg = app.default_config(16);
  short_cfg.iterations = 2;
  short_cfg.payload_scale = 0.01;  // keep tests fast
  AppConfig long_cfg = short_cfg;
  long_cfg.iterations = 12;

  double short_metric = 0, long_metric = 0;
  execute(app, short_cfg, &short_metric);
  execute(app, long_cfg, &long_metric);
  EXPECT_GT(short_metric, 0.0);
  EXPECT_LT(long_metric, short_metric)
      << app.name() << " did not converge with more iterations";
}

INSTANTIATE_TEST_SUITE_P(Apps, AppConvergence,
                         ::testing::Values("BT", "SP", "LU", "K-means",
                                           "DNN"));

class AppExecution : public ::testing::TestWithParam<const char*> {};

TEST_P(AppExecution, RunsAtAwkwardRankCounts) {
  const App& app = app_by_name(GetParam());
  for (const int ranks : {2, 6, 12}) {
    AppConfig cfg = app.default_config(ranks);
    cfg.iterations = 2;
    cfg.problem_size = std::min(cfg.problem_size, 64);
    cfg.payload_scale = 0.01;
    EXPECT_NO_THROW(execute(app, cfg)) << app.name() << " @" << ranks;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, AppExecution,
                         ::testing::Values("BT", "SP", "LU", "K-means",
                                           "DNN"));

// ---------- Pattern structure (paper Figure 3) ----------

TEST(Patterns, NpbTrioIsNearDiagonal) {
  for (const char* name : {"BT", "SP", "LU"}) {
    const App& app = app_by_name(name);
    const trace::CommMatrix m =
        app.synthetic_pattern(64, app.default_config(64));
    const ProcessGrid grid = make_process_grid(64);
    // Heavy edges only between grid neighbours: |dx|+|dy| == 1.
    Bytes neighbour_volume = 0, other_volume = 0;
    for (const trace::CommEdge& e : m.edges()) {
      const int dx = std::abs(grid.x(e.src) - grid.x(e.dst));
      const int dy = std::abs(grid.y(e.src) - grid.y(e.dst));
      if (dx + dy == 1) neighbour_volume += e.volume;
      else other_volume += e.volume;
    }
    EXPECT_GT(neighbour_volume, 50 * other_volume) << name;
  }
}

TEST(Patterns, LuHasTwoMessageSizes) {
  // The paper reports exactly two LU message sizes at 64 processes,
  // 43 KB and 83 KB. Inspect two neighbour edges that no collective tree
  // touches (1->2 east-west and 1->9 north-south on the 8x8 grid).
  const App& lu = app_by_name("LU");
  AppConfig cfg = lu.default_config(64);
  const trace::CommMatrix m = lu.synthetic_pattern(64, cfg);
  // (1->2 east-west and 9->17 north-south: neither pair appears in the
  // recursive-doubling allreduce tree, whose edges are r <-> r^2^k.)
  const double east_msg = m.volume(1, 2) / m.count(1, 2);
  const double south_msg = m.volume(9, 17) / m.count(9, 17);
  EXPECT_NEAR(east_msg, 43.0 * 1024, 512);
  EXPECT_NEAR(south_msg, 83.0 * 1024, 512);
}

TEST(Patterns, KmeansIsComplexNotGridLocal) {
  const App& km = app_by_name("K-means");
  const trace::CommMatrix m =
      km.synthetic_pattern(64, km.default_config(64));
  // Many long-range pairs: far denser than the ~4 neighbours of NPB.
  EXPECT_GT(m.nnz(), 64u * 8u);
  const ProcessGrid grid = make_process_grid(64);
  Bytes neighbour_volume = 0, other_volume = 0;
  for (const trace::CommEdge& e : m.edges()) {
    const int dx = std::abs(grid.x(e.src) - grid.x(e.dst));
    const int dy = std::abs(grid.y(e.src) - grid.y(e.dst));
    (dx + dy == 1 ? neighbour_volume : other_volume) += e.volume;
  }
  EXPECT_GT(other_volume, neighbour_volume);
}

TEST(Patterns, DnnHasSmallTotalVolume) {
  const App& dnn = app_by_name("DNN");
  const App& lu = app_by_name("LU");
  const trace::CommMatrix m_dnn =
      dnn.synthetic_pattern(64, dnn.default_config(64));
  const trace::CommMatrix m_lu =
      lu.synthetic_pattern(64, lu.default_config(64));
  EXPECT_LT(m_dnn.total_volume(), m_lu.total_volume() / 10.0);
}

TEST(Patterns, SyntheticScalesToLargeN) {
  for (const char* name : {"LU", "K-means", "DNN"}) {
    const App& app = app_by_name(name);
    const trace::CommMatrix m =
        app.synthetic_pattern(1024, app.default_config(1024));
    EXPECT_EQ(m.num_processes(), 1024);
    EXPECT_GT(m.nnz(), 512u);
    // Sparse: average degree bounded.
    EXPECT_LT(m.nnz(), 1024u * 64u) << name;
  }
}

// ---------- Collective edge helpers mirror the runtime ----------

TEST(SyntheticCollectives, BcastEdgesMatchProfiledBcast) {
  for (const int p : {3, 4, 7, 8}) {
    trace::ApplicationProfile profile(p);
    Mapping mapping(static_cast<std::size_t>(p), 0);
    Matrix lat = Matrix::square(1, 1e-3);
    Matrix bw = Matrix::square(1, 1e8);
    net::NetworkModel model(lat, bw);
    runtime::Runtime rt(model, mapping, 50.0, &profile);
    rt.run([](runtime::Comm& comm) {
      std::vector<double> v(16, 0.0);
      comm.bcast(v, 0);
      comm.allreduce(v, runtime::ReduceOp::kSum);
    });
    const trace::CommMatrix profiled = profile.build_comm_matrix();

    trace::CommMatrix::Builder builder(p);
    add_bcast_edges(builder, p, 0, 16 * sizeof(double));
    add_allreduce_edges(builder, p, 16 * sizeof(double));
    const trace::CommMatrix synthetic = builder.build();

    ASSERT_EQ(profiled.nnz(), synthetic.nnz()) << "p=" << p;
    const auto pe = profiled.edges();
    const auto se = synthetic.edges();
    for (std::size_t i = 0; i < pe.size(); ++i) {
      EXPECT_EQ(pe[i].src, se[i].src);
      EXPECT_EQ(pe[i].dst, se[i].dst);
      EXPECT_DOUBLE_EQ(pe[i].volume, se[i].volume);
      EXPECT_DOUBLE_EQ(pe[i].count, se[i].count);
    }
  }
}

TEST(SyntheticCollectives, AllgatherAndAlltoallAndBarrier) {
  const int p = 6;
  trace::ApplicationProfile profile(p);
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Matrix lat = Matrix::square(1, 1e-3);
  Matrix bw = Matrix::square(1, 1e8);
  net::NetworkModel model(lat, bw);
  runtime::Runtime rt(model, mapping, 50.0, &profile);
  rt.run([p](runtime::Comm& comm) {
    (void)comm.allgather(std::vector<double>(4, 1.0));
    (void)comm.alltoall(std::vector<double>(static_cast<std::size_t>(4 * p), 1.0), 4);
    comm.barrier();
  });
  const trace::CommMatrix profiled = profile.build_comm_matrix();

  trace::CommMatrix::Builder builder(p);
  add_allgather_edges(builder, p, 4 * sizeof(double));
  add_alltoall_edges(builder, p, 4 * sizeof(double));
  add_barrier_edges(builder, p);
  const trace::CommMatrix synthetic = builder.build();

  ASSERT_EQ(profiled.nnz(), synthetic.nnz());
  EXPECT_DOUBLE_EQ(profiled.total_volume(), synthetic.total_volume());
  EXPECT_DOUBLE_EQ(profiled.total_messages(), synthetic.total_messages());
}

TEST(SyntheticCollectives, ScatterGatherScanMirrorTheRuntime) {
  for (const int p : {3, 4, 6, 8}) {
    trace::ApplicationProfile profile(p);
    Mapping mapping(static_cast<std::size_t>(p), 0);
    Matrix lat = Matrix::square(1, 1e-3);
    Matrix bw = Matrix::square(1, 1e8);
    net::NetworkModel model(lat, bw);
    runtime::Runtime rt(model, mapping, 50.0, &profile);
    rt.run([p](runtime::Comm& comm) {
      std::vector<double> send;
      if (comm.rank() == 1)
        send.assign(static_cast<std::size_t>(3 * p), 1.0);
      (void)comm.scatter(send, 3, 1);
      (void)comm.gather(std::vector<double>(3, 2.0), 0);
      std::vector<double> v(2, 1.0);
      comm.scan(v, runtime::ReduceOp::kSum);
      (void)comm.reduce_scatter(
          std::vector<double>(static_cast<std::size_t>(p), 1.0), 1,
          runtime::ReduceOp::kSum);
    });
    const trace::CommMatrix profiled = profile.build_comm_matrix();

    trace::CommMatrix::Builder builder(p);
    add_scatter_edges(builder, p, 1, 3 * sizeof(double));
    add_gather_edges(builder, p, 0, 3 * sizeof(double));
    add_scan_edges(builder, p, 2 * sizeof(double));
    add_reduce_scatter_edges(builder, p, sizeof(double));
    const trace::CommMatrix synthetic = builder.build();

    ASSERT_EQ(profiled.nnz(), synthetic.nnz()) << "p=" << p;
    EXPECT_DOUBLE_EQ(profiled.total_volume(), synthetic.total_volume())
        << "p=" << p;
    EXPECT_DOUBLE_EQ(profiled.total_messages(), synthetic.total_messages())
        << "p=" << p;
    const auto pe = profiled.edges();
    const auto se = synthetic.edges();
    for (std::size_t i = 0; i < pe.size(); ++i) {
      EXPECT_EQ(pe[i].src, se[i].src) << "p=" << p;
      EXPECT_EQ(pe[i].dst, se[i].dst) << "p=" << p;
      EXPECT_DOUBLE_EQ(pe[i].volume, se[i].volume)
          << "p=" << p << " " << pe[i].src << "->" << pe[i].dst;
    }
  }
}

TEST(Dnn, ParameterCountMatchesLayers) {
  const auto& layers = DnnApp::layers();
  int expected = 0;
  for (std::size_t i = 0; i + 1 < layers.size(); ++i)
    expected += layers[i] * layers[i + 1] + layers[i + 1];
  EXPECT_EQ(DnnApp::num_parameters(), expected);
}

}  // namespace
}  // namespace geomap::apps
