// Critical-path analysis tests: hand-built happened-before DAGs with
// known longest paths, degenerate inputs, the telescoping invariant
// (path components re-fold to the makespan) against both execution
// engines, canonicalization, the JSON round-trip, and byte-stable
// artifacts across identical seeded runs.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.h"
#include "common/json_reader.h"
#include "common/rng.h"
#include "core/geodist_mapper.h"
#include "fault/degraded_network.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "obs/collector.h"
#include "runtime/comm.h"
#include "sim/netsim.h"
#include "trace/profile.h"

namespace geomap {
namespace {

// All hand-built test values are dyadic rationals (multiples of 1/8) so
// every sum below is exact in binary floating point: the telescoping
// identity can be asserted with EXPECT_DOUBLE_EQ, no tolerance.
obs::CritEvent make_event(std::int64_t id, int rank, Seconds ready,
                          Seconds start, Seconds end) {
  obs::CritEvent e;
  e.id = id;
  e.seq = id;  // good enough for single-rank-order tests
  e.kind = "recv";
  e.rank = rank;
  e.ready = ready;
  e.start = start;
  e.end = end;
  return e;
}

Seconds wire(const obs::CritEvent& e) {
  return e.alpha_seconds + e.beta_seconds + e.fault_stall_seconds +
         e.contention_stall_seconds;
}

TEST(CritPath, EmptyEventsYieldEmptyPath) {
  const obs::CriticalPath path = obs::extract_critical_path({});
  EXPECT_DOUBLE_EQ(path.makespan, 0.0);
  EXPECT_DOUBLE_EQ(path.path_seconds, 0.0);
  EXPECT_TRUE(path.steps.empty());
  EXPECT_TRUE(path.by_pair.empty());
  EXPECT_TRUE(path.by_rank.empty());
}

TEST(CritPath, SerialChainTelescopesExactly) {
  // rank 0 receives at t=1, rank 1 receives the causally dependent
  // message at t=2. Known longest (indeed only) path: e0 -> e1.
  obs::CritEvent e0 = make_event(0, 0, 0.0, 0.5, 1.0);
  e0.peer = 1;
  e0.src_site = 0;
  e0.dst_site = 1;
  e0.alpha_seconds = 0.125;
  e0.beta_seconds = 0.25;
  e0.contention_stall_seconds = 0.125;
  obs::CritEvent e1 = make_event(1, 1, 1.0, 1.25, 2.0);
  e1.peer = 0;
  e1.src_site = 1;
  e1.dst_site = 0;
  e1.alpha_seconds = 0.25;
  e1.beta_seconds = 0.25;
  e1.fault_stall_seconds = 0.25;
  e1.contention_stall_seconds = 0.25;
  e1.pred_message = 0;

  const obs::CriticalPath path = obs::extract_critical_path({e0, e1});
  EXPECT_DOUBLE_EQ(path.makespan, 2.0);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].event.id, 0);
  EXPECT_EQ(path.steps[1].event.id, 1);
  // Step 0 spans [origin, e0.end]: 0.5 wire + 0.5 startup gap on rank 0.
  EXPECT_DOUBLE_EQ(path.steps[0].local_gap, 1.0 - wire(e0));
  EXPECT_EQ(path.steps[0].gap_rank, 0);
  // Step 1 spans [e0.end, e1.end] and is pure wire time.
  EXPECT_DOUBLE_EQ(path.steps[1].local_gap, 0.0);

  // The decomposition telescopes exactly (dyadic inputs).
  EXPECT_DOUBLE_EQ(path.path_seconds, path.makespan);
  EXPECT_DOUBLE_EQ(path.totals.total(), path.makespan);
  EXPECT_DOUBLE_EQ(path.totals.alpha, 0.375);
  EXPECT_DOUBLE_EQ(path.totals.beta, 0.5);
  EXPECT_DOUBLE_EQ(path.totals.contention_stall, 0.375);
  EXPECT_DOUBLE_EQ(path.totals.fault_stall, 0.25);
  EXPECT_DOUBLE_EQ(path.totals.local, 0.5);

  // Both site pairs and both ranks appear; equal totals tie-break by
  // ascending site / rank.
  ASSERT_EQ(path.by_pair.size(), 2u);
  EXPECT_EQ(path.by_pair[0].src_site, 0);
  EXPECT_EQ(path.by_pair[0].dst_site, 1);
  ASSERT_EQ(path.by_rank.size(), 2u);
  EXPECT_EQ(path.by_rank[0].rank, 0);
  EXPECT_DOUBLE_EQ(path.by_rank[0].components.total(), 1.0);
  EXPECT_DOUBLE_EQ(path.by_rank[1].components.total(), 1.0);
  EXPECT_DOUBLE_EQ(path.by_rank[0].components.local, 0.5);
}

TEST(CritPath, BindingPredecessorIsTheLaterFinisher) {
  // c waits on both its program predecessor a (ends 1.0) and a message
  // from b (ends 3.0): the message bound c's readiness, so the path is
  // b -> c and a stays off it.
  obs::CritEvent a = make_event(0, 0, 0.0, 0.0, 1.0);
  obs::CritEvent b = make_event(1, 1, 0.0, 0.0, 3.0);
  obs::CritEvent c = make_event(2, 0, 3.0, 3.0, 4.0);
  c.pred_program = 0;
  c.pred_message = 1;
  {
    const obs::CriticalPath path = obs::extract_critical_path({a, b, c});
    ASSERT_EQ(path.steps.size(), 2u);
    EXPECT_EQ(path.steps[0].event.id, 1);
    EXPECT_EQ(path.steps[1].event.id, 2);
    EXPECT_DOUBLE_EQ(path.path_seconds, path.makespan);
  }
  // Swap the finish times: now the program predecessor binds.
  a.end = 3.0;
  b.end = 1.0;
  c.pred_program = 0;
  c.pred_message = 1;
  {
    const obs::CriticalPath path = obs::extract_critical_path({a, b, c});
    ASSERT_EQ(path.steps.size(), 2u);
    EXPECT_EQ(path.steps[0].event.id, 0);
    EXPECT_DOUBLE_EQ(path.path_seconds, path.makespan);
  }
}

TEST(CritPath, SingleFinishEventIsAllLocal) {
  obs::CritEvent e = make_event(0, 0, 5.0, 5.0, 5.0);
  e.kind = "finish";
  const obs::CriticalPath path = obs::extract_critical_path({e});
  EXPECT_DOUBLE_EQ(path.makespan, 5.0);
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(path.totals.local, 5.0);
  EXPECT_DOUBLE_EQ(path.path_seconds, path.makespan);

  // A nonzero origin anchors the chain start: only the time after the
  // origin is attributed.
  const obs::CriticalPath offset = obs::extract_critical_path({e}, 2.0);
  EXPECT_DOUBLE_EQ(offset.makespan, 3.0);
  EXPECT_DOUBLE_EQ(offset.totals.local, 3.0);
  EXPECT_DOUBLE_EQ(offset.path_seconds, offset.makespan);
}

TEST(CritPath, OutageOnlyEventAttributesFaultStall) {
  // One transfer that spent nearly its whole life stalled by an outage.
  obs::CritEvent e = make_event(0, 0, 0.0, 4.0, 5.0);
  e.src_site = 0;
  e.dst_site = 1;
  e.fault_stall_seconds = 4.0;  // the stall [ready, start]
  e.alpha_seconds = 0.5;
  e.beta_seconds = 0.5;
  const obs::CriticalPath path = obs::extract_critical_path({e});
  EXPECT_DOUBLE_EQ(path.makespan, 5.0);
  EXPECT_DOUBLE_EQ(path.totals.fault_stall, 4.0);
  EXPECT_DOUBLE_EQ(path.totals.local, 0.0);
  EXPECT_DOUBLE_EQ(path.path_seconds, path.makespan);
}

TEST(CritPath, CanonicalEventsSortRenumberAndRemapPreds) {
  obs::CritGraph graph;
  const int run0 = graph.begin_run("first");
  const int run1 = graph.begin_run("second", 10.0);

  // Arrival order deliberately scrambled across ranks and runs.
  obs::CritEvent b = make_event(graph.next_id(), 1, 0.0, 0.0, 1.0);
  b.run = run0;
  b.seq = 0;
  obs::CritEvent other = make_event(graph.next_id(), 0, 10.0, 10.0, 11.0);
  other.run = run1;
  other.seq = 0;
  obs::CritEvent a = make_event(graph.next_id(), 0, 0.0, 0.0, 2.0);
  a.run = run0;
  a.seq = 0;
  a.pred_message = b.id;      // cross-rank, same run: must be remapped
  a.pred_program = other.id;  // different run: dangling, must become -1
  graph.add(b);
  graph.add(other);
  graph.add(a);

  const std::vector<obs::CritEvent> canon = graph.canonical_events(run0);
  ASSERT_EQ(canon.size(), 2u);
  // Sorted by (rank, seq) and renumbered densely from 0.
  EXPECT_EQ(canon[0].rank, 0);
  EXPECT_EQ(canon[0].id, 0);
  EXPECT_EQ(canon[1].rank, 1);
  EXPECT_EQ(canon[1].id, 1);
  // rank 0's message pred now points at rank 1's canonical id; the
  // cross-run program pred is dangling.
  EXPECT_EQ(canon[0].pred_message, 1);
  EXPECT_EQ(canon[0].pred_program, -1);

  const std::vector<obs::CritGraph::Run> runs = graph.runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].label, "first");
  EXPECT_DOUBLE_EQ(runs[1].origin, 10.0);
}

// ---------------------------------------------------------------------------
// The telescoping invariant against the real engines.

mapping::MappingProblem sim_problem(int ranks) {
  const net::CloudTopology topo(net::aws_experiment_profile(ranks / 4));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const apps::App& app = apps::app_by_name("K-means");
  Rng rng(7);
  mapping::MappingProblem problem;
  problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  problem.network = calib.model;
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  problem.constraints =
      mapping::make_random_constraints(ranks, problem.capacities, 0.2, rng);
  problem.validate();
  return problem;
}

void expect_refolds(const obs::CriticalPath& path, Seconds makespan) {
  EXPECT_DOUBLE_EQ(path.makespan, makespan);
  // Reassociation only: the step components are the same addends the
  // engine summed, folded in chain order.
  EXPECT_NEAR(path.path_seconds, path.makespan,
              1e-9 * std::max(1.0, path.makespan));
  EXPECT_NEAR(path.totals.total(), path.makespan,
              1e-9 * std::max(1.0, path.makespan));
}

TEST(CritPath, FaultedRuntimeRunRefoldsToMakespan) {
  const net::CloudTopology topo(net::aws_experiment_profile(2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const Mapping mapping{0, 1, 2, 3};  // one rank per site: reproducible
  fault::FaultPlan plan(2017);
  plan.add_message_loss(0, 1, 0.0, fault::kNoEnd, 0.3);
  plan.add_site_outage(2, 0.01, 0.05);

  obs::Collector collector;
  runtime::Runtime rt(calib.model, mapping, topo.instance().gflops);
  rt.set_fault_plan(&plan);
  rt.set_collector(&collector);
  const apps::App& app = apps::app_by_name("K-means");
  const apps::AppConfig cfg = app.default_config(rt.num_ranks());
  const runtime::RunResult result =
      rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });

  const std::vector<obs::CritGraph::Run> runs = collector.critpath().runs();
  ASSERT_EQ(runs.size(), 1u);
  const obs::CriticalPath path = obs::extract_critical_path(
      collector.critpath().canonical_events(runs[0].id), runs[0].origin);
  expect_refolds(path, result.makespan);
  EXPECT_GT(result.total_retries, 0u);  // the plan must actually bite
  EXPECT_GT(path.totals.fault_stall, 0.0);
  EXPECT_GT(path.totals.alpha + path.totals.beta, 0.0);
  EXPECT_FALSE(path.by_pair.empty());
}

TEST(CritPath, SimReplayRefoldsToMakespan) {
  const mapping::MappingProblem problem = sim_problem(32);
  Rng rng(3);
  const Mapping m = mapping::RandomMapper::draw(problem, rng);
  obs::Collector collector;
  const sim::ContentionResult result = sim::replay_with_contention(
      problem.comm, problem.network, m, &collector, "test/replay");

  const std::vector<obs::CritGraph::Run> runs = collector.critpath().runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].label, "test/replay");
  const obs::CriticalPath path = obs::extract_critical_path(
      collector.critpath().canonical_events(runs[0].id), runs[0].origin);
  expect_refolds(path, result.makespan);
  // A 32-rank replay over serializing WAN links must see queueing.
  EXPECT_GT(path.totals.contention_stall, 0.0);
  EXPECT_DOUBLE_EQ(path.totals.fault_stall, 0.0);  // fault-free overload
}

TEST(CritPath, FaultReplayOriginAnchorsPath) {
  const mapping::MappingProblem problem = sim_problem(32);
  Rng rng(3);
  const Mapping m = mapping::RandomMapper::draw(problem, rng);
  fault::FaultPlan plan(2017);
  plan.add_site_degradation(0, 0.0, fault::kNoEnd, 0.5);
  plan.add_site_outage(1, 5.001, 5.01);  // temporary: replay stalls across
  const fault::DegradedNetworkModel degraded(problem.network, plan);

  obs::Collector collector;
  const Seconds start_time = 5.0;
  const sim::ContentionResult result = sim::replay_with_contention(
      problem.comm, degraded, m, start_time, &collector, "test/faulted");

  const std::vector<obs::CritGraph::Run> runs = collector.critpath().runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_DOUBLE_EQ(runs[0].origin, start_time);
  const obs::CriticalPath path = obs::extract_critical_path(
      collector.critpath().canonical_events(runs[0].id), runs[0].origin);
  // The acceptance invariant: alpha+beta+stalls+local re-folds to the
  // replay's reported makespan (a duration — already origin-relative).
  expect_refolds(path, result.makespan);
  // Degradation excess over the healthy wire lands in fault stall.
  EXPECT_GT(path.totals.fault_stall, 0.0);
}

// ---------------------------------------------------------------------------
// Export round-trip and byte stability.

TEST(CritPath, JsonRoundTripPreservesAnalysis) {
  const mapping::MappingProblem problem = sim_problem(16);
  Rng rng(5);
  const Mapping m = mapping::RandomMapper::draw(problem, rng);
  obs::Collector collector;
  (void)sim::replay_with_contention(problem.comm, problem.network, m,
                                    &collector, "test/roundtrip");
  std::ostringstream os;
  collector.write_critpath_json(os);

  const JsonValue doc = parse_json(os.str());
  const JsonValue& run = doc.at("runs").items().at(0);
  const std::vector<obs::CritEvent> parsed =
      obs::critpath_events_from_json(run.at("events"));
  const obs::CriticalPath reloaded =
      obs::extract_critical_path(parsed, run.number_or("origin", 0));

  const std::vector<obs::CritGraph::Run> runs = collector.critpath().runs();
  const obs::CriticalPath direct = obs::extract_critical_path(
      collector.critpath().canonical_events(runs[0].id), runs[0].origin);
  // The exporter's own analysis block matches what the reloaded events
  // reproduce (doubles survive the JSON round-trip exactly).
  EXPECT_DOUBLE_EQ(reloaded.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(reloaded.path_seconds, direct.path_seconds);
  EXPECT_EQ(reloaded.steps.size(), direct.steps.size());
  EXPECT_DOUBLE_EQ(reloaded.totals.alpha, direct.totals.alpha);
  EXPECT_DOUBLE_EQ(reloaded.totals.beta, direct.totals.beta);
  EXPECT_DOUBLE_EQ(reloaded.totals.contention_stall,
                   direct.totals.contention_stall);
  EXPECT_DOUBLE_EQ(reloaded.totals.fault_stall, direct.totals.fault_stall);
  EXPECT_DOUBLE_EQ(reloaded.totals.local, direct.totals.local);
  const JsonValue& analysis = run.at("analysis");
  EXPECT_DOUBLE_EQ(analysis.at("makespan_seconds").as_number(),
                   direct.makespan);
  EXPECT_DOUBLE_EQ(analysis.at("path_seconds").as_number(),
                   direct.path_seconds);
}

// One full instrumented workload: mapper audit + contention replay +
// a faulted threaded runtime run, all into one collector with a pinned
// metadata header. Returns the three canonical-export artifacts.
struct Artifacts {
  std::string metrics;
  std::string audit;
  std::string critpath;
};

Artifacts run_workload_once() {
  obs::Collector collector;
  collector.set_meta(obs::make_run_meta("determinism_test", 7, true));

  const mapping::MappingProblem problem = sim_problem(32);
  core::GeoDistOptions options;
  options.collector = &collector;
  const Mapping mapped = core::GeoDistMapper(options).map(problem);
  (void)sim::replay_with_contention(problem.comm, problem.network, mapped,
                                    &collector, "test/replay");

  const net::CloudTopology topo(net::aws_experiment_profile(2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const Mapping one_per_site{0, 1, 2, 3};
  fault::FaultPlan plan(2017);
  plan.add_message_loss(0, 1, 0.0, fault::kNoEnd, 0.3);
  plan.add_site_outage(2, 0.01, 0.05);
  runtime::Runtime rt(calib.model, one_per_site, topo.instance().gflops);
  rt.set_fault_plan(&plan);
  rt.set_collector(&collector);
  const apps::App& app = apps::app_by_name("K-means");
  const apps::AppConfig cfg = app.default_config(rt.num_ranks());
  (void)rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });

  Artifacts a;
  std::ostringstream metrics, audit, critpath;
  collector.write_metrics_json(metrics);
  collector.write_audit_json(audit);
  collector.write_critpath_json(critpath);
  a.metrics = metrics.str();
  a.audit = audit.str();
  a.critpath = critpath.str();
  return a;
}

TEST(CritPath, IdenticalSeededRunsProduceByteIdenticalArtifacts) {
  // Pin the environment-dependent metadata fields the way CI and the
  // baseline workflow do, so the whole file — header included — must
  // match byte for byte. Thread scheduling may reorder event arrival;
  // canonicalization has to absorb that.
  ASSERT_EQ(setenv("GEOMAP_TIMESTAMP", "2026-01-01T00:00:00Z", 1), 0);
  ASSERT_EQ(setenv("GEOMAP_GIT_DESCRIBE", "test-pinned", 1), 0);
  const Artifacts first = run_workload_once();
  const Artifacts second = run_workload_once();
  unsetenv("GEOMAP_TIMESTAMP");
  unsetenv("GEOMAP_GIT_DESCRIBE");
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.audit, second.audit);
  EXPECT_EQ(first.critpath, second.critpath);
  EXPECT_NE(first.critpath.find("\"determinism_test\""), std::string::npos);
  EXPECT_NE(first.critpath.find("test-pinned"), std::string::npos);
  EXPECT_NE(first.metrics.find("2026-01-01T00:00:00Z"), std::string::npos);
}

}  // namespace
}  // namespace geomap
