// Tests for the extensions beyond the paper's core algorithm: multi-site
// (allowed-set) constraints with augmenting-path repair, the simulated
// annealing baseline, latency-based grouping, and multi-cloud topologies.

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "core/geodist_mapper.h"
#include "mapping/allowed_sites.h"
#include "mapping/annealing_mapper.h"
#include "mapping/cost.h"
#include "mapping/exhaustive_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/random_mapper.h"
#include "mapping/round_robin_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "test_util.h"

namespace geomap::mapping {
namespace {

using testutil::random_problem;

// ---------- allowed-site machinery ----------

TEST(AllowedSites, SiteAllowedSemantics) {
  AllowedSites allowed;
  EXPECT_TRUE(site_allowed(allowed, 0, 3));  // empty vector: unrestricted
  allowed = {{1, 3}, {}};
  EXPECT_TRUE(site_allowed(allowed, 0, 1));
  EXPECT_TRUE(site_allowed(allowed, 0, 3));
  EXPECT_FALSE(site_allowed(allowed, 0, 2));
  EXPECT_TRUE(site_allowed(allowed, 1, 2));  // empty list: unrestricted
}

TEST(AllowedSites, ValidationCatchesBadLists) {
  MappingProblem p = random_problem(8, 0.0, 1);
  p.allowed_sites.assign(8, {});
  p.allowed_sites[0] = {9};  // out of range
  EXPECT_THROW(p.validate(), Error);
  p.allowed_sites[0] = {2, 1};  // unsorted
  EXPECT_THROW(p.validate(), Error);
  p.allowed_sites[0] = {1, 1};  // duplicate
  EXPECT_THROW(p.validate(), Error);
  p.allowed_sites[0] = {1, 2};
  EXPECT_NO_THROW(p.validate());
}

TEST(AllowedSites, ValidationCatchesPinOutsideAllowedSet) {
  MappingProblem p = random_problem(8, 0.0, 2);
  p.constraints.assign(8, kUnconstrained);
  p.constraints[3] = 0;
  p.allowed_sites.assign(8, {});
  p.allowed_sites[3] = {1, 2};  // pin to 0 conflicts
  EXPECT_THROW(p.validate(), Error);
}

TEST(AllowedSites, ValidationDetectsInfeasibleSystem) {
  // 8 processes, capacities 2 per site; 5 processes restricted to the
  // same two sites (capacity 4): infeasible by Hall's condition.
  MappingProblem p = random_problem(8, 0.0, 3);
  p.allowed_sites.assign(8, {});
  for (int i = 0; i < 5; ++i) p.allowed_sites[static_cast<std::size_t>(i)] = {0, 1};
  EXPECT_THROW(p.validate(), Error);
  // With 4 restricted it is exactly tight and feasible.
  p.allowed_sites[4].clear();
  EXPECT_NO_THROW(p.validate());
}

TEST(AllowedSites, CompleteAssignmentAugmentsThroughFullSites) {
  // Site capacities {1,1}; process 0 placed on site 0 but also allowed
  // on site 1; process 1 only allowed on site 0 -> must evict 0 to 1.
  MappingProblem p = testutil::tiny_problem(2, 5);
  p.capacities = {1, 1, 0};
  p.allowed_sites = {{0, 1}, {0}};
  Mapping mapping = {0, kUnmapped};
  std::vector<int> free = {0, 1, 0};
  std::vector<char> movable = {1, 1};
  ASSERT_TRUE(complete_assignment(p, mapping, free, movable));
  EXPECT_EQ(mapping[0], 1);
  EXPECT_EQ(mapping[1], 0);
}

TEST(AllowedSites, CompleteAssignmentRespectsImmovablePins) {
  MappingProblem p = testutil::tiny_problem(2, 5);
  p.capacities = {1, 1, 0};
  p.allowed_sites = {{0, 1}, {0}};
  Mapping mapping = {0, kUnmapped};
  std::vector<int> free = {0, 1, 0};
  std::vector<char> movable = {0, 1};  // process 0 pinned in place
  EXPECT_FALSE(complete_assignment(p, mapping, free, movable));
}

// Every mapper produces feasible mappings under allowed-site sets.
struct MapperCase {
  std::string name;
  std::function<std::unique_ptr<Mapper>()> make;
};

const MapperCase kAllowedCases[] = {
    {"Baseline", [] { return std::make_unique<RandomMapper>(); }},
    {"Block", [] { return std::make_unique<BlockMapper>(); }},
    {"Cyclic", [] { return std::make_unique<CyclicMapper>(); }},
    {"Greedy", [] { return std::make_unique<GreedyMapper>(); }},
    {"MPIPP", [] { return std::make_unique<MpippMapper>(); }},
    {"Annealing", [] { return std::make_unique<AnnealingMapper>(); }},
    {"GeoDistributed",
     [] { return std::make_unique<core::GeoDistMapper>(); }},
    {"GeoDistNaive",
     [] {
       core::GeoDistOptions opts;
       opts.fill = core::GeoDistOptions::FillEngine::kNaive;
       return std::make_unique<core::GeoDistMapper>(opts);
     }},
};

class AllowedSitesMappers
    : public ::testing::TestWithParam<std::tuple<MapperCase, int>> {};

TEST_P(AllowedSitesMappers, FeasibleUnderMultiSiteConstraints) {
  const auto& [mapper_case, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  MappingProblem p = random_problem(20, 0.1, static_cast<std::uint64_t>(seed));
  // Random allowed sets of size 2-4 for half the unpinned processes.
  p.allowed_sites.assign(20, {});
  for (ProcessId i = 0; i < 20; ++i) {
    if (!p.constraints.empty() && p.constraints[static_cast<std::size_t>(i)] != kUnconstrained)
      continue;
    if (rng.uniform() < 0.5) continue;
    std::set<SiteId> sites;
    const auto count = 2 + rng.uniform_index(3);
    while (sites.size() < count)
      sites.insert(static_cast<SiteId>(rng.uniform_index(4)));
    p.allowed_sites[static_cast<std::size_t>(i)].assign(sites.begin(),
                                                        sites.end());
  }
  p.validate();

  auto mapper = mapper_case.make();
  const MapperRun run = run_mapper(*mapper, p);  // validates feasibility
  EXPECT_GT(run.cost, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Mappers, AllowedSitesMappers,
    ::testing::Combine(::testing::ValuesIn(kAllowedCases),
                       ::testing::Values(11, 22, 33)),
    [](const ::testing::TestParamInfo<AllowedSitesMappers::ParamType>& info) {
      return std::get<0>(info.param).name + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AllowedSites, TightInstanceForcesUniquePlacement) {
  // A fully-determined system: every process allowed exactly one site.
  MappingProblem p = random_problem(8, 0.0, 7);
  p.allowed_sites.assign(8, {});
  for (ProcessId i = 0; i < 8; ++i)
    p.allowed_sites[static_cast<std::size_t>(i)] = {static_cast<SiteId>(i / 2)};
  p.validate();
  for (const MapperCase& mc : kAllowedCases) {
    auto mapper = mc.make();
    const Mapping m = mapper->map(p);
    for (ProcessId i = 0; i < 8; ++i)
      EXPECT_EQ(m[static_cast<std::size_t>(i)], i / 2) << mc.name;
  }
}

TEST(AllowedSites, GeoDistExploitsChoiceWithinSets) {
  // Two heavy cliques; each clique's processes allowed on two sites.
  // GeoDist should co-locate each clique on a single allowed site.
  trace::CommMatrix::Builder b(8);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      if (i != j) b.add_message(i, j, 1 << 20, 4);
  for (int i = 4; i < 8; ++i)
    for (int j = 4; j < 8; ++j)
      if (i != j) b.add_message(i, j, 1 << 20, 4);

  const net::CloudTopology topo(net::aws_experiment_profile(4));
  MappingProblem p;
  p.comm = b.build();
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.allowed_sites.assign(8, {});
  for (int i = 0; i < 4; ++i) p.allowed_sites[static_cast<std::size_t>(i)] = {0, 1};
  for (int i = 4; i < 8; ++i) p.allowed_sites[static_cast<std::size_t>(i)] = {2, 3};
  p.validate();

  core::GeoDistMapper geo;
  const Mapping m = geo.map(p);
  EXPECT_EQ(m[0], m[1]);
  EXPECT_EQ(m[1], m[2]);
  EXPECT_EQ(m[2], m[3]);
  EXPECT_EQ(m[4], m[5]);
  EXPECT_EQ(m[5], m[6]);
  EXPECT_EQ(m[6], m[7]);
  EXPECT_TRUE(m[0] == 0 || m[0] == 1);
  EXPECT_TRUE(m[4] == 2 || m[4] == 3);
}

// ---------- hierarchical recursion ----------

TEST(Hierarchical, FeasibleAndCompetitiveOnManySites) {
  // 12-site synthetic world, grouping into 4: hierarchical and flat both
  // must produce feasible mappings of comparable quality.
  Rng rng(5);
  const net::CloudTopology topo(net::synthetic_profile(12, 4, 21));
  MappingProblem p;
  p.comm = testutil::random_comm(40, 5, rng);
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.constraints =
      make_random_constraints(40, p.capacities, 0.2, rng);
  p.validate();

  core::GeoDistOptions flat_opts, hier_opts;
  hier_opts.hierarchical = true;
  core::GeoDistMapper flat(flat_opts), hier(hier_opts);
  const Mapping m_flat = flat.map(p);
  const Mapping m_hier = hier.map(p);
  validate_mapping(p, m_flat);
  validate_mapping(p, m_hier);

  const CostEvaluator eval(p);
  const double c_flat = eval.total_cost(m_flat);
  const double c_hier = eval.total_cost(m_hier);
  // Same ballpark (within 40% of each other) — they optimize the same
  // objective through different decompositions.
  EXPECT_LT(c_hier, c_flat * 1.4);
  EXPECT_LT(c_flat, c_hier * 1.4);

  // Both clearly beat random.
  Rng brng(77);
  const double c_rand = eval.total_cost(RandomMapper::draw(p, brng));
  EXPECT_LT(c_flat, c_rand);
  EXPECT_LT(c_hier, c_rand);
}

TEST(Hierarchical, HonoursPinsAndAllowedSets) {
  Rng rng(15);
  const net::CloudTopology topo(net::synthetic_profile(9, 4, 31));
  MappingProblem p;
  p.comm = testutil::random_comm(24, 4, rng);
  p.network = net::NetworkModel::from_ground_truth(topo);
  p.capacities = topo.capacities();
  p.site_coords = topo.coordinates();
  p.constraints.assign(24, kUnconstrained);
  p.constraints[0] = 5;
  p.constraints[1] = 8;
  p.allowed_sites.assign(24, {});
  p.allowed_sites[2] = {0, 1};
  p.allowed_sites[3] = {6, 7, 8};
  p.validate();

  core::GeoDistOptions opts;
  opts.hierarchical = true;
  core::GeoDistMapper hier(opts);
  const Mapping m = hier.map(p);
  validate_mapping(p, m);
  EXPECT_EQ(m[0], 5);
  EXPECT_EQ(m[1], 8);
  EXPECT_TRUE(m[2] == 0 || m[2] == 1);
  EXPECT_TRUE(m[3] >= 6 && m[3] <= 8);
}

TEST(Hierarchical, EquivalentToFlatWhenGroupingDegenerate) {
  // kappa >= M: no grouping happens, hierarchical falls through to the
  // flat path and must agree bit-for-bit.
  const MappingProblem p = random_problem(16, 0.2, 51);
  core::GeoDistOptions flat_opts, hier_opts;
  hier_opts.hierarchical = true;
  hier_opts.kappa = 8;  // > M=4
  flat_opts.kappa = 8;
  core::GeoDistMapper flat(flat_opts), hier(hier_opts);
  EXPECT_EQ(flat.map(p), hier.map(p));
}

// ---------- simulated annealing ----------

TEST(Annealing, BeatsItsRandomStart) {
  const MappingProblem p = random_problem(24, 0.2, 41);
  const CostEvaluator eval(p);
  AnnealingOptions opts;
  opts.seed = 17;
  AnnealingMapper annealing(opts);
  Rng rng(17);
  const Mapping start = RandomMapper::draw(p, rng);
  const Mapping refined = annealing.map(p);
  EXPECT_LT(eval.total_cost(refined), eval.total_cost(start));
}

TEST(Annealing, NearOptimalOnTinyInstance) {
  const MappingProblem p = testutil::tiny_problem(8, 13);
  ExhaustiveMapper optimal;
  AnnealingMapper annealing;
  const CostEvaluator eval(p);
  const double best = eval.total_cost(optimal.map(p));
  const double got = eval.total_cost(annealing.map(p));
  EXPECT_LE(got, best * 1.15);
  EXPECT_GE(got, best * (1 - 1e-9));
}

TEST(Annealing, DeterministicInSeed) {
  const MappingProblem p = random_problem(16, 0.2, 43);
  AnnealingMapper a, b;
  EXPECT_EQ(a.map(p), b.map(p));
}

// ---------- multi-cloud topologies ----------

TEST(MultiCloud, MergePreservesIntraProviderGroundTruth) {
  const net::CloudTopology aws(net::aws_experiment_profile(4));
  const net::CloudTopology azure(net::azure2016_profile(4));
  const net::CloudTopology merged = net::CloudTopology::merge({&aws, &azure});

  ASSERT_EQ(merged.num_sites(), aws.num_sites() + azure.num_sites());
  EXPECT_EQ(merged.total_nodes(), aws.total_nodes() + azure.total_nodes());
  for (SiteId k = 0; k < aws.num_sites(); ++k) {
    for (SiteId l = 0; l < aws.num_sites(); ++l) {
      EXPECT_DOUBLE_EQ(merged.true_latency(k, l), aws.true_latency(k, l));
      EXPECT_DOUBLE_EQ(merged.true_bandwidth(k, l), aws.true_bandwidth(k, l));
    }
  }
  const int off = aws.num_sites();
  for (SiteId k = 0; k < azure.num_sites(); ++k) {
    for (SiteId l = 0; l < azure.num_sites(); ++l) {
      EXPECT_DOUBLE_EQ(merged.true_latency(k + off, l + off),
                       azure.true_latency(k, l));
    }
  }
}

TEST(MultiCloud, PeeringLinksArePessimistic) {
  const net::CloudTopology aws(net::aws_experiment_profile(4));
  const net::CloudTopology azure(net::azure2016_profile(4));
  const net::CloudTopology merged =
      net::CloudTopology::merge({&aws, &azure}, 0.7, 2.0);

  // AWS us-east-1 and Azure East US are nearly co-located: even so, the
  // peering link must be far slower than an intra-provider region link.
  const SiteId aws_east = 0;                       // us-east-1
  const SiteId azure_east = aws.num_sites() + 0;   // East US
  EXPECT_LT(merged.true_bandwidth(aws_east, azure_east),
            0.8 * merged.true_bandwidth(aws_east, aws_east));
  // Peering latency floor applies.
  EXPECT_GT(merged.true_latency(aws_east, azure_east), 2.0e-3);
  // Names carry provider provenance.
  EXPECT_NE(merged.site(aws_east).name.find("AmazonEC2/"), std::string::npos);
  EXPECT_NE(merged.site(azure_east).name.find("WindowsAzure/"),
            std::string::npos);
}

TEST(MultiCloud, EndToEndMappingAcrossProviders) {
  const net::CloudTopology aws(net::aws_experiment_profile(3));
  const net::CloudTopology azure(net::azure2016_profile(3));
  const net::CloudTopology merged = net::CloudTopology::merge({&aws, &azure});
  const net::CalibrationResult calib = net::Calibrator().calibrate(merged);

  Rng rng(3);
  MappingProblem p;
  p.comm = testutil::random_comm(24, 4, rng);
  p.network = calib.model;
  p.capacities = merged.capacities();
  p.site_coords = merged.coordinates();
  p.validate();

  core::GeoDistMapper geo;
  RandomMapper baseline(9);
  const CostEvaluator eval(p);
  const Mapping geo_map = geo.map(p);
  validate_mapping(p, geo_map);
  EXPECT_LT(eval.total_cost(geo_map), eval.total_cost(baseline.map(p)));
}

TEST(MultiCloud, MergeRejectsBadArguments) {
  EXPECT_THROW(net::CloudTopology::merge({}), Error);
  const net::CloudTopology aws(net::aws_experiment_profile(2));
  EXPECT_THROW(net::CloudTopology::merge({&aws}, 0.0), Error);
}

}  // namespace
}  // namespace geomap::mapping
