// The phase profiler + memory accounting contracts: the telescoping
// invariant (exclusive times re-fold to the root's measured wall), merged
// nesting, deterministic byte-identical exports, collapsed-stack output,
// the MemTracker ledger/note semantics, batch-record equivalence, the
// mapper progress heartbeat, and the forensic-recorder opt-outs staying
// observation-only.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "common/json_reader.h"
#include "common/rng.h"
#include "core/geodist_mapper.h"
#include "mapping/greedy_mapper.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/problem.h"
#include "mapping/random_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "obs/collector.h"
#include "sim/netsim.h"

using namespace geomap;

namespace {

mapping::MappingProblem profile_test_problem(int ranks) {
  const net::CloudTopology topo(net::aws_experiment_profile(ranks / 4));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const apps::App& app = apps::app_by_name("K-means");
  Rng rng(7);
  mapping::MappingProblem problem;
  problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  problem.network = calib.model;
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  problem.constraints =
      mapping::make_random_constraints(ranks, problem.capacities, 0.2, rng);
  problem.validate();
  return problem;
}

// Sum of exclusive times over the whole tree; with the root's inclusive
// defined as the top-level sum, this telescopes to the root wall exactly.
double sum_exclusive(const obs::PhaseSnapshot& node) {
  double total = node.exclusive_seconds();
  for (const obs::PhaseSnapshot& c : node.children) total += sum_exclusive(c);
  return total;
}

void check_nesting(const obs::PhaseSnapshot& node) {
  double children_wall = 0;
  for (const obs::PhaseSnapshot& c : node.children) {
    children_wall += c.wall_seconds;
    check_nesting(c);
  }
  // Child phases open and close inside their parent, so the children's
  // inclusive sum can never exceed the parent's (non-negative exclusive).
  EXPECT_GE(node.exclusive_seconds(), -1e-9)
      << "negative exclusive time at phase " << node.name;
  EXPECT_LE(children_wall, node.wall_seconds + 1e-9) << node.name;
}

const obs::PhaseSnapshot* find_child(const obs::PhaseSnapshot& node,
                                     const std::string& name) {
  for (const obs::PhaseSnapshot& c : node.children)
    if (c.name == name) return &c;
  return nullptr;
}

TEST(PhaseProfiler, ExclusiveTimesTelescopeToRootWall) {
  obs::PhaseProfiler profiler;
  {
    obs::Phase outer = profiler.phase("outer");
    {
      obs::Phase inner = profiler.phase("inner");
      obs::Phase leaf = profiler.phase("leaf");
    }
    obs::Phase sibling = profiler.phase("sibling");
  }
  { obs::Phase outer = profiler.phase("outer"); }  // merges, calls = 2

  const obs::PhaseSnapshot root = profiler.snapshot();
  EXPECT_EQ(root.name, "run");
  check_nesting(root);
  EXPECT_NEAR(sum_exclusive(root), root.wall_seconds,
              1e-9 + 1e-9 * root.wall_seconds);

  ASSERT_EQ(root.children.size(), 1u);
  const obs::PhaseSnapshot& outer = root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.calls, 2u);  // repeated entry merged into one node
  ASSERT_NE(find_child(outer, "inner"), nullptr);
  ASSERT_NE(find_child(outer, "sibling"), nullptr);
  const obs::PhaseSnapshot& inner = *find_child(outer, "inner");
  ASSERT_NE(find_child(inner, "leaf"), nullptr);  // nests under inner
  EXPECT_EQ(find_child(root, "inner"), nullptr);  // not at top level
}

TEST(PhaseProfiler, CountersAttachToTheOwningPhaseFromAnyThread) {
  obs::PhaseProfiler profiler;
  {
    obs::Phase parallel = profiler.phase("parallel-region");
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&parallel] {
        for (int i = 0; i < 100; ++i) parallel.count("work_items");
      });
    }
    for (std::thread& w : workers) w.join();
  }
  const obs::PhaseSnapshot root = profiler.snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].counters.at("work_items"), 400u);
  // Worker threads never opened phases: the tree shape is exactly one
  // node regardless of scheduling.
  EXPECT_TRUE(root.children[0].children.empty());
}

TEST(PhaseProfiler, MovedHandleClosesOnce) {
  obs::PhaseProfiler profiler;
  {
    obs::Phase p;
    EXPECT_FALSE(p.active());
    p = profiler.phase("moved");
    EXPECT_TRUE(p.active());
    obs::Phase q = std::move(p);
    EXPECT_FALSE(p.active());
    q.end();
    q.end();  // second end is a no-op
  }
  const obs::PhaseSnapshot root = profiler.snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].calls, 1u);
}

TEST(PhaseProfiler, DeterministicProfileJsonIsByteIdentical) {
  const mapping::MappingProblem problem = profile_test_problem(32);
  const auto run_once = [&problem]() {
    obs::Collector collector;
    collector.profile().set_deterministic(true);
    collector.mem().set_deterministic(true);
    core::GeoDistOptions options;
    options.collector = &collector;
    (void)core::GeoDistMapper(options).map(problem);
    std::ostringstream profile, collapsed;
    collector.write_profile_json(profile);
    collector.write_profile_collapsed(collapsed);
    return std::make_pair(profile.str(), collapsed.str());
  };
  const auto [profile_a, collapsed_a] = run_once();
  const auto [profile_b, collapsed_b] = run_once();
  EXPECT_EQ(profile_a, profile_b);
  EXPECT_EQ(collapsed_a, collapsed_b);

  // Deterministic exports zero every clock but keep the structure: the
  // collapsed view falls back to call-count weights so it still renders.
  EXPECT_NE(profile_a.find("\"mapper:Geo-distributed\""), std::string::npos);
  EXPECT_NE(profile_a.find("\"wall_seconds\": 0.0,"), std::string::npos);
  EXPECT_NE(collapsed_a.find("run;mapper:Geo-distributed"),
            std::string::npos);

  // And the document parses as JSON with the expected top-level members.
  const JsonValue doc = parse_json(profile_a);
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("tree"), nullptr);
  EXPECT_NE(doc.find("memory"), nullptr);
  const JsonValue* det = doc.find("deterministic");
  ASSERT_NE(det, nullptr);
  EXPECT_TRUE(det->as_bool());
}

TEST(PhaseProfiler, MapperPhaseCarriesWorkCountersAndMemoryAccounts) {
  const mapping::MappingProblem problem = profile_test_problem(32);
  obs::Collector collector;
  core::GeoDistOptions options;
  options.collector = &collector;
  (void)core::GeoDistMapper(options).map(problem);

  const obs::PhaseSnapshot root = collector.profile().snapshot();
  const obs::PhaseSnapshot* mapper =
      find_child(root, "mapper:Geo-distributed");
  ASSERT_NE(mapper, nullptr);
  const obs::PhaseSnapshot* search = find_child(*mapper, "order-search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->counters.at("orders_enumerated"), 24u);  // 4! orders
  EXPECT_EQ(search->counters.at("cost_evals"), 24u);
  ASSERT_NE(find_child(*mapper, "fill-winner"), nullptr);
  check_nesting(root);
  EXPECT_NEAR(sum_exclusive(root), root.wall_seconds,
              1e-9 + 1e-9 * root.wall_seconds);

  // The big structures were noted next to the phases that touched them.
  EXPECT_EQ(collector.mem().peak_bytes("comm.csr"),
            problem.comm.memory_bytes());
  EXPECT_GT(collector.mem().peak_bytes("network.dense"), 0u);
}

TEST(PhaseProfiler, ProgressHeartbeatReachesOneDeterministically) {
  const mapping::MappingProblem problem = profile_test_problem(32);
  obs::Collector collector;
  core::GeoDistOptions options;
  options.collector = &collector;
  options.parallel_orders = true;
  (void)core::GeoDistMapper(options).map(problem);
  // set_max keeps the exported gauge monotone under parallel evaluation:
  // the final value is exactly 1.0 no matter the completion order.
  EXPECT_EQ(collector.metrics().gauge("mapper.progress").value(), 1.0);
  const obs::TimeSeries* series = collector.timeline().find(
      "mapper.progress{orders}");
  ASSERT_NE(series, nullptr);
  const std::vector<obs::TimePoint> points = series->points();
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.back().value, 1.0);
}

// ---------------------------------------------------------------------------
// MemTracker

TEST(MemTracker, ChargeReleaseLedgerTracksPeak) {
  obs::MemTracker mem;
  mem.charge("journal", 100);
  mem.charge("journal", 50);
  EXPECT_EQ(mem.current_bytes("journal"), 150u);
  EXPECT_EQ(mem.peak_bytes("journal"), 150u);
  mem.release("journal", 120);
  EXPECT_EQ(mem.current_bytes("journal"), 30u);
  EXPECT_EQ(mem.peak_bytes("journal"), 150u);  // peak is the high-water
  mem.release("journal", 1000);                // over-release clamps to 0
  EXPECT_EQ(mem.current_bytes("journal"), 0u);
}

TEST(MemTracker, NoteIsIdempotentObservedSize) {
  obs::MemTracker mem;
  mem.note("comm.csr", 4096);
  mem.note("comm.csr", 4096);  // same structure observed again
  EXPECT_EQ(mem.current_bytes("comm.csr"), 4096u);
  EXPECT_EQ(mem.peak_bytes("comm.csr"), 4096u);
  mem.note("comm.csr", 1024);  // smaller observation: current follows,
  EXPECT_EQ(mem.current_bytes("comm.csr"), 1024u);
  EXPECT_EQ(mem.peak_bytes("comm.csr"), 4096u);  // peak does not
}

TEST(MemTracker, ProcessRssReadableOnLinux) {
  // VmRSS/VmHWM come from /proc/self/status; a test binary with gtest
  // loaded is comfortably past a megabyte.
  EXPECT_GT(obs::MemTracker::process_rss_bytes(), 1u << 20);
  EXPECT_GE(obs::MemTracker::process_peak_rss_bytes(),
            obs::MemTracker::process_rss_bytes());
}

// ---------------------------------------------------------------------------
// Batch recording (the hot-loop flush path) is state-identical

TEST(Metrics, HistogramRecordManyMatchesSequentialRecords) {
  obs::Histogram one_by_one(8);  // small cap exercises the reservoir
  obs::Histogram batched(8);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(0.25 * i);
  for (const double x : xs) one_by_one.record(x);
  batched.record_many(xs);
  EXPECT_EQ(one_by_one.samples(), batched.samples());
  const auto a = one_by_one.summary();
  const auto b = batched.summary();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
}

TEST(Timeline, RecordManyMatchesSequentialRecords) {
  obs::TimeSeries one_by_one(16);  // small capacity forces eviction
  obs::TimeSeries batched(16);
  std::vector<obs::TimePoint> pts;
  Rng rng(3);
  for (int i = 0; i < 200; ++i)
    pts.push_back({static_cast<double>(rng.uniform_index(1000)), 1.0 * i});
  for (const obs::TimePoint& p : pts) one_by_one.record(p.t, p.value);
  batched.record_many(pts);
  EXPECT_EQ(one_by_one.points(), batched.points());
  EXPECT_EQ(one_by_one.total_recorded(), batched.total_recorded());
}

// ---------------------------------------------------------------------------
// Forensic-recorder opt-outs observe without perturbing

TEST(Collector, AuditOptOutKeepsMappingBitIdentical) {
  const mapping::MappingProblem problem = profile_test_problem(32);
  const Mapping plain = core::GeoDistMapper().map(problem);

  obs::Collector lean;
  lean.set_audit_enabled(false);
  core::GeoDistOptions options;
  options.collector = &lean;
  const Mapping observed = core::GeoDistMapper(options).map(problem);
  EXPECT_EQ(plain, observed);
  EXPECT_TRUE(lean.audit().empty());
  // The always-on set still recorded the search.
  EXPECT_EQ(lean.metrics().counter("mapper.orders_evaluated").value(), 24u);
  EXPECT_FALSE(lean.profile().empty());
}

TEST(Collector, CritpathOptOutKeepsReplayBitIdentical) {
  const mapping::MappingProblem problem = profile_test_problem(32);
  Rng rng(5);
  const Mapping m = mapping::RandomMapper::draw(problem, rng);
  const sim::ContentionResult plain =
      sim::replay_with_contention(problem.comm, problem.network, m);

  obs::Collector lean;
  lean.set_critpath_enabled(false);
  const sim::ContentionResult observed = sim::replay_with_contention(
      problem.comm, problem.network, m, &lean, "lean");
  EXPECT_EQ(plain.makespan, observed.makespan);
  EXPECT_EQ(plain.total_transfer_seconds, observed.total_transfer_seconds);
  EXPECT_EQ(plain.busiest_link_seconds, observed.busiest_link_seconds);
  EXPECT_TRUE(lean.critpath().runs().empty());
  // Timeline and metrics still observed the replay.
  EXPECT_GT(lean.metrics().counter("sim.edges_replayed").value(), 0u);
  EXPECT_FALSE(lean.timeline().empty());
}

}  // namespace
