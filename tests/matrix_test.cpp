// Broad integration matrix: every mapper x every workload pattern x
// several deployments. These sweeps assert the invariants a downstream
// user relies on regardless of configuration: feasibility, determinism,
// and that the optimizing mappers never lose to random by more than
// noise. Parameterized gtest keeps each combination an individually
// reported test.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "apps/app.h"
#include "common/stats.h"
#include "core/geodist_mapper.h"
#include "mapping/annealing_mapper.h"
#include "mapping/cost.h"
#include "mapping/greedy_mapper.h"
#include "mapping/mpipp_mapper.h"
#include "mapping/random_mapper.h"
#include "mapping/round_robin_mapper.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "test_util.h"

namespace geomap {
namespace {

struct MapperCase {
  std::string name;
  std::function<std::unique_ptr<mapping::Mapper>()> make;
  bool optimizing;  // expected to beat random on average
};

const MapperCase kMappers[] = {
    {"Baseline", [] { return std::make_unique<mapping::RandomMapper>(); },
     false},
    {"Block", [] { return std::make_unique<mapping::BlockMapper>(); }, false},
    {"Cyclic", [] { return std::make_unique<mapping::CyclicMapper>(); },
     false},
    {"Greedy", [] { return std::make_unique<mapping::GreedyMapper>(); }, true},
    {"MPIPP", [] { return std::make_unique<mapping::MpippMapper>(); }, true},
    {"Annealing", [] { return std::make_unique<mapping::AnnealingMapper>(); },
     true},
    {"GeoDistributed",
     [] { return std::make_unique<core::GeoDistMapper>(); }, true},
    {"GeoHierarchical",
     [] {
       core::GeoDistOptions opts;
       opts.hierarchical = true;
       return std::make_unique<core::GeoDistMapper>(opts);
     },
     true},
};

struct DeploymentCase {
  std::string name;
  std::function<net::CloudTopology()> make;
};

const DeploymentCase kDeployments[] = {
    {"Aws4", [] { return net::CloudTopology(net::aws_experiment_profile(8)); }},
    {"Azure8",
     [] { return net::CloudTopology(net::azure2016_profile(4)); }},
    {"Synthetic6",
     [] { return net::CloudTopology(net::synthetic_profile(6, 6, 11)); }},
    {"MultiCloud",
     [] {
       const net::CloudTopology aws(net::aws_experiment_profile(3));
       const net::CloudTopology azure(net::azure2016_profile(3));
       return net::CloudTopology::merge({&aws, &azure});
     }},
};

class MapperAppMatrix
    : public ::testing::TestWithParam<std::tuple<MapperCase, const char*>> {};

// Every mapper handles every workload's pattern on the 4-region cloud
// with pins, producing feasible mappings; optimizers beat random.
TEST_P(MapperAppMatrix, FeasibleOnEveryWorkloadPattern) {
  const auto& [mapper_case, app_name] = GetParam();
  const apps::App& app = apps::app_by_name(app_name);
  const int ranks = 24;

  const net::CloudTopology topo(net::aws_experiment_profile(ranks / 4 + 1));
  mapping::MappingProblem problem;
  problem.comm = app.synthetic_pattern(ranks, app.default_config(ranks));
  problem.network = net::NetworkModel::from_ground_truth(topo);
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  Rng rng(7);
  problem.constraints =
      mapping::make_random_constraints(ranks, problem.capacities, 0.2, rng);
  problem.validate();

  auto mapper = mapper_case.make();
  const mapping::MapperRun run = mapping::run_mapper(*mapper, problem);
  EXPECT_GT(run.cost, 0.0);

  if (mapper_case.optimizing) {
    Rng brng(13);
    RunningStats base;
    const mapping::CostEvaluator eval(problem);
    for (int t = 0; t < 10; ++t)
      base.add(eval.total_cost(mapping::RandomMapper::draw(problem, brng)));
    EXPECT_LT(run.cost, base.mean() * 1.02)
        << mapper_case.name << " on " << app_name
        << " lost to the random average";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperAppMatrix,
    ::testing::Combine(::testing::ValuesIn(kMappers),
                       ::testing::Values("BT", "SP", "LU", "K-means", "DNN",
                                         "CG", "MG", "FT")),
    [](const ::testing::TestParamInfo<MapperAppMatrix::ParamType>& info) {
      std::string app = std::get<1>(info.param);
      for (auto& ch : app)
        if (ch == '-') ch = '_';
      return std::get<0>(info.param).name + "_" + app;
    });

class MapperDeploymentMatrix
    : public ::testing::TestWithParam<std::tuple<MapperCase, int>> {};

// Every mapper handles every deployment shape (including multi-cloud and
// many-site synthetic worlds) and is deterministic across repeat calls.
TEST_P(MapperDeploymentMatrix, FeasibleAndDeterministicEverywhere) {
  const auto& [mapper_case, deployment_idx] = GetParam();
  const DeploymentCase& deployment =
      kDeployments[static_cast<std::size_t>(deployment_idx)];
  const net::CloudTopology topo = deployment.make();
  const int ranks = topo.total_nodes() * 3 / 4;

  Rng rng(5);
  mapping::MappingProblem problem;
  problem.comm = testutil::random_comm(ranks, 4, rng);
  problem.network =
      net::Calibrator().calibrate(topo).model;  // calibrated view
  problem.capacities = topo.capacities();
  problem.site_coords = topo.coordinates();
  problem.validate();

  auto mapper = mapper_case.make();
  const mapping::MapperRun first = mapping::run_mapper(*mapper, problem);
  auto mapper_again = mapper_case.make();
  const mapping::MapperRun second =
      mapping::run_mapper(*mapper_again, problem);
  EXPECT_EQ(first.mapping, second.mapping)
      << mapper_case.name << " on " << deployment.name
      << " is not deterministic";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperDeploymentMatrix,
    ::testing::Combine(::testing::ValuesIn(kMappers),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<MapperDeploymentMatrix::ParamType>&
           info) {
      return std::get<0>(info.param).name + "_" +
             kDeployments[static_cast<std::size_t>(std::get<1>(info.param))]
                 .name;
    });

}  // namespace
}  // namespace geomap
