// Online-telemetry tests: the windowed time-series ring (deterministic
// eviction, windowed aggregates, byte-identical export), the degradation
// detector on synthetic traces (clean step, slow ramp, noisy healthy
// link, overlapping outages) and on real faulted runtime executions
// (precision/recall bounds against the FaultPlan's truth windows), the
// detection-driven remap's recovery relative to the oracle, and the
// histogram reservoir's memory bound.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/geodist_mapper.h"
#include "core/pipeline.h"
#include "core/remap.h"
#include "fault/fault_plan.h"
#include "mapping/problem.h"
#include "net/calibration.h"
#include "net/cloud.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "runtime/comm.h"
#include "trace/profile.h"

namespace geomap {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Time series

TEST(TimeSeries, PointsSortedAndWindowed) {
  obs::TimeSeries s(16);
  s.record(3.0, 30.0);
  s.record(1.0, 10.0);
  s.record(2.0, 20.0);
  const std::vector<obs::TimePoint> pts = s.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].t, 1.0);
  EXPECT_EQ(pts[2].t, 3.0);
  EXPECT_EQ(s.total_recorded(), 3u);

  const obs::WindowStats w = s.window(3.0, 1.5);
  EXPECT_EQ(w.count, 2u);  // (1.5, 3.0] holds t=2 and t=3
  EXPECT_EQ(w.min, 20.0);
  EXPECT_EQ(w.max, 30.0);
  EXPECT_EQ(w.sum, 50.0);
  EXPECT_NEAR(w.rate, 2.0 / 1.5, 1e-12);
}

TEST(TimeSeries, EvictionKeepsNewestTimestamps) {
  obs::TimeSeries s(4);
  // Interleave old and new arrivals; the retained set must be the 4
  // largest timestamps regardless of arrival order.
  for (const double t : {9.0, 1.0, 7.0, 3.0, 8.0, 2.0, 10.0, 6.0})
    s.record(t, t);
  const std::vector<obs::TimePoint> pts = s.points();
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].t, 7.0);
  EXPECT_EQ(pts[3].t, 10.0);
  EXPECT_EQ(s.total_recorded(), 8u);
}

TEST(TimeSeries, RegistryKeysAndLinkLabels) {
  obs::TimeSeriesRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.series("link.latency_ratio", obs::link_label(2, 0)).record(1.0, 1.0);
  reg.series("bare").record(2.0, 5.0);
  const std::vector<std::string> keys = reg.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "bare");
  EXPECT_EQ(keys[1], "link.latency_ratio{2->0}");
  EXPECT_NE(reg.find("bare"), nullptr);
  EXPECT_EQ(reg.find("absent"), nullptr);

  int src = -1, dst = -1;
  EXPECT_TRUE(obs::parse_link_label("12->3", &src, &dst));
  EXPECT_EQ(src, 12);
  EXPECT_EQ(dst, 3);
  EXPECT_FALSE(obs::parse_link_label("not a link", &src, &dst));
}

TEST(TimeSeries, ExportIsByteIdenticalAcrossArrivalOrder) {
  // Same multiset of points, opposite recording orders: identical JSON.
  obs::TimeSeriesRegistry a, b;
  std::vector<std::pair<double, double>> pts;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) pts.emplace_back(rng.uniform(0, 50), i * 0.5);
  for (const auto& [t, v] : pts) a.series("m", "0->1").record(t, v);
  for (auto it = pts.rbegin(); it != pts.rend(); ++it)
    b.series("m", "0->1").record(it->first, it->second);
  std::ostringstream ja, jb;
  a.write_json(ja);
  b.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

// ---------------------------------------------------------------------------
// Detector on synthetic traces

/// Healthy ratio 1.0 until t_step, then a clean step to `ratio`.
TEST(Detector, CleanStepIsDetectedWithBackdatedOnset) {
  obs::DegradationDetector det;
  for (int i = 0; i < 50; ++i)
    det.observe_latency_ratio(0, 1, i * 0.1, 1.0);
  for (int i = 50; i < 80; ++i)
    det.observe_latency_ratio(0, 1, i * 0.1, 4.0);
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 1u);
  const obs::DegradationEvent& e = events[0];
  EXPECT_EQ(e.kind, obs::DegradationKind::kLatency);
  EXPECT_EQ(e.src, 0);
  EXPECT_EQ(e.dst, 1);
  // Onset back-dated to the first excess point; alarm within a few
  // points (excess per point is 4 − 1 − 0.25 = 2.75 against h = 2).
  EXPECT_NEAR(e.onset_vtime, 5.0, 1e-9);
  EXPECT_LE(e.detect_vtime, 5.3);
  EXPECT_NEAR(e.severity, 4.0, 0.5);
  EXPECT_EQ(e.end_vtime, kInf);  // never recovered
}

TEST(Detector, StepRecoveryClosesTheEpisode) {
  obs::DegradationDetector det;
  for (int i = 0; i < 20; ++i) det.observe_latency_ratio(0, 1, i * 0.1, 1.0);
  for (int i = 20; i < 40; ++i) det.observe_latency_ratio(0, 1, i * 0.1, 3.0);
  for (int i = 40; i < 80; ++i) det.observe_latency_ratio(0, 1, i * 0.1, 1.0);
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(std::isfinite(events[0].end_vtime));
  // The CUSUM is capped at 2h = 4, so from recovery at t = 4.0 it decays
  // to the clear level in at most 2h / slack = 16 healthy points (1.6 s).
  EXPECT_GE(events[0].end_vtime, 4.0);
  EXPECT_LE(events[0].end_vtime, 5.7);
}

TEST(Detector, SlowRampIsEventuallyDetected) {
  obs::DegradationDetector det;
  // Ramp from 1.0 to 3.0 over 200 points: no single point screams, the
  // CUSUM accumulates.
  for (int i = 0; i < 100; ++i) det.observe_latency_ratio(1, 2, i * 0.1, 1.0);
  for (int i = 0; i < 200; ++i) {
    const double ratio = 1.0 + 2.0 * (i / 199.0);
    det.observe_latency_ratio(1, 2, 10.0 + i * 0.1, ratio);
  }
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::DegradationKind::kLatency);
  EXPECT_GE(events[0].onset_vtime, 10.0);  // within the ramp, not before
  EXPECT_LT(events[0].detect_vtime, 30.0);
  EXPECT_GT(events[0].severity, 1.2);
}

TEST(Detector, NoisyHealthyLinkRaisesNoAlarm) {
  obs::DegradationDetector det;
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    // Zero-mean noise inside the CUSUM slack band.
    det.observe_latency_ratio(2, 3, i * 0.05, 1.0 + rng.uniform(-0.2, 0.2));
  }
  EXPECT_TRUE(det.events().empty());
}

TEST(Detector, RetryBurstOpensDownEpisodeThatClosesWhenQuiet) {
  obs::DegradationDetector det;
  det.observe_retry(0, 2, 10.0);
  det.observe_retry(0, 2, 10.2);
  EXPECT_TRUE(det.events().empty());  // 2 retries in window: below threshold
  det.observe_retry(0, 2, 10.4);
  std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::DegradationKind::kDown);
  EXPECT_NEAR(events[0].onset_vtime, 10.0, 1e-9);  // back-dated to burst start
  EXPECT_EQ(events[0].end_vtime, kInf);

  // A later healthy observation past down_quiet closes the episode at
  // last signal + down_quiet.
  det.observe_latency_ratio(0, 2, 15.0, 1.0);
  events = det.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].end_vtime, 10.4 + 2.0, 1e-9);
}

TEST(Detector, TimeoutOpensDownWithFullConfidence) {
  obs::DegradationDetector det;
  det.observe_timeout(3, 1, 7.5);
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, obs::DegradationKind::kDown);
  EXPECT_EQ(events[0].confidence, 1.0);
}

TEST(Detector, OverlappingOutagesOnTwoLinksAreScoredPerfectly) {
  // Two links go down in overlapping windows; each emits its own burst.
  obs::DegradationDetector det;
  for (int i = 0; i < 8; ++i) det.observe_retry(0, 1, 20.0 + i * 0.2);
  for (int i = 0; i < 8; ++i) det.observe_retry(2, 3, 20.8 + i * 0.2);
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 2u);

  const std::vector<obs::TruthWindow> truth = {
      {0, 1, 20.0, 23.0, true},
      {2, 3, 20.8, 24.0, true},
  };
  const obs::DetectionScore score = obs::score_detections(events, truth);
  EXPECT_EQ(score.precision, 1.0);
  EXPECT_EQ(score.recall, 1.0);
  EXPECT_EQ(score.detected_windows, 2);
  EXPECT_EQ(score.false_positive_events, 0);
}

TEST(Detector, ScanReplaysARegistryInTimeOrder) {
  obs::TimeSeriesRegistry reg;
  obs::TimeSeries& ratio = reg.series("link.latency_ratio", "1->0");
  for (int i = 0; i < 30; ++i) ratio.record(i * 0.1, 1.0);
  for (int i = 30; i < 60; ++i) ratio.record(i * 0.1, 5.0);
  obs::TimeSeries& retry = reg.series("link.retry", "1->0");
  for (int i = 0; i < 5; ++i) retry.record(8.0 + i * 0.1, 1.0);
  reg.series("unrelated.metric").record(1.0, 99.0);  // must be ignored

  obs::DegradationDetector det;
  det.scan(reg);
  const std::vector<obs::DegradationEvent> events = det.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, obs::DegradationKind::kLatency);
  EXPECT_EQ(events[1].kind, obs::DegradationKind::kDown);
}

TEST(Detector, ScorerSeparatesFalsePositivesAndMisses) {
  const std::vector<obs::DegradationEvent> events = {
      // True positive on (0,1).
      {0, 1, obs::DegradationKind::kLatency, 10.0, 10.5, 20.0, 3.0, 0.9},
      // False positive: no truth on (2,0).
      {2, 0, obs::DegradationKind::kLatency, 40.0, 40.5, 41.0, 2.0, 0.5},
      // Latency event overlapping a *down* window: does not detect it.
      {1, 2, obs::DegradationKind::kLatency, 30.0, 30.5, kInf, 2.0, 0.5},
  };
  const std::vector<obs::TruthWindow> truth = {
      {0, 1, 10.0, 20.0, false},
      {1, 2, 30.0, kInf, true},  // needs a kDown event; only latency seen
      {3, 1, 50.0, 60.0, false},  // nothing detected here
  };
  const obs::DetectionScore score = obs::score_detections(events, truth);
  EXPECT_EQ(score.true_positive_events, 2);  // latency-overlap still matches
  EXPECT_EQ(score.false_positive_events, 1);
  EXPECT_EQ(score.detected_windows, 1);
  EXPECT_EQ(score.missed_windows, 2);
  EXPECT_NEAR(score.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score.recall, 1.0 / 3.0, 1e-12);
}

TEST(Detector, ObservableLinkFilterExcludesBlindWindows) {
  const std::vector<obs::DegradationEvent> events;
  const std::vector<obs::TruthWindow> truth = {{0, 1, 1.0, 2.0, false},
                                               {2, 3, 1.0, 2.0, false}};
  obs::DetectionScoreOptions options;
  options.observable_links = {{0, 1}};
  const obs::DetectionScore score = obs::score_detections(events, truth, options);
  // Only (0,1) is scored; it was missed. (2,3) carried no traffic.
  EXPECT_EQ(score.missed_windows, 1);
  EXPECT_EQ(score.recall, 0.0);
}

// ---------------------------------------------------------------------------
// Truth windows from a fault plan

TEST(TruthWindows, ExpandOutagesDegradationsAndLoss) {
  fault::FaultPlan plan(1);
  plan.add_site_outage(1, 5.0, 9.0);
  plan.add_link_degradation(0, 2, 1.0, 2.0, 0.5);
  plan.add_message_loss(2, 0, 3.0, fault::kNoEnd, 0.4);
  const std::vector<obs::TruthWindow> truth = plan.truth_windows(3);

  int down = 0, degraded = 0;
  std::set<std::pair<SiteId, SiteId>> down_links;
  for (const obs::TruthWindow& w : truth) {
    if (w.down) {
      ++down;
      down_links.insert({w.src, w.dst});
      EXPECT_EQ(w.start, 5.0);
      EXPECT_EQ(w.end, 9.0);
    } else {
      ++degraded;
    }
  }
  // Site 1 outage touches both directions of links to sites 0 and 2.
  EXPECT_EQ(down, 4);
  EXPECT_TRUE(down_links.count({1, 0}));
  EXPECT_TRUE(down_links.count({0, 1}));
  EXPECT_TRUE(down_links.count({1, 2}));
  EXPECT_TRUE(down_links.count({2, 1}));
  EXPECT_EQ(degraded, 2);  // the degradation and the lossy link
}

// ---------------------------------------------------------------------------
// Closed loop on real executions

struct FaultedRun {
  net::CloudTopology topo{net::aws_experiment_profile(2)};
  net::CalibrationResult calib{net::Calibrator().calibrate(topo)};
  Mapping mapping{0, 1, 2, 3};  // one rank per site: exactly reproducible
  fault::FaultPlan plan{2017};

  runtime::RunResult run(obs::Collector* collector) {
    runtime::Runtime rt(calib.model, mapping, topo.instance().gflops);
    rt.set_fault_plan(&plan);
    if (collector != nullptr) rt.set_collector(collector);
    const apps::App& app = apps::app_by_name("K-means");
    const apps::AppConfig cfg = app.default_config(rt.num_ranks());
    return rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });
  }
};

TEST(ClosedLoop, RuntimeTelemetryScoresWellAgainstTruth) {
  FaultedRun f;
  // Calibrate the fault schedule against the healthy duration.
  fault::FaultPlan healthy_probe(2017);
  f.plan = std::move(healthy_probe);
  obs::Collector probe;
  const Seconds healthy_makespan = f.run(&probe).makespan;

  const Seconds t_out = 0.5 * healthy_makespan;
  f.plan = fault::FaultPlan(2017);
  f.plan.add_site_degradation(2, 0.0, t_out, 0.25);
  f.plan.add_site_outage(2, t_out);

  obs::Collector collector;
  const runtime::RunResult faulted = f.run(&collector);
  EXPECT_GT(faulted.total_retries, 0u);
  EXPECT_FALSE(collector.timeline().empty());

  obs::DegradationDetector detector;
  detector.scan(collector.timeline());
  const std::vector<obs::DegradationEvent> events = detector.events();
  EXPECT_FALSE(events.empty());

  obs::DetectionScoreOptions options;
  for (const std::string& key : collector.timeline().keys()) {
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos ||
        key.compare(0, brace, "link.latency_ratio") != 0)
      continue;
    int src = -1, dst = -1;
    if (obs::parse_link_label(key.substr(brace + 1, key.size() - brace - 2),
                              &src, &dst))
      options.observable_links.emplace_back(src, dst);
  }
  const obs::DetectionScore score = obs::score_detections(
      events, f.plan.truth_windows(f.topo.num_sites()), options);
  // The PR's acceptance bar: detection quality from telemetry alone.
  EXPECT_GE(score.precision, 0.9);
  EXPECT_GE(score.recall, 0.8);
}

TEST(ClosedLoop, TimelineExportIsByteIdenticalAcrossReruns) {
  const auto run_once = [](std::string* out) {
    FaultedRun f;
    f.plan.add_site_degradation(1, 0.0, 0.05, 0.25);
    f.plan.add_site_outage(1, 0.05);
    obs::Collector collector;
    (void)f.run(&collector);
    obs::DegradationDetector detector;
    detector.scan(collector.timeline());
    collector.detections().add_events(detector.events());
    std::ostringstream os;
    collector.write_timeline_json(os);
    *out = os.str();
  };
  std::string first, second;
  run_once(&first);
  run_once(&second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ClosedLoop, DetectionRemapRecoversMostOfOracleGain) {
  // Bench-shaped instance: 16 ranks on the 4-region deployment, the
  // busiest site browns out and then dies mid-run.
  const int ranks = 16;
  const net::CloudTopology topo(net::aws_experiment_profile((ranks + 2) / 3));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const apps::App& app = apps::app_by_name("K-means");
  const apps::AppConfig cfg = app.default_config(ranks);
  trace::CommMatrix comm = app.synthetic_pattern(ranks, cfg);
  const mapping::MappingProblem problem =
      core::make_problem(topo, calib.model, std::move(comm), {});
  const Mapping current = core::GeoDistMapper().map(problem);

  std::vector<int> load(static_cast<std::size_t>(problem.num_sites()), 0);
  for (const SiteId s : current) load[static_cast<std::size_t>(s)] += 1;
  SiteId failed = 0;
  for (SiteId s = 1; s < problem.num_sites(); ++s) {
    if (load[static_cast<std::size_t>(s)] > load[static_cast<std::size_t>(failed)])
      failed = s;
  }

  runtime::Runtime healthy_rt(calib.model, current, topo.instance().gflops);
  const Seconds healthy_makespan =
      healthy_rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); })
          .makespan;
  const Seconds t_out = 0.5 * healthy_makespan;

  // The brownout persists past the outage instant: the oracle's
  // remap-time snapshot then really is degraded, so remapping away from
  // the failed site has a genuine cost gain for detection to recover.
  fault::FaultPlan plan(2017);
  plan.add_site_degradation(failed, 0.0, fault::kNoEnd, 0.25);
  plan.add_site_outage(failed, t_out);

  obs::Collector collector;
  runtime::Runtime rt(calib.model, current, topo.instance().gflops);
  rt.set_fault_plan(&plan);
  rt.set_collector(&collector);
  (void)rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });

  obs::DegradationDetector detector;
  detector.scan(collector.timeline());

  const core::RemapResult oracle =
      core::remap_on_outage(problem, current, plan, failed, t_out);
  const core::DetectionRemapResult det =
      core::remap_on_detection(problem, current, detector.events(), plan);

  EXPECT_EQ(det.suspected_site, failed);
  EXPECT_GT(det.down_events, 0);

  const double oracle_gain = oracle.degraded_cost - oracle.post_remap_cost;
  const double detection_gain =
      det.remap.degraded_cost - det.remap.post_remap_cost;
  ASSERT_GT(oracle_gain, 0.0);
  // The PR's acceptance bar: the detector-driven remap recovers at least
  // 70% of what the oracle recovers.
  EXPECT_GE(detection_gain, 0.7 * oracle_gain);
}

TEST(ClosedLoop, RemapOnDetectionNeedsADownEvent) {
  const net::CloudTopology topo(net::aws_experiment_profile(2));
  const net::CalibrationResult calib = net::Calibrator().calibrate(topo);
  const apps::App& app = apps::app_by_name("K-means");
  const apps::AppConfig cfg = app.default_config(4);
  trace::CommMatrix comm = app.synthetic_pattern(4, cfg);
  const mapping::MappingProblem problem =
      core::make_problem(topo, calib.model, std::move(comm), {});
  const Mapping current{0, 1, 2, 3};
  const fault::FaultPlan plan(1);

  const std::vector<obs::DegradationEvent> latency_only = {
      {0, 1, obs::DegradationKind::kLatency, 1.0, 1.5, kInf, 3.0, 0.9}};
  EXPECT_THROW(
      core::remap_on_detection(problem, current, latency_only, plan),
      InvalidArgument);
}

// ---------------------------------------------------------------------------
// Histogram reservoir

TEST(HistogramReservoir, BoundsMemoryAndKeepsExactCountMinMax) {
  obs::Histogram h(64);
  for (int i = 0; i < 10000; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.samples().size(), 64u);
  const obs::Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 9999.0);
  EXPECT_TRUE(s.sampled);
  // Percentiles are estimates; uniform input keeps them near truth.
  EXPECT_NEAR(s.p50, 5000.0, 2000.0);
  EXPECT_NEAR(s.sum, 10000.0 * 9999.0 / 2.0, 0.3 * 10000.0 * 9999.0 / 2.0);
}

TEST(HistogramReservoir, BelowCapBehaviorIsExactAndUnflagged) {
  obs::Histogram capped(100), uncapped;
  for (int i = 0; i < 50; ++i) {
    capped.record(i * 1.5);
    uncapped.record(i * 1.5);
  }
  const obs::Histogram::Summary a = capped.summary();
  const obs::Histogram::Summary b = uncapped.summary();
  EXPECT_FALSE(a.sampled);
  EXPECT_FALSE(b.sampled);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(HistogramReservoir, SameArrivalOrderKeepsIdenticalSamples) {
  obs::Histogram a(32), b(32);
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0, 1));
  for (const double x : xs) a.record(x);
  for (const double x : xs) b.record(x);
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(HistogramReservoir, RegistryCapAppliesToNewHistogramsAndExportFlags) {
  obs::MetricsRegistry reg;
  obs::Histogram& before = reg.histogram("before");  // unbounded
  reg.set_histogram_sample_cap(16);
  obs::Histogram& after = reg.histogram("after");
  for (int i = 0; i < 1000; ++i) {
    before.record(i);
    after.record(i);
  }
  EXPECT_EQ(before.samples().size(), 1000u);
  EXPECT_EQ(after.samples().size(), 16u);

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  // Only the capped histogram carries the flag.
  EXPECT_NE(json.find("\"sampled\": true"), std::string::npos);
  EXPECT_EQ(json.find("sampled", json.find("\"before\"")), std::string::npos);
  EXPECT_NE(json.find("sampled", json.find("\"after\"")), std::string::npos);
}

}  // namespace
}  // namespace geomap
