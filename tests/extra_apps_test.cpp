// Tests for the additional NPB-style workloads (CG, MG, FT): numeric
// kernel correctness, app-level convergence / round-trip accuracy on the
// runtime, and the communication-pattern classes they contribute.

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "apps/app.h"
#include "apps/cg.h"
#include "apps/ft.h"
#include "apps/mg.h"
#include "common/rng.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "runtime/comm.h"

namespace geomap::apps {
namespace {

runtime::RunResult execute(const App& app, const AppConfig& cfg,
                           double* metric_out = nullptr) {
  const net::CloudTopology topo(
      net::aws_experiment_profile((cfg.num_ranks + 3) / 4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  Mapping mapping(static_cast<std::size_t>(cfg.num_ranks));
  for (int r = 0; r < cfg.num_ranks; ++r)
    mapping[static_cast<std::size_t>(r)] = r / ((cfg.num_ranks + 3) / 4);
  std::mutex mu;
  runtime::Runtime rt(model, mapping, topo.instance().gflops);
  return rt.run([&](runtime::Comm& comm) {
    const double metric = app.run(comm, cfg);
    if (metric_out != nullptr && comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      *metric_out = metric;
    }
  });
}

// ---------- FFT kernel ----------

TEST(Fft, MatchesDirectDftOnRandomInput) {
  Rng rng(3);
  const std::size_t n = 32;
  std::vector<double> a(2 * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  std::vector<double> fft = a;
  fft_radix2(fft, false);
  for (std::size_t k = 0; k < n; ++k) {
    double re = 0, im = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) /
                           static_cast<double>(n);
      re += a[2 * t] * std::cos(angle) - a[2 * t + 1] * std::sin(angle);
      im += a[2 * t] * std::sin(angle) + a[2 * t + 1] * std::cos(angle);
    }
    EXPECT_NEAR(fft[2 * k], re, 1e-9);
    EXPECT_NEAR(fft[2 * k + 1], im, 1e-9);
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(7);
  std::vector<double> a(2 * 128);
  for (auto& v : a) v = rng.uniform(-5, 5);
  std::vector<double> b = a;
  fft_radix2(b, false);
  fft_radix2(b, true);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(b[i], a[i], 1e-10);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<double> a(2 * 12);
  EXPECT_THROW(fft_radix2(a, false), Error);
}

// ---------- app-level behaviour ----------

TEST(ExtraApps, RegistryExposesEightApps) {
  EXPECT_EQ(all_apps().size(), 5u);
  EXPECT_EQ(extended_apps().size(), 8u);
  EXPECT_EQ(app_by_name("CG").name(), "CG");
  EXPECT_EQ(app_by_name("MG").name(), "MG");
  EXPECT_EQ(app_by_name("FT").name(), "FT");
}

TEST(ExtraApps, CgResidualDecreasesWithIterations) {
  const App& cg = app_by_name("CG");
  AppConfig short_cfg = cg.default_config(8);
  short_cfg.iterations = 3;
  AppConfig long_cfg = short_cfg;
  long_cfg.iterations = 20;
  double r_short = 0, r_long = 0;
  execute(cg, short_cfg, &r_short);
  execute(cg, long_cfg, &r_long);
  EXPECT_GT(r_short, 0.0);
  EXPECT_LT(r_long, r_short * 0.5);
}

TEST(ExtraApps, MgResidualDecreasesWithCycles) {
  const App& mg = app_by_name("MG");
  AppConfig short_cfg = mg.default_config(4);
  short_cfg.iterations = 1;
  short_cfg.problem_size = 16;
  AppConfig long_cfg = short_cfg;
  long_cfg.iterations = 6;
  double r_short = 0, r_long = 0;
  execute(mg, short_cfg, &r_short);
  execute(mg, long_cfg, &r_long);
  EXPECT_GT(r_short, 0.0);
  EXPECT_LT(r_long, r_short * 0.5);
}

TEST(ExtraApps, FtRoundTripErrorIsMachinePrecision) {
  const App& ft = app_by_name("FT");
  AppConfig cfg = ft.default_config(8);
  cfg.iterations = 2;
  cfg.problem_size = 64;
  double error = 1.0;
  execute(ft, cfg, &error);
  EXPECT_LT(error, 1e-10);
}

TEST(ExtraApps, RunAtAwkwardRankCounts) {
  for (const char* name : {"CG", "MG", "FT"}) {
    const App& app = app_by_name(name);
    for (const int ranks : {2, 6, 12}) {
      AppConfig cfg = app.default_config(ranks);
      cfg.iterations = 2;
      cfg.problem_size = std::min(cfg.problem_size, 32);
      EXPECT_NO_THROW(execute(app, cfg)) << name << " @" << ranks;
    }
  }
}

TEST(ExtraApps, MetricIndependentOfMapping) {
  // Virtual time changes with the mapping; numeric results must not.
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  for (const char* name : {"CG", "MG", "FT"}) {
    const App& app = app_by_name(name);
    AppConfig cfg = app.default_config(16);
    cfg.iterations = 3;
    cfg.problem_size = std::min(cfg.problem_size, 32);
    auto run_with = [&](const Mapping& m) {
      double metric = 0;
      std::mutex mu;
      runtime::Runtime rt(model, m, topo.instance().gflops);
      rt.run([&](runtime::Comm& c) {
        const double v = app.run(c, cfg);
        if (c.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          metric = v;
        }
      });
      return metric;
    };
    Mapping block(16);
    for (int r = 0; r < 16; ++r) block[static_cast<std::size_t>(r)] = r / 4;
    Mapping cyclic(16);
    for (int r = 0; r < 16; ++r) cyclic[static_cast<std::size_t>(r)] = r % 4;
    EXPECT_NEAR(run_with(block), run_with(cyclic), 1e-12) << name;
  }
}

// ---------- pattern classes ----------

TEST(ExtraPatterns, CgIsMostlyNeighbourWithIrregularTail) {
  const App& cg = app_by_name("CG");
  const trace::CommMatrix m = cg.synthetic_pattern(16, cg.default_config(16));
  // Halo edges exist between consecutive row-block owners...
  EXPECT_GT(m.volume(0, 1), 0.0);
  // ...and the random couplings add pairs beyond +-1 neighbours and the
  // collective trees (r^2^k partners): look for any edge with distance
  // not a power of two.
  bool irregular = false;
  for (const trace::CommEdge& e : m.edges()) {
    const int d = std::abs(e.src - e.dst);
    if (d > 1 && (d & (d - 1)) != 0) irregular = true;
  }
  EXPECT_TRUE(irregular);
}

TEST(ExtraPatterns, MgHasHubTrafficToRankZero) {
  const App& mg = app_by_name("MG");
  const trace::CommMatrix m = mg.synthetic_pattern(16, mg.default_config(16));
  // Every rank exchanges coarse blocks with rank 0.
  for (ProcessId r = 1; r < 16; ++r) {
    EXPECT_GT(m.volume(r, 0), 0.0) << r;
    EXPECT_GT(m.volume(0, r), 0.0) << r;
  }
}

TEST(ExtraPatterns, FtIsDenseAllPairs) {
  const App& ft = app_by_name("FT");
  const trace::CommMatrix m = ft.synthetic_pattern(16, ft.default_config(16));
  for (ProcessId i = 0; i < 16; ++i)
    for (ProcessId j = 0; j < 16; ++j)
      if (i != j) EXPECT_GT(m.volume(i, j), 0.0) << i << "->" << j;
}

TEST(ExtraPatterns, ProfiledVolumeMatchesSyntheticApproximately) {
  // The extra apps' synthetic patterns are structural models, not exact
  // replicas — but total traffic should agree within a factor of two.
  const net::CloudTopology topo(net::aws_experiment_profile(4));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  for (const char* name : {"CG", "MG", "FT"}) {
    const App& app = app_by_name(name);
    AppConfig cfg = app.default_config(16);
    cfg.iterations = 3;
    cfg.problem_size = std::min(cfg.problem_size, 64);
    trace::ApplicationProfile profile(16);
    Mapping trivial(16, 0);
    runtime::Runtime rt(model, trivial, 45.0, &profile);
    rt.run([&](runtime::Comm& c) { (void)app.run(c, cfg); });
    const trace::CommMatrix profiled = profile.build_comm_matrix();
    const trace::CommMatrix synthetic = app.synthetic_pattern(16, cfg);
    EXPECT_LT(profiled.total_volume(), synthetic.total_volume() * 2.0) << name;
    EXPECT_GT(profiled.total_volume(), synthetic.total_volume() * 0.5) << name;
  }
}

}  // namespace
}  // namespace geomap::apps
