// Chaos-plan generation and the migration invariant checker
// (src/fault/chaos.h): seeded determinism, structural bounds, and the
// checker's ability to catch each class of protocol violation from a
// hand-built journal.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "fault/chaos.h"
#include "fault/fault_plan.h"

namespace geomap::fault {
namespace {

TEST(ChaosPlanTest, DeterministicInSeedAndOptions) {
  ChaosOptions options;
  options.migration_window_length = 20.0;
  options.migration_window_faults = 2;
  const ChaosPlan a = make_chaos_plan(42, options);
  const ChaosPlan b = make_chaos_plan(42, options);

  EXPECT_EQ(a.primary_site, b.primary_site);
  EXPECT_EQ(a.primary_outage_time, b.primary_outage_time);
  EXPECT_EQ(a.permanently_dead, b.permanently_dead);
  ASSERT_EQ(a.plan.events().size(), b.plan.events().size());
  for (std::size_t i = 0; i < a.plan.events().size(); ++i) {
    const FaultEvent& ea = a.plan.events()[i];
    const FaultEvent& eb = b.plan.events()[i];
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.start, eb.start);
    EXPECT_EQ(ea.end, eb.end);
    EXPECT_EQ(ea.site, eb.site);
    EXPECT_EQ(ea.latency_factor, eb.latency_factor);
    EXPECT_EQ(ea.bandwidth_factor, eb.bandwidth_factor);
    EXPECT_EQ(ea.loss_probability, eb.loss_probability);
  }

  const ChaosPlan c = make_chaos_plan(43, options);
  EXPECT_TRUE(c.primary_site != a.primary_site ||
              c.primary_outage_time != a.primary_outage_time ||
              c.plan.events().size() != a.plan.events().size() ||
              c.plan.events().front().start != a.plan.events().front().start);
}

TEST(ChaosPlanTest, PrimaryOutageInsideConfiguredWindow) {
  ChaosOptions options;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const ChaosPlan plan = make_chaos_plan(seed, options);
    EXPECT_GE(plan.primary_site, 0);
    EXPECT_LT(plan.primary_site, options.num_sites);
    EXPECT_GE(plan.primary_outage_time, options.primary_lo * options.horizon);
    EXPECT_LE(plan.primary_outage_time, options.primary_hi * options.horizon);
    // The primary outage is permanent.
    EXPECT_TRUE(plan.plan.site_down(plan.primary_site,
                                    plan.primary_outage_time + 1e-9));
    EXPECT_EQ(plan.plan.next_site_up(plan.primary_site,
                                     plan.primary_outage_time + 1e-9),
              kNoEnd);
    ASSERT_EQ(plan.permanently_dead.size(), 1u);
    EXPECT_EQ(plan.permanently_dead[0], plan.primary_site);
  }
}

TEST(ChaosPlanTest, OnlyListedSitesArePermanentlyDead) {
  ChaosOptions options;
  options.transient_outages = 3;
  options.brownouts = 4;
  options.migration_window_length = 25.0;
  options.migration_window_faults = 3;
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    const ChaosPlan plan = make_chaos_plan(seed, options);
    for (SiteId s = 0; s < options.num_sites; ++s) {
      const bool listed_dead =
          std::find(plan.permanently_dead.begin(), plan.permanently_dead.end(),
                    s) != plan.permanently_dead.end();
      // Sample the horizon: every outage of a surviving site must clear.
      bool ever_permanent = false;
      for (double t = 0; t < 2.5 * options.horizon; t += 0.37) {
        if (plan.plan.site_down(s, t) &&
            plan.plan.next_site_up(s, t) == kNoEnd) {
          ever_permanent = true;
          break;
        }
      }
      EXPECT_EQ(ever_permanent, listed_dead) << "site " << s << " seed " << seed;
    }
  }
}

TEST(ChaosPlanTest, MigrationWindowFaultsLandInsideWindow) {
  ChaosOptions options;
  options.transient_outages = 0;
  options.brownouts = 0;
  options.loss_events = 0;
  options.cascade_probability = 0.0;
  options.migration_window_start = 30.0;
  options.migration_window_length = 10.0;
  options.migration_window_faults = 3;
  const ChaosPlan plan = make_chaos_plan(7, options);
  // Events: 1 primary outage + 3 window faults, all of the latter
  // starting inside [30, 40) on surviving sites.
  ASSERT_EQ(plan.plan.events().size(), 4u);
  int window_faults = 0;
  for (const FaultEvent& e : plan.plan.events()) {
    if (e.kind == FaultKind::kSiteOutage && e.end == kNoEnd) continue;
    ++window_faults;
    EXPECT_GE(e.start, 30.0);
    EXPECT_LT(e.start, 40.0);
    EXPECT_NE(e.site, plan.primary_site);
    EXPECT_LT(e.end, kNoEnd);
  }
  EXPECT_EQ(window_faults, 3);
}

TEST(ChaosPlanTest, ValidatesOptions) {
  ChaosOptions bad;
  bad.num_sites = 1;
  EXPECT_THROW(make_chaos_plan(1, bad), Error);
  bad = ChaosOptions{};
  bad.max_permanent_outages = 4;  // == num_sites: no survivors
  EXPECT_THROW(make_chaos_plan(1, bad), Error);
  bad = ChaosOptions{};
  bad.min_bandwidth_factor = 0.0;
  EXPECT_THROW(make_chaos_plan(1, bad), Error);
}

// ---------------------------------------------------------------------------
// Invariant checker on hand-built journals. World: 3 sites, capacity 2
// each, 3 processes initially mapped [0, 0, 1].

class MigrationInvariantTest : public ::testing::Test {
 protected:
  Mapping initial_{0, 0, 1};
  std::vector<int> capacities_{2, 2, 2};
  FaultPlan plan_{1};
  MigrationInvariantOptions options_;

  MigrationInvariantTest() {
    options_.planned_bytes_per_process = 100.0;
    options_.chunk_bytes = 50.0;
    options_.max_retries = 1;
    options_.max_copy_attempts = 2;
    options_.horizon = 100.0;
  }

  std::vector<InvariantViolation> check(
      const std::vector<MigrationEvent>& events) {
    return check_migration_invariants(events, initial_, capacities_, plan_,
                                      options_);
  }
};

TEST_F(MigrationInvariantTest, CleanTwoPhaseJournalPasses) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
      {MigrationEventKind::kChunk, 2.0, 0, 0, 2, 50.0},
      {MigrationEventKind::kChunk, 3.0, 0, 0, 2, 50.0},
      {MigrationEventKind::kCommit, 4.0, 0, 0, 2, 0},
  };
  const auto violations = check(events);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().message);
}

TEST_F(MigrationInvariantTest, RollbackReleasesAndPasses) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
      {MigrationEventKind::kChunk, 2.0, 0, 0, 2, 50.0},
      {MigrationEventKind::kRollback, 3.0, 0, 0, 2, 0},
      {MigrationEventKind::kRelease, 3.0, 0, -1, 2, 0},
  };
  EXPECT_TRUE(check(events).empty());
}

TEST_F(MigrationInvariantTest, CatchesCapacityOverflow) {
  // All three processes reserve site 2 (capacity 2): the third
  // reservation makes 0 residents + 3 reserved > 2.
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
      {MigrationEventKind::kReserve, 1.5, 1, -1, 2, 0},
      {MigrationEventKind::kReserve, 2.0, 2, -1, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("over capacity"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesDoubleReservation) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
      {MigrationEventKind::kReserve, 2.0, 0, -1, 1, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("already holding"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesCommitWithoutReservation) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kCommit, 1.0, 0, 0, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("without a reservation"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesStaleCommit) {
  // Process 0's home is site 0; a commit claiming to move it from site 1
  // is either a double home or a stale (pre-rollback) commit applying.
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
      {MigrationEventKind::kCommit, 2.0, 0, 1, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("two homes, or a stale commit"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesReleaseMismatch) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kRelease, 1.0, 0, -1, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("no reservation"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesLeakedReservationAtEnd) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("leaked reservation"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesByteBudgetOverrun) {
  // Bound: ceil(100/50)=2 chunks * 50 * (1+1 retries) * 2 attempts = 400.
  std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 1.0, 0, -1, 2, 0},
  };
  for (int i = 0; i < 9; ++i) {
    events.push_back({MigrationEventKind::kChunk, 2.0 + i, 0, 0, 2, 50.0});
  }
  events.push_back({MigrationEventKind::kCommit, 20.0, 0, 0, 2, 0});
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("retry bound"), std::string::npos);
}

TEST_F(MigrationInvariantTest, CatchesHomeOnPermanentlyDeadSite) {
  plan_.add_site_outage(1, 10.0);  // permanent; process 2 lives there
  const auto violations = check({});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations.front().message.find("permanently dead"),
            std::string::npos);
}

TEST_F(MigrationInvariantTest, TransientOutageOfHomeSiteIsFine) {
  plan_.add_site_outage(1, 10.0, 20.0);
  EXPECT_TRUE(check({}).empty());
}

TEST_F(MigrationInvariantTest, CatchesOutOfOrderJournal) {
  const std::vector<MigrationEvent> events = {
      {MigrationEventKind::kReserve, 5.0, 0, -1, 2, 0},
      {MigrationEventKind::kRelease, 1.0, 0, -1, 2, 0},
  };
  const auto violations = check(events);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().message.find("out of order"),
            std::string::npos);
}

}  // namespace
}  // namespace geomap::fault
