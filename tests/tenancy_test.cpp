// Multi-tenant substrate (src/tenancy): shared-link replay semantics,
// the remap wait-and-retry path (both outcomes), scheduler determinism
// and tie-breaking, storm queue-and-retry drain, cross-tenant
// invariants, and the soak harness end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/remap.h"
#include "fault/chaos.h"
#include "fault/degraded_network.h"
#include "fault/fault_plan.h"
#include "obs/collector.h"
#include "obs/detector.h"
#include "obs/timeseries.h"
#include "sim/netsim.h"
#include "tenancy/scheduler.h"
#include "tenancy/soak.h"
#include "tenancy/substrate.h"
#include "test_util.h"

namespace geomap::tenancy {
namespace {

/// Round-robin feasible mapping over the problem's sites (capacities in
/// the testutil problems are uniform, so i % M always fits).
Mapping round_robin(const mapping::MappingProblem& problem) {
  Mapping m(static_cast<std::size_t>(problem.num_processes()));
  std::vector<int> used(static_cast<std::size_t>(problem.num_sites()), 0);
  for (ProcessId i = 0; i < problem.num_processes(); ++i) {
    SiteId s = i % problem.num_sites();
    while (used[static_cast<std::size_t>(s)] >=
           problem.capacities[static_cast<std::size_t>(s)]) {
      s = (s + 1) % problem.num_sites();
    }
    m[static_cast<std::size_t>(i)] = s;
    used[static_cast<std::size_t>(s)] += 1;
  }
  return m;
}

// ---------------------------------------------------------------------------
// Remap wait-and-retry (core/remap.h)

TEST(RemapRetryTest, BackoffIsExponentialAndCapped) {
  core::RemapRetryPolicy retry;
  retry.initial_backoff = 0.5;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff = 3.0;
  EXPECT_DOUBLE_EQ(retry.backoff(1), 0.5);
  EXPECT_DOUBLE_EQ(retry.backoff(2), 1.0);
  EXPECT_DOUBLE_EQ(retry.backoff(3), 2.0);
  EXPECT_DOUBLE_EQ(retry.backoff(4), 3.0);  // capped
  EXPECT_DOUBLE_EQ(retry.backoff(10), 3.0);
}

TEST(RemapRetryTest, ValidateRejectsMalformedPolicies) {
  core::RemapRetryPolicy retry;
  retry.max_attempts = 0;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.backoff_multiplier = 0.5;
  EXPECT_THROW(retry.validate(), InvalidArgument);
  retry = {};
  retry.max_backoff = retry.initial_backoff / 2;
  EXPECT_THROW(retry.validate(), InvalidArgument);
}

TEST(RemapRetryTest, FirstAttemptSucceedsWithoutWaiting) {
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/11, /*degree=*/3, /*slack=*/2);
  const Mapping current = round_robin(problem);
  fault::FaultPlan plan;
  plan.add_site_outage(3, 5.0);

  const core::RetriedRemapResult r =
      core::remap_on_outage_with_retry(problem, current, plan, 3, 5.0);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_DOUBLE_EQ(r.waited, 0.0);
  EXPECT_DOUBLE_EQ(r.decided_at, 5.0);
  for (const SiteId s : r.remap.mapping) EXPECT_NE(s, 3);
}

TEST(RemapRetryTest, RetriesUntilTheCapacityProbeFreesSlots) {
  // Zero slack: the survivors cannot host everyone until the probe
  // reports freed capacity at t >= 6.
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/13, /*degree=*/3, /*slack=*/0);
  const Mapping current = round_robin(problem);
  fault::FaultPlan plan;
  plan.add_site_outage(3, 5.0);

  core::RemapRetryPolicy retry;
  retry.max_attempts = 5;
  retry.initial_backoff = 1.0;
  retry.backoff_multiplier = 2.0;
  const core::CapacityProbe probe = [&](Seconds t) {
    std::vector<int> caps = problem.capacities;
    if (t >= 6.0) {
      for (SiteId s = 0; s < problem.num_sites(); ++s) {
        if (s != 3) caps[static_cast<std::size_t>(s)] += 2;
      }
    }
    return caps;
  };

  const core::RetriedRemapResult r = core::remap_on_outage_with_retry(
      problem, current, plan, 3, 5.0, {}, retry, probe);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_DOUBLE_EQ(r.waited, 1.0);
  EXPECT_DOUBLE_EQ(r.decided_at, 6.0);
  for (const SiteId s : r.remap.mapping) EXPECT_NE(s, 3);
}

TEST(RemapRetryTest, GivesUpWithTypedErrorAfterMaxAttempts) {
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/13, /*degree=*/3, /*slack=*/0);
  const Mapping current = round_robin(problem);
  fault::FaultPlan plan;
  plan.add_site_outage(3, 5.0);

  core::RemapRetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = 1.0;
  retry.backoff_multiplier = 2.0;
  try {
    core::remap_on_outage_with_retry(problem, current, plan, 3, 5.0, {},
                                     retry);
    FAIL() << "expected RemapGaveUp";
  } catch (const core::RemapGaveUp& e) {
    EXPECT_EQ(e.attempts(), 3);
    // Waited backoff(1) + backoff(2) = 1 + 2 after the failed attempts.
    EXPECT_DOUBLE_EQ(e.gave_up_at(), 5.0 + 1.0 + 2.0);
  }
}

// ---------------------------------------------------------------------------
// Shared-substrate replay (sim::replay_multitenant)

TEST(MultiTenantReplayTest, FaultFreeSingleTenantMatchesContentionReplay) {
  const mapping::MappingProblem problem =
      testutil::random_problem(10, 0.0, /*seed=*/21, /*degree=*/3, /*slack=*/2);
  const Mapping mapping = round_robin(problem);
  const fault::FaultPlan no_faults;
  const fault::DegradedNetworkModel model(problem.network, no_faults);

  const sim::ContentionResult solo =
      sim::replay_with_contention(problem.comm, model, mapping);
  const sim::MultiTenantReplayResult shared =
      sim::replay_multitenant({{&problem.comm, &mapping}}, model);
  ASSERT_EQ(shared.tenants.size(), 1u);
  EXPECT_DOUBLE_EQ(shared.tenants[0].total_transfer_seconds,
                   solo.total_transfer_seconds);
  EXPECT_EQ(shared.tenants[0].forced_edges, 0);
}

TEST(MultiTenantReplayTest, BitIdenticalAcrossRuns) {
  const mapping::MappingProblem a =
      testutil::random_problem(8, 0.0, /*seed=*/31, /*degree=*/3, /*slack=*/2);
  const mapping::MappingProblem b =
      testutil::random_problem(12, 0.0, /*seed=*/32, /*degree=*/4, /*slack=*/2);
  const Mapping ma = round_robin(a);
  const Mapping mb = round_robin(b);
  const fault::FaultPlan no_faults;
  const fault::DegradedNetworkModel model(a.network, no_faults);
  const std::vector<sim::TenantFlow> flows = {{&a.comm, &ma}, {&b.comm, &mb}};

  const sim::MultiTenantReplayResult r1 = sim::replay_multitenant(flows, model);
  const sim::MultiTenantReplayResult r2 = sim::replay_multitenant(flows, model);
  ASSERT_EQ(r1.tenants.size(), r2.tenants.size());
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.busiest_link_seconds, r2.busiest_link_seconds);
  for (std::size_t k = 0; k < r1.tenants.size(); ++k) {
    EXPECT_EQ(r1.tenants[k].makespan, r2.tenants[k].makespan);
    EXPECT_EQ(r1.tenants[k].total_transfer_seconds,
              r2.tenants[k].total_transfer_seconds);
  }
}

TEST(MultiTenantReplayTest, RoundsRepeatTheAppBody) {
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/33, /*degree=*/3, /*slack=*/2);
  const Mapping mapping = round_robin(problem);
  const fault::FaultPlan no_faults;
  const fault::DegradedNetworkModel model(problem.network, no_faults);

  const sim::MultiTenantReplayResult once =
      sim::replay_multitenant({{&problem.comm, &mapping}}, model);
  sim::MultiTenantReplayOptions options;
  options.rounds = 3;
  const sim::MultiTenantReplayResult thrice =
      sim::replay_multitenant({{&problem.comm, &mapping}}, model, options);
  // Healthy per-edge prices are time-invariant, so the transfer sum
  // scales exactly with the rounds (summation order may differ).
  EXPECT_NEAR(thrice.tenants[0].total_transfer_seconds,
              3.0 * once.tenants[0].total_transfer_seconds,
              1e-9 * once.tenants[0].total_transfer_seconds);
  EXPECT_GT(thrice.makespan, once.makespan);
}

TEST(MultiTenantReplayTest, ForceThroughFeedsTheDetectorAndVote) {
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/35, /*degree=*/3, /*slack=*/2);
  const Mapping mapping = round_robin(problem);
  fault::FaultPlan plan;
  plan.add_site_outage(0, 0.0);  // permanently dead from the start
  const fault::DegradedNetworkModel model(problem.network, plan);

  obs::Collector collector;
  sim::MultiTenantReplayOptions options;
  options.rounds = 4;
  options.collector = &collector;
  const sim::MultiTenantReplayResult r =
      sim::replay_multitenant({{&problem.comm, &mapping}}, model, options);
  EXPECT_GT(r.tenants[0].forced_edges, 0);

  obs::DegradationDetector detector;
  detector.scan(collector.timeline());
  const core::SuspectVote vote = core::vote_suspected_site(detector.events());
  EXPECT_EQ(vote.site, 0);
}

TEST(MultiTenantReplayTest, PermanentOutageThrowsWithForceThroughDisabled) {
  const mapping::MappingProblem problem =
      testutil::random_problem(8, 0.0, /*seed=*/35, /*degree=*/3, /*slack=*/2);
  const Mapping mapping = round_robin(problem);
  fault::FaultPlan plan;
  plan.add_site_outage(0, 0.0);
  const fault::DegradedNetworkModel model(problem.network, plan);

  sim::MultiTenantReplayOptions options;
  options.force_through = false;
  EXPECT_THROW(
      sim::replay_multitenant({{&problem.comm, &mapping}}, model, options),
      Error);
}

// ---------------------------------------------------------------------------
// Tenant-labeled series (obs/timeseries.h)

TEST(TenantLabelTest, RoundTripsAndRejectsPlainLabels) {
  const std::string label = obs::tenant_link_label(3, 0, 2);
  EXPECT_EQ(label, "t3:0->2");
  int tenant = -1, src = -1, dst = -1;
  EXPECT_TRUE(obs::parse_tenant_link_label(label, &tenant, &src, &dst));
  EXPECT_EQ(tenant, 3);
  EXPECT_EQ(src, 0);
  EXPECT_EQ(dst, 2);
  EXPECT_FALSE(obs::parse_tenant_link_label("0->2", &tenant, &src, &dst));
  EXPECT_FALSE(obs::parse_tenant_link_label("tx:0->2", &tenant, &src, &dst));
  EXPECT_FALSE(obs::parse_tenant_link_label("t3:junk", &tenant, &src, &dst));
}

// ---------------------------------------------------------------------------
// Remap/migration scheduler (tenancy/scheduler.h)

/// Mirror of the soak's request construction: every tenant homed on the
/// failed site files one request at `t`.
std::vector<RemapRequest> stranded_requests(const Substrate& substrate,
                                            SiteId failed, Seconds t) {
  std::vector<RemapRequest> requests;
  for (const Tenant& tenant : substrate.tenants) {
    int stranded = 0;
    for (const SiteId s : tenant.mapping) {
      if (s == failed) stranded += 1;
    }
    if (stranded == 0) continue;
    RemapRequest r;
    r.tenant = tenant.id;
    r.request_time = t;
    r.severity =
        static_cast<double>(stranded) / static_cast<double>(tenant.mapping.size());
    requests.push_back(r);
  }
  return requests;
}

/// Site hosting the most tenants' ranks — killing it maximizes requests.
SiteId busiest_site(const Substrate& substrate) {
  const std::vector<int> residents = substrate.residents();
  return static_cast<SiteId>(std::distance(
      residents.begin(), std::max_element(residents.begin(), residents.end())));
}

void expect_journals_identical(const StormReport& a, const StormReport& b) {
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  EXPECT_EQ(a.grant_order, b.grant_order);
  EXPECT_EQ(a.requeues, b.requeues);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.storm_drain_seconds, b.storm_drain_seconds);
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    const TenantRecovery& ra = a.recoveries[i];
    const TenantRecovery& rb = b.recoveries[i];
    EXPECT_EQ(ra.tenant, rb.tenant);
    EXPECT_EQ(ra.granted, rb.granted);
    EXPECT_EQ(ra.gave_up, rb.gave_up);
    EXPECT_EQ(ra.attempts, rb.attempts);
    EXPECT_EQ(ra.granted_at, rb.granted_at);
    EXPECT_EQ(ra.finish_time, rb.finish_time);
    ASSERT_EQ(ra.report.events.size(), rb.report.events.size());
    for (std::size_t e = 0; e < ra.report.events.size(); ++e) {
      const fault::MigrationEvent& ea = ra.report.events[e];
      const fault::MigrationEvent& eb = rb.report.events[e];
      EXPECT_EQ(ea.kind, eb.kind);
      EXPECT_EQ(ea.t, eb.t);
      EXPECT_EQ(ea.process, eb.process);
      EXPECT_EQ(ea.site_from, eb.site_from);
      EXPECT_EQ(ea.site_to, eb.site_to);
      EXPECT_EQ(ea.bytes, eb.bytes);
    }
  }
}

SchedulerOptions small_storm_options() {
  SchedulerOptions options;
  options.migrate.bytes_per_process = 2.0 * kMiB;
  options.migrate.chunk_bytes = 512.0 * 1024;
  options.remap.bytes_per_process = 2.0 * kMiB;
  return options;
}

TEST(SchedulerTest, IdenticalSeedsAndPolicyProduceIdenticalJournals) {
  SubstrateOptions sub;
  sub.num_sites = 5;
  sub.num_tenants = 12;
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kSeverity,
        SchedulerPolicy::kFairShare}) {
    Substrate s1 = make_substrate(7, sub);
    Substrate s2 = make_substrate(7, sub);
    const SiteId failed = busiest_site(s1);
    fault::FaultPlan plan;
    plan.add_site_outage(failed, 1.0);
    const std::vector<RemapRequest> requests =
        stranded_requests(s1, failed, 1.0);
    ASSERT_FALSE(requests.empty());

    SchedulerOptions options = small_storm_options();
    options.policy = policy;
    const StormReport r1 = run_remap_storm(s1, plan, failed, requests, options);
    const StormReport r2 = run_remap_storm(s2, plan, failed, requests, options);
    expect_journals_identical(r1, r2);
    EXPECT_EQ(r1.grant_order.size(), requests.size());
  }
}

TEST(SchedulerTest, EqualKeysTieBreakByTenantId) {
  SubstrateOptions sub;
  sub.num_sites = 5;
  sub.num_tenants = 10;
  Substrate substrate = make_substrate(9, sub);
  const SiteId failed = busiest_site(substrate);
  fault::FaultPlan plan;
  plan.add_site_outage(failed, 1.0);
  std::vector<RemapRequest> requests = stranded_requests(substrate, failed, 1.0);
  ASSERT_GE(requests.size(), 2u);
  // Identical request_time and severity: every policy's remaining key is
  // the tenant id, so the grant order must be ascending ids.
  for (RemapRequest& r : requests) r.severity = 1.0;

  for (const SchedulerPolicy policy :
       {SchedulerPolicy::kFifo, SchedulerPolicy::kSeverity}) {
    Substrate fresh = make_substrate(9, sub);
    SchedulerOptions options = small_storm_options();
    options.policy = policy;
    options.max_concurrent = 1;
    const StormReport report =
        run_remap_storm(fresh, plan, failed, requests, options);
    ASSERT_EQ(report.grant_order.size(), requests.size());
    EXPECT_TRUE(std::is_sorted(report.grant_order.begin(),
                               report.grant_order.end()))
        << "policy " << to_string(policy);
  }
}

TEST(SchedulerTest, InfeasibleGrantsRequeueThenGiveUp) {
  SubstrateOptions sub;
  sub.num_sites = 4;
  sub.num_tenants = 6;
  Substrate substrate = make_substrate(17, sub);
  // Shrink the shared capacities to exactly the committed residents: no
  // free slot anywhere, so every remap attempt is infeasible forever.
  substrate.site_capacities = substrate.residents();
  const SiteId failed = busiest_site(substrate);
  fault::FaultPlan plan;
  plan.add_site_outage(failed, 1.0);
  std::vector<RemapRequest> requests = stranded_requests(substrate, failed, 1.0);
  ASSERT_FALSE(requests.empty());
  requests.resize(1);

  SchedulerOptions options = small_storm_options();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = 0.5;
  const StormReport report =
      run_remap_storm(substrate, plan, failed, requests, options);
  ASSERT_EQ(report.recoveries.size(), 1u);
  EXPECT_FALSE(report.recoveries[0].granted);
  EXPECT_TRUE(report.recoveries[0].gave_up);
  EXPECT_EQ(report.recoveries[0].attempts, 3);
  EXPECT_EQ(report.requeues, 2);
  EXPECT_EQ(report.gave_up, 1);
  EXPECT_TRUE(report.grant_order.empty());
}

TEST(SchedulerTest, FairShareValidateRejectsZeroRefill) {
  SchedulerOptions options;
  options.policy = SchedulerPolicy::kFairShare;
  options.token_refill_per_second = 0.0;
  EXPECT_THROW(options.validate(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Cross-tenant invariants (fault/chaos.h)

fault::MigrationInvariantOptions tight_bounds() {
  fault::MigrationInvariantOptions options;
  options.planned_bytes_per_process = 1.0 * kMiB;
  options.chunk_bytes = 1.0 * kMiB;
  options.max_retries = 0;
  options.max_copy_attempts = 1;
  return options;
}

fault::MigrationEvent event(fault::MigrationEventKind kind, Seconds t,
                            ProcessId process, SiteId from, SiteId to,
                            Bytes bytes = 0) {
  fault::MigrationEvent e;
  e.kind = kind;
  e.t = t;
  e.process = process;
  e.site_from = from;
  e.site_to = to;
  e.bytes = bytes;
  return e;
}

TEST(CrossTenantInvariantTest, CleanConcurrentJournalsPass) {
  using K = fault::MigrationEventKind;
  std::vector<fault::TenantJournal> journals(2);
  journals[0].initial_mapping = {0};
  journals[0].options = tight_bounds();
  journals[0].events = {event(K::kReserve, 1.0, 0, 0, 1),
                        event(K::kChunk, 1.5, 0, 0, 1, 1.0 * kMiB),
                        event(K::kCommit, 2.0, 0, 0, 1)};
  journals[1].initial_mapping = {1};
  journals[1].options = tight_bounds();

  const std::vector<fault::InvariantViolation> v =
      fault::check_cross_tenant_invariants(journals, {2, 2},
                                           fault::FaultPlan());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v.front().message);
}

TEST(CrossTenantInvariantTest, CatchesAggregateDoubleBooking) {
  // Each journal is individually clean, but tenant 0's reservation lands
  // on the last slot tenant 1 already occupies: aggregate 2 > capacity 1.
  using K = fault::MigrationEventKind;
  std::vector<fault::TenantJournal> journals(2);
  journals[0].initial_mapping = {0};
  journals[0].options = tight_bounds();
  journals[0].events = {event(K::kReserve, 1.0, 0, 0, 1),
                        event(K::kChunk, 1.5, 0, 0, 1, 1.0 * kMiB),
                        event(K::kCommit, 2.0, 0, 0, 1)};
  journals[1].initial_mapping = {1};
  journals[1].options = tight_bounds();

  const std::vector<fault::InvariantViolation> v =
      fault::check_cross_tenant_invariants(journals, {2, 1},
                                           fault::FaultPlan());
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().message.find("tenant 0"), std::string::npos)
      << v.front().message;
}

TEST(CrossTenantInvariantTest, CatchesTenantsEndingOnDeadSites) {
  std::vector<fault::TenantJournal> journals(1);
  journals[0].initial_mapping = {0, 0};
  journals[0].options = tight_bounds();
  fault::FaultPlan plan;
  plan.add_site_outage(0, 1.0);  // permanent

  const std::vector<fault::InvariantViolation> v =
      fault::check_cross_tenant_invariants(journals, {2, 2}, plan);
  ASSERT_FALSE(v.empty());
}

TEST(CrossTenantInvariantTest, CatchesLinkBytesAboveSummedBudget) {
  using K = fault::MigrationEventKind;
  std::vector<fault::TenantJournal> journals(1);
  journals[0].initial_mapping = {0};
  journals[0].options = tight_bounds();  // budget: 1 MiB on 0->1
  journals[0].events = {event(K::kReserve, 1.0, 0, 0, 1),
                        event(K::kChunk, 1.2, 0, 0, 1, 1.0 * kMiB),
                        event(K::kChunk, 1.4, 0, 0, 1, 1.0 * kMiB),
                        event(K::kChunk, 1.6, 0, 0, 1, 1.0 * kMiB),
                        event(K::kCommit, 2.0, 0, 0, 1)};

  const std::vector<fault::InvariantViolation> v =
      fault::check_cross_tenant_invariants(journals, {2, 2},
                                           fault::FaultPlan());
  ASSERT_FALSE(v.empty());
}

// ---------------------------------------------------------------------------
// Soak harness (tenancy/soak.h)

TEST(MultiTenantSoakTest, SmallCaseDrainsCleanly) {
  MultiTenantSoakOptions options;
  options.substrate.num_sites = 6;
  options.substrate.num_tenants = 30;
  const MultiTenantSoakCase c = run_multitenant_soak_case(2017, options);
  EXPECT_EQ(c.tenants, 30);
  EXPECT_TRUE(c.violations.empty())
      << (c.violations.empty() ? "" : c.violations.front().message);
  EXPECT_GE(c.invariants_checked, 1);
  EXPECT_EQ(c.storm.gave_up, 0);
  // Every stranded tenant was granted off the dead site.
  for (const TenantRecovery& rec : c.storm.recoveries)
    EXPECT_TRUE(rec.granted);
}

TEST(MultiTenantSoakTest, FairnessFromStretchMatchesJainDefinition) {
  const FairnessReport even = fairness_from_stretch({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(even.jain_index, 1.0);
  EXPECT_DOUBLE_EQ(even.max_stretch, 1.0);
  const FairnessReport skewed = fairness_from_stretch({1.0, 4.0});
  // Shares 1 and 0.25: Jain = (1.25)^2 / (2 * (1 + 0.0625)).
  EXPECT_NEAR(skewed.jain_index, 1.5625 / 2.125, 1e-12);
  EXPECT_DOUBLE_EQ(skewed.max_stretch, 4.0);
  EXPECT_THROW(fairness_from_stretch({}), InvalidArgument);
  EXPECT_THROW(fairness_from_stretch({1.0, 0.0}), InvalidArgument);
}

}  // namespace
}  // namespace geomap::tenancy
