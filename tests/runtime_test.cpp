// Tests for the minimpi runtime: point-to-point correctness and virtual
// timing, collective results, determinism, and tracer integration.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "net/cloud.h"
#include "net/network_model.h"
#include "runtime/comm.h"
#include "trace/profile.h"

namespace geomap::runtime {
namespace {

/// A two-site model with easily checkable numbers: intra latency 1 ms /
/// 100 MB/s; inter latency 100 ms / 1 MB/s (symmetric).
net::NetworkModel simple_model() {
  Matrix lat = Matrix::square(2, 1e-3);
  lat(0, 1) = lat(1, 0) = 0.1;
  Matrix bw = Matrix::square(2, 100e6);
  bw(0, 1) = bw(1, 0) = 1e6;
  return net::NetworkModel(std::move(lat), std::move(bw));
}

TEST(Runtime, SendRecvDeliversPayload) {
  Runtime rt(simple_model(), {0, 1});
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 5, std::vector<double>{1.5, 2.5, 3.5});
    } else {
      const std::vector<double> got = comm.recv(0, 5);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST(Runtime, VirtualTimeFollowsAlphaBeta) {
  // 1000 doubles = 8000 bytes across sites: 0.1 s + 8000/1e6 s = 0.108 s.
  Runtime rt(simple_model(), {0, 1});
  const RunResult result = rt.run([](Comm& comm) {
    std::vector<double> payload(1000, 1.0);
    if (comm.rank() == 0) {
      comm.send(1, 1, payload);
    } else {
      (void)comm.recv(0, 1);
    }
    EXPECT_NEAR(comm.now(), 0.108, 1e-9);
  });
  EXPECT_NEAR(result.makespan, 0.108, 1e-9);
  EXPECT_NEAR(result.max_comm_seconds, 0.108, 1e-9);
}

TEST(Runtime, IntraSiteTransferIsCheap) {
  Runtime rt(simple_model(), {0, 0});
  const RunResult result = rt.run([](Comm& comm) {
    std::vector<double> payload(1000, 1.0);
    if (comm.rank() == 0) comm.send(1, 1, payload);
    else (void)comm.recv(0, 1);
  });
  EXPECT_NEAR(result.makespan, 1e-3 + 8000.0 / 100e6, 1e-9);
}

TEST(Runtime, RendezvousAdvancesBothClocks) {
  Runtime rt(simple_model(), {0, 1});
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0});
      // Synchronous send: sender waited for the receiver, who was busy
      // computing until t=2.
      EXPECT_NEAR(comm.now(), 2.0 + 0.1 + 8.0 / 1e6, 1e-9);
    } else {
      comm.advance(2.0);
      (void)comm.recv(0, 1);
      EXPECT_NEAR(comm.now(), 2.0 + 0.1 + 8.0 / 1e6, 1e-9);
    }
  });
}

TEST(Runtime, ComputeAdvancesClockByGflops) {
  Runtime rt(simple_model(), {0}, /*gflops=*/2.0);
  const RunResult result = rt.run([](Comm& comm) {
    comm.compute(4e9);  // 4 GFLOP at 2 GFLOP/s = 2 s
  });
  EXPECT_NEAR(result.makespan, 2.0, 1e-12);
  EXPECT_NEAR(result.ranks[0].compute_seconds, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.ranks[0].comm_seconds, 0.0);
}

TEST(Runtime, SendRecvSymmetricExchangeAvoidsDeadlock) {
  Runtime rt(simple_model(), {0, 1});
  rt.run([](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<double> mine{static_cast<double>(comm.rank())};
    const std::vector<double> theirs = comm.sendrecv(peer, 3, mine, peer, 3);
    ASSERT_EQ(theirs.size(), 1u);
    EXPECT_DOUBLE_EQ(theirs[0], static_cast<double>(peer));
  });
}

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, AllreduceSumIsCorrectAtAnySize) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) mapping[static_cast<std::size_t>(r)] = r % 2;
  Runtime rt(simple_model(), mapping);
  rt.run([p](Comm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank() + 1), 1.0};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(v[1], p);
  });
}

TEST_P(CollectiveSizes, BcastReachesEveryRank) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  for (const int root : {0, p - 1, p / 2}) {
    rt.run([root](Comm& comm) {
      std::vector<double> v(3, comm.rank() == root ? 7.0 : 0.0);
      comm.bcast(v, root);
      EXPECT_DOUBLE_EQ(v[0], 7.0);
      EXPECT_DOUBLE_EQ(v[2], 7.0);
    });
  }
}

TEST_P(CollectiveSizes, ReduceMaxMinAtRoot) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  rt.run([p](Comm& comm) {
    std::vector<double> mx{static_cast<double>(comm.rank())};
    comm.reduce(mx, ReduceOp::kMax, 0);
    std::vector<double> mn{static_cast<double>(comm.rank())};
    comm.reduce(mn, ReduceOp::kMin, 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(mx[0], p - 1.0);
      EXPECT_DOUBLE_EQ(mn[0], 0.0);
    }
  });
}

TEST_P(CollectiveSizes, AllgatherCollectsInRankOrder) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  rt.run([p](Comm& comm) {
    const std::vector<double> mine{10.0 + comm.rank(), 20.0 + comm.rank()};
    const std::vector<double> all = comm.allgather(mine);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r)], 10.0 + r);
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * r + 1)], 20.0 + r);
    }
  });
}

TEST_P(CollectiveSizes, AlltoallTransposesBlocks) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  rt.run([p](Comm& comm) {
    std::vector<double> send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d)
      send[static_cast<std::size_t>(d)] = comm.rank() * 100.0 + d;
    const std::vector<double> recv = comm.alltoall(send, 1);
    for (int s = 0; s < p; ++s)
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(s)],
                       s * 100.0 + comm.rank());
  });
}

TEST_P(CollectiveSizes, ScatterDeliversTheRightBlock) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  for (const int root : {0, p - 1}) {
    rt.run([p, root](Comm& comm) {
      std::vector<double> send;
      if (comm.rank() == root) {
        for (int r = 0; r < p; ++r) {
          send.push_back(100.0 + r);
          send.push_back(200.0 + r);
        }
      }
      const std::vector<double> mine = comm.scatter(send, 2, root);
      ASSERT_EQ(mine.size(), 2u);
      EXPECT_DOUBLE_EQ(mine[0], 100.0 + comm.rank());
      EXPECT_DOUBLE_EQ(mine[1], 200.0 + comm.rank());
    });
  }
}

TEST_P(CollectiveSizes, GatherCollectsInRankOrderAtRoot) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  for (const int root : {0, p / 2}) {
    rt.run([p, root](Comm& comm) {
      const std::vector<double> mine{comm.rank() * 10.0};
      const std::vector<double> all = comm.gather(mine, root);
      if (comm.rank() == root) {
        ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
        for (int r = 0; r < p; ++r)
          EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 10.0);
      } else {
        EXPECT_TRUE(all.empty());
      }
    });
  }
}

TEST_P(CollectiveSizes, ReduceScatterSumsPerBlock) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  rt.run([p](Comm& comm) {
    // Rank r contributes value (r + 1) to every block d.
    std::vector<double> data(static_cast<std::size_t>(p), comm.rank() + 1.0);
    const std::vector<double> mine =
        comm.reduce_scatter(data, 1, ReduceOp::kSum);
    ASSERT_EQ(mine.size(), 1u);
    EXPECT_DOUBLE_EQ(mine[0], p * (p + 1) / 2.0);
  });
}

TEST_P(CollectiveSizes, ScanComputesInclusivePrefix) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  rt.run([](Comm& comm) {
    std::vector<double> v{comm.rank() + 1.0};
    comm.scan(v, ReduceOp::kSum);
    const double r = comm.rank() + 1.0;
    EXPECT_DOUBLE_EQ(v[0], r * (r + 1) / 2.0);
  });
}

TEST_P(CollectiveSizes, BarrierCompletes) {
  const int p = GetParam();
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  EXPECT_NO_THROW(rt.run([](Comm& comm) { comm.barrier(); }));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Runtime, AlltoallBruckAndPairwiseAgreeOnResults) {
  // Below the Bruck threshold (tiny blocks) and above it (large blocks),
  // alltoall must deliver identical data; only virtual cost may differ.
  const int p = 8;
  Mapping mapping(static_cast<std::size_t>(p), 0);
  Runtime rt(simple_model(), mapping);
  for (const std::size_t block :
       {std::size_t{1},      // Bruck path (8 bytes)
        std::size_t{256}}) {  // pairwise path (2 KB > threshold)
    rt.run([p, block](Comm& comm) {
      std::vector<double> send(static_cast<std::size_t>(p) * block);
      for (int d = 0; d < p; ++d)
        for (std::size_t e = 0; e < block; ++e)
          send[static_cast<std::size_t>(d) * block + e] =
              comm.rank() * 1000.0 + d + static_cast<double>(e) / 1000.0;
      const std::vector<double> recv = comm.alltoall(send, block);
      for (int s = 0; s < p; ++s)
        for (std::size_t e = 0; e < block; ++e)
          ASSERT_DOUBLE_EQ(recv[static_cast<std::size_t>(s) * block + e],
                           s * 1000.0 + comm.rank() +
                               static_cast<double>(e) / 1000.0);
    });
  }
}

TEST(Runtime, BruckUsesFewerMessagesThanPairwise) {
  const int p = 16;
  Mapping mapping(static_cast<std::size_t>(p), 0);
  auto count_messages = [&](std::size_t block) {
    Runtime rt(simple_model(), mapping);
    const RunResult rr = rt.run([block](Comm& comm) {
      std::vector<double> send(comm.size() * block, 1.0);
      (void)comm.alltoall(send, block);
    });
    std::uint64_t total = 0;
    for (const RankStats& rs : rr.ranks) total += rs.messages_sent;
    return total;
  };
  const std::uint64_t bruck = count_messages(1);        // log2(16) = 4 rounds
  const std::uint64_t pairwise = count_messages(1024);  // 15 rounds
  EXPECT_EQ(bruck, 16u * 4u);
  EXPECT_EQ(pairwise, 16u * 15u);
}

TEST(Runtime, LinkContentionSerializesCrossSiteFlows) {
  // Two senders on site 0 each push 1 MB to receivers on site 1: with a
  // serializing WAN link the makespan is ~2 transfer times; moving one
  // receiver pair intra-site halves it.
  auto run_config = [&](const Mapping& mapping) {
    Runtime rt(simple_model(), mapping);
    return rt
        .run([](Comm& comm) {
          std::vector<double> payload(125000, 1.0);  // 1 MB
          if (comm.rank() < 2) comm.send(comm.rank() + 2, 1, payload);
          else (void)comm.recv(comm.rank() - 2, 1);
        })
        .makespan;
  };
  const double contended = run_config({0, 0, 1, 1});
  const double relieved = run_config({0, 0, 1, 0});
  EXPECT_NEAR(contended, 2 * (0.1 + 1.0), 1e-6);  // serialized on (0,1)
  EXPECT_LT(relieved, 0.6 * contended);
}

TEST(Runtime, DeterministicVirtualTimeAcrossRuns) {
  // Single-site mapping: intra-site transfers never contend, so virtual
  // time is exactly reproducible (cross-site runs are deterministic only
  // up to link-queueing order; see comm.h).
  const net::CloudTopology topo(net::aws_experiment_profile(8));
  const net::NetworkModel model = net::NetworkModel::from_ground_truth(topo);
  Mapping mapping(8, 0);
  auto body = [](Comm& comm) {
    std::vector<double> v(64, static_cast<double>(comm.rank()));
    comm.allreduce(v, ReduceOp::kSum);
    const int peer = (comm.rank() + 1) % comm.size();
    const int from = (comm.rank() - 1 + comm.size()) % comm.size();
    (void)comm.sendrecv(peer, 1, v, from, 1);
    comm.barrier();
  };
  Runtime rt1(model, mapping), rt2(model, mapping);
  const RunResult a = rt1.run(body);
  const RunResult b = rt2.run(body);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (std::size_t r = 0; r < a.ranks.size(); ++r)
    EXPECT_DOUBLE_EQ(a.ranks[r].finish_time, b.ranks[r].finish_time);
}

TEST(Runtime, MappingChangesVirtualTimeNotResults) {
  const net::NetworkModel model = simple_model();
  auto body = [](Comm& comm) {
    std::vector<double> v{1.0};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 4.0);
  };
  Runtime colocated(model, {0, 0, 0, 0});
  Runtime spread(model, {0, 1, 0, 1});
  const double t_colocated = colocated.run(body).makespan;
  const double t_spread = spread.run(body).makespan;
  EXPECT_LT(t_colocated, t_spread);
}

TEST(Runtime, TracerCapturesEveryP2pSend) {
  trace::ApplicationProfile profile(2);
  Runtime rt(simple_model(), {0, 1}, 50.0, &profile);
  rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>(10, 0.0));
      comm.send(1, 1, std::vector<double>(20, 0.0));
    } else {
      (void)comm.recv(0, 1);
      (void)comm.recv(0, 1);
    }
  });
  const trace::CommMatrix m = profile.build_comm_matrix();
  EXPECT_DOUBLE_EQ(m.volume(0, 1), 240.0);  // (10+20) doubles
  EXPECT_DOUBLE_EQ(m.count(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.volume(1, 0), 0.0);
}

TEST(Runtime, StatsAccounting) {
  Runtime rt(simple_model(), {0, 1});
  const RunResult result = rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>(100, 0.0));
      comm.compute(1e9);
    } else {
      (void)comm.recv(0, 1);
    }
  });
  EXPECT_EQ(result.ranks[0].messages_sent, 1u);
  EXPECT_DOUBLE_EQ(result.ranks[0].bytes_sent, 800.0);
  EXPECT_GT(result.ranks[0].compute_seconds, 0.0);
  EXPECT_GT(result.ranks[1].comm_seconds, 0.0);
}

TEST(Runtime, RejectsInvalidConfiguration) {
  EXPECT_THROW(Runtime(simple_model(), {}), Error);
  EXPECT_THROW(Runtime(simple_model(), {0, 5}), Error);
  trace::ApplicationProfile profile(3);
  EXPECT_THROW(Runtime(simple_model(), {0, 1}, 50.0, &profile), Error);
}

TEST(Runtime, RankErrorsPropagate) {
  Runtime rt(simple_model(), {0, 0});
  EXPECT_THROW(rt.run([](Comm& comm) {
    if (comm.rank() == 1) throw Error("rank body failure");
    // Rank 0 exits normally (no pending communication).
  }),
               Error);
}

TEST(Runtime, RankErrorsKeepConcreteTypeAndRankId) {
  Runtime rt(simple_model(), {0, 0});
  try {
    rt.run([](Comm& comm) {
      if (comm.rank() == 1) throw InvalidArgument("bad rank input");
    });
    FAIL() << "expected InvalidArgument to propagate";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("bad rank input"), std::string::npos) << what;
  }
  // Exceptions outside the geomap hierarchy still surface with a rank id.
  try {
    rt.run([](Comm& comm) {
      if (comm.rank() == 0) throw 42;
    });
    FAIL() << "expected the non-std exception to be wrapped";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos);
  }
}

TEST(Runtime, ThrowMidCollectiveDoesNotHangPeers) {
  // Regression: a rank dying while its peers are blocked inside a
  // collective must abort those peers instead of deadlocking the run,
  // and the original exception must surface with its rank id.
  Runtime rt(simple_model(), {0, 0, 1, 1});
  try {
    rt.run([](Comm& comm) {
      if (comm.rank() == 2) throw Error("boom in rank body");
      comm.barrier();  // peers would block here forever without abort
    });
    FAIL() << "expected the rank error to propagate";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("boom in rank body"), std::string::npos) << what;
  }
  // The runtime is reusable after an aborted run.
  const RunResult r = rt.run([](Comm& comm) { comm.barrier(); });
  EXPECT_GT(r.makespan, 0.0);
}

TEST(Runtime, LowestRankErrorWinsWhenSeveralThrow) {
  Runtime rt(simple_model(), {0, 0, 1, 1});
  try {
    rt.run([](Comm& comm) {
      if (comm.rank() == 1) throw Error("first");
      if (comm.rank() == 3) throw Error("second");
      comm.barrier();
    });
    FAIL() << "expected the rank error to propagate";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos)
        << e.what();
  }
}

TEST(Runtime, SenderBlockedOnDeadReceiverIsReleased) {
  // The sender parks in rendezvous wait for a matching recv that will
  // never be posted; the abort path must fail that wait.
  Runtime rt(simple_model(), {0, 1});
  EXPECT_THROW(rt.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>{1.0, 2.0});
    } else {
      throw Error("receiver died before posting recv");
    }
  }),
               Error);
}

TEST(Runtime, ReceiverBlockedOnDeadSenderIsReleased) {
  Runtime rt(simple_model(), {0, 1});
  EXPECT_THROW(rt.run([](Comm& comm) {
    if (comm.rank() == 1) {
      (void)comm.recv(0, 1);  // no matching send will ever arrive
    } else {
      throw Error("sender died before sending");
    }
  }),
               Error);
}

}  // namespace
}  // namespace geomap::runtime
